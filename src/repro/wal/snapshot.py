"""Epoch-based snapshot reads over immutable heap versions.

The write path never mutates a heap file in place: each committed
transaction builds a **new** version file (``NAME@e<epoch>``) and swaps
the session's table pointer.  Operators that captured the old
:class:`~repro.storage.heap.HeapFile` object keep scanning the old bytes,
so an in-flight query (or a ``run_batch`` worker) reads one consistent
table version end to end — snapshot isolation at query granularity,
without locks.

:class:`SnapshotManager` is the version store: it records which epoch
file is current, retains a bounded window of older epochs for open
snapshots, garbage-collects the rest, and answers epoch lookups.  An
explicit :class:`Snapshot` (from ``session.snapshot()``) pins every
table's current epoch for as long as it is open; reading through a
released snapshot whose files were retired raises
:class:`~repro.errors.SnapshotTooOldError`.

Epoch 0 — the bulk-loaded base file — is never collected: it is the
root the WAL replays against during crash recovery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from ..data.relation import FuzzyRelation
from ..errors import SnapshotTooOldError
from ..storage.disk import SimulatedDisk

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.heap import HeapFile


def version_file_name(table: str, epoch: int) -> str:
    """On-disk file name of ``table``'s heap at ``epoch`` (0 = base)."""
    return table if epoch == 0 else f"{table}@e{epoch}"


class SnapshotManager:
    """Bookkeeping for immutable per-table heap versions."""

    def __init__(self, disk: SimulatedDisk, retain: int = 2):
        self.disk = disk
        #: How many epochs (beyond pins and the base) stay readable.
        self.retain = max(1, retain)
        #: ``table -> {epoch: [files belonging to that epoch]}``.
        self._versions: Dict[str, Dict[int, List[str]]] = {}
        self._current: Dict[str, int] = {}
        self._pins: Dict[Tuple[str, int], int] = {}
        #: Lifetime count of versions published (feeds the registry).
        self.published = 0
        self.collected = 0

    def epoch(self, table: str) -> int:
        """The current epoch of ``table`` (0 until its first write)."""
        return self._current.get(table, 0)

    def track(self, table: str, epoch: int, files: List[str]) -> None:
        """Record ``files`` as the image of ``table`` at ``epoch`` (no GC)."""
        self._versions.setdefault(table, {})[epoch] = list(files)
        self._current[table] = max(self._current.get(table, 0), epoch)

    def publish(self, table: str, epoch: int, files: List[str]) -> None:
        """Install ``epoch`` as current for ``table`` and GC old versions."""
        self.track(table, epoch, files)
        self._current[table] = epoch
        self.published += 1
        self.collect(table)

    def collect(self, table: str) -> None:
        """Delete unpinned versions older than the retention window.

        Epoch 0 (the recovery base) is always kept.
        """
        versions = self._versions.get(table, {})
        current = self._current.get(table, 0)
        for epoch in sorted(versions):
            if epoch == 0 or epoch > current - self.retain:
                continue
            if self._pins.get((table, epoch), 0) > 0:
                continue
            for file in versions.pop(epoch):
                self.disk.delete(file)
            self.collected += 1

    def forget(self, table: str) -> None:
        """Drop every version of ``table`` from disk and the catalog."""
        for files in self._versions.pop(table, {}).values():
            for file in files:
                self.disk.delete(file)
        self._current.pop(table, None)

    # ------------------------------------------------------------------
    # Pinning (used by Snapshot)
    # ------------------------------------------------------------------
    def pin(self, table: str, epoch: int) -> None:
        """Protect ``(table, epoch)`` from collection while pinned."""
        key = (table, epoch)
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, table: str, epoch: int) -> None:
        """Release one pin; collection may now retire the version."""
        key = (table, epoch)
        count = self._pins.get(key, 0) - 1
        if count <= 0:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count
        self.collect(table)

    def pinned(self) -> int:
        """Total outstanding pins across all tables."""
        return sum(self._pins.values())

    def resolve(self, table: str, epoch: int) -> str:
        """Heap file name of ``table`` at ``epoch``; raises if retired."""
        if epoch == 0:
            file = version_file_name(table, 0)
        else:
            files = self._versions.get(table, {}).get(epoch)
            if not files:
                raise SnapshotTooOldError(
                    f"epoch {epoch} of table {table} was garbage-collected"
                )
            file = files[0]
        if not self.disk.exists(file):
            raise SnapshotTooOldError(
                f"epoch {epoch} of table {table} was garbage-collected"
            )
        return file


class Snapshot:
    """A pinned, consistent view of every table at one instant.

    Use as a context manager::

        with session.snapshot() as snap:
            before = snap.read("R")   # unaffected by concurrent ingest
    """

    def __init__(self, manager: SnapshotManager, heaps: Dict[str, "HeapFile"]):
        self.manager = manager
        self._heaps = dict(heaps)
        self._epochs = {name: manager.epoch(name) for name in heaps}
        self._released = False
        for name, epoch in self._epochs.items():
            manager.pin(name, epoch)

    def epoch_of(self, table: str) -> int:
        """The epoch this snapshot pinned for ``table``."""
        return self._epochs[table.upper()]

    def read(self, table: str) -> FuzzyRelation:
        """Materialize ``table`` as of the snapshot, charging page reads."""
        name = table.upper()
        heap = self._heaps[name]
        file = self.manager.resolve(name, self._epochs[name])
        disk = self.manager.disk
        tuples = []
        for index in range(disk.n_pages(file)):
            page = disk.read_page(file, index)
            tuples.extend(heap.serializer.decode(r) for r in page.records())
        return FuzzyRelation(heap.schema, tuples)

    def release(self) -> None:
        """Unpin every table version (idempotent)."""
        if self._released:
            return
        self._released = True
        for name, epoch in self._epochs.items():
            self.manager.unpin(name, epoch)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


__all__ = ["Snapshot", "SnapshotManager", "version_file_name"]
