"""The write-ahead log: buffered frames, group commit, torn-tail repair.

A :class:`WriteAheadLog` owns one disk file of variable-length blobs
(:meth:`~repro.storage.disk.SimulatedDisk.append_blob`), each blob being
the frames of one *sync batch*.  Appends buffer in memory; :meth:`sync`
concatenates the pending frames into a single blob, stores it, and drives
it through the disk's durability barrier — so a sync covering the COMMIT
records of several transactions is a **group commit** (one device flush
amortized over all of them), and a crash before the sync loses exactly
the buffered frames and nothing else.

The log file is created lazily on the first append, so read-only sessions
never grow a WAL file.
"""

from __future__ import annotations

from typing import List

from ..storage.disk import SimulatedDisk
from .record import KIND_COMMIT, ScanResult, WalRecord, encode_record, scan

#: Default on-disk name; deliberately not ``__``-prefixed — the WAL is a
#: durable artifact, not a scratch file the leak checker may reap.
WAL_FILE = "wal#log"


class WriteAheadLog:
    """Checksummed, length-prefixed redo log over one disk file."""

    def __init__(self, disk: SimulatedDisk, file: str = WAL_FILE):
        self.disk = disk
        self.file = file
        self._pending: List[bytes] = []
        self._pending_commits = 0
        #: Bytes known synced to the durability barrier this process life.
        self.synced_bytes = 0
        #: Lifetime counters surfaced through ``session.wal_status()``.
        self.records_appended = 0
        self.commits_appended = 0
        self.syncs = 0
        self.group_commits = 0
        self.truncated_bytes = 0

    # ------------------------------------------------------------------
    # Appending and committing
    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> None:
        """Buffer one record; it becomes durable at the next :meth:`sync`."""
        self._pending.append(encode_record(record))
        self.records_appended += 1
        if record.kind == KIND_COMMIT:
            self.commits_appended += 1
            self._pending_commits += 1

    @property
    def pending_frames(self) -> int:
        """Frames appended but not yet synced."""
        return len(self._pending)

    def sync(self) -> int:
        """Flush the pending frames as one blob + one durability barrier.

        Returns the number of bytes written.  A sync whose blob covers
        two or more COMMIT records counts as a group commit.  On *any*
        failure (scripted crash point, torn capacity, disk full) the
        pending buffer is dropped: the transaction never became durable
        and the session-level caller surfaces the typed error.
        """
        if not self._pending:
            return 0
        blob = b"".join(self._pending)
        commits = self._pending_commits
        self._pending = []
        self._pending_commits = 0
        self._ensure_file()
        self.disk.append_blob(self.file, blob)
        self.disk.sync(self.file)
        self.syncs += 1
        if commits >= 2:
            self.group_commits += 1
        self.synced_bytes += len(blob)
        return len(blob)

    # ------------------------------------------------------------------
    # Reading back (recovery)
    # ------------------------------------------------------------------
    def image(self) -> bytes:
        """The full durable log image (all blobs concatenated), charged."""
        if not self.disk.exists(self.file):
            return b""
        parts = [
            self.disk.read_blob(self.file, index)
            for index in range(self.disk.n_pages(self.file))
        ]
        return b"".join(parts)

    def scan_image(self) -> ScanResult:
        """Scan the durable image for its well-formed record prefix."""
        return scan(self.image())

    def truncate_to(self, good_length: int, image: bytes) -> int:
        """Rewrite the log to exactly ``image[:good_length]``; returns bytes cut.

        Recovery calls this after :func:`~repro.wal.record.scan` finds a
        torn tail: the clean prefix is rewritten as a single blob and
        synced, so a second recovery sees no tail at all (idempotence).
        """
        removed = len(image) - good_length
        self.disk.delete(self.file)
        self.disk.create(self.file)
        if good_length:
            self.disk.append_blob(self.file, image[:good_length])
        self.disk.sync(self.file)
        self.synced_bytes = good_length
        self.truncated_bytes += removed
        return removed

    def reset(self) -> None:
        """Empty the log (checkpoint: every table image is now the base)."""
        self.disk.delete(self.file)
        self._pending = []
        self._pending_commits = 0
        self.synced_bytes = 0

    def _ensure_file(self) -> None:
        """Create the log file on first use."""
        if not self.disk.exists(self.file):
            self.disk.create(self.file)


__all__ = ["WAL_FILE", "WriteAheadLog"]
