"""CRC32-framed, length-prefixed write-ahead-log records.

Every mutation the engine accepts is logged before it is applied, as a
sequence of frames::

    +----------+----------+--------------------------+
    | length   | crc32    | payload (length bytes)   |
    | u32 BE   | u32 BE   |                          |
    +----------+----------+--------------------------+

    payload := kind (1 byte) + txn (u64 BE) [+ body]
    body    := u16 BE table-name length + table name (UTF-8)
             + u32 BE row length + row bytes        (INSERT / DELETE only)

Row bytes are exactly what :class:`~repro.storage.serializer.TupleSerializer`
produces, so replaying a record re-creates the bit-identical stored tuple.
The CRC covers the payload only — a frame whose length field itself is
torn fails the bounds checks and ends the committed prefix just the same.

:func:`scan` is the recovery entrypoint: it walks frames left to right and
**never raises** — the first incomplete, oversized, or CRC-mismatched
frame simply terminates the well-formed prefix, which is the property the
crash-at-every-offset chaos suite leans on.  Strict single-frame decoding
for callers that believe their bytes are durable lives in
:func:`decode_frame` and raises :class:`~repro.errors.WalCorruptionError`.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, NamedTuple, Tuple

from ..errors import WalCorruptionError

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

#: Frame header: payload length + payload CRC32.
HEADER_SIZE = 8

#: Record kinds (single ASCII byte at the head of each payload).
KIND_BEGIN = "B"
KIND_INSERT = "I"
KIND_DELETE = "D"
KIND_COMMIT = "C"

_KINDS = {KIND_BEGIN, KIND_INSERT, KIND_DELETE, KIND_COMMIT}
_ROW_KINDS = {KIND_INSERT, KIND_DELETE}

#: Upper bound on a sane payload; a torn length field almost always
#: decodes far beyond it, ending the scan cleanly.
MAX_PAYLOAD = 1 << 20


class WalRecord(NamedTuple):
    """One logical WAL record (decoded payload of one frame)."""

    #: One of :data:`KIND_BEGIN` / ``KIND_INSERT`` / ``KIND_DELETE`` /
    #: ``KIND_COMMIT``.
    kind: str
    #: Transaction id the record belongs to (monotonically assigned).
    txn: int
    #: Target table (empty for BEGIN / COMMIT).
    table: str
    #: Serialized tuple image (empty for BEGIN / COMMIT).
    row: bytes


class ScannedRecord(NamedTuple):
    """A record plus the byte extent of its frame in the log image."""

    record: WalRecord
    #: Offset of the frame's first header byte.
    offset: int
    #: Offset one past the frame's last payload byte.
    end: int


class ScanResult(NamedTuple):
    """Outcome of scanning a WAL image: the well-formed prefix."""

    entries: List[ScannedRecord]
    #: Length of the well-formed prefix; bytes past it are a torn tail.
    good_length: int


def encode_record(record: WalRecord) -> bytes:
    """Serialize ``record`` into one framed byte string."""
    payload = record.kind.encode("ascii") + _U64.pack(record.txn)
    if record.kind in _ROW_KINDS:
        table = record.table.encode("utf-8")
        payload += _U16.pack(len(table)) + table + _U32.pack(len(record.row)) + record.row
    return _U32.pack(len(payload)) + _U32.pack(zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> WalRecord:
    """Decode one verified payload; raises on structural damage."""
    kind = payload[:1].decode("ascii", errors="replace")
    if kind not in _KINDS:
        raise WalCorruptionError(f"unknown WAL record kind {kind!r}")
    (txn,) = _U64.unpack_from(payload, 1)
    if kind not in _ROW_KINDS:
        if len(payload) != 9:
            raise WalCorruptionError(f"{kind} record has trailing bytes")
        return WalRecord(kind, txn, "", b"")
    (name_len,) = _U16.unpack_from(payload, 9)
    name_end = 11 + name_len
    if name_end + 4 > len(payload):
        raise WalCorruptionError("WAL record table name overruns the payload")
    table = payload[11:name_end].decode("utf-8")
    (row_len,) = _U32.unpack_from(payload, name_end)
    row = payload[name_end + 4:]
    if len(row) != row_len:
        raise WalCorruptionError("WAL record row image overruns the payload")
    return WalRecord(kind, txn, table, row)


def decode_frame(data: bytes, offset: int = 0) -> Tuple[WalRecord, int]:
    """Strictly decode the frame at ``offset``; returns ``(record, end)``.

    Raises :class:`~repro.errors.WalCorruptionError` on any damage —
    use :func:`scan` instead when a torn tail is an expected outcome.
    """
    if offset + HEADER_SIZE > len(data):
        raise WalCorruptionError("WAL frame header is incomplete")
    (length,) = _U32.unpack_from(data, offset)
    (crc,) = _U32.unpack_from(data, offset + 4)
    if length < 9 or length > MAX_PAYLOAD:
        raise WalCorruptionError(f"implausible WAL frame length {length}")
    end = offset + HEADER_SIZE + length
    if end > len(data):
        raise WalCorruptionError("WAL frame payload is incomplete")
    payload = data[offset + HEADER_SIZE:end]
    if zlib.crc32(payload) != crc:
        raise WalCorruptionError("WAL frame CRC32 mismatch (torn write)")
    return _decode_payload(payload), end


def scan(data: bytes) -> ScanResult:
    """Walk every well-formed frame from offset 0; never raises.

    The scan stops at the first frame that is incomplete, implausibly
    sized, CRC-mismatched, or structurally damaged; ``good_length`` is
    the byte length of the clean prefix before it.  A crash at any byte
    offset therefore yields *some* clean prefix — recovery truncates the
    rest.
    """
    entries: List[ScannedRecord] = []
    offset = 0
    while True:
        try:
            record, end = decode_frame(data, offset)
        except WalCorruptionError:
            return ScanResult(entries, offset)
        entries.append(ScannedRecord(record, offset, end))
        offset = end


__all__ = [
    "HEADER_SIZE",
    "KIND_BEGIN",
    "KIND_COMMIT",
    "KIND_DELETE",
    "KIND_INSERT",
    "MAX_PAYLOAD",
    "ScanResult",
    "ScannedRecord",
    "WalRecord",
    "decode_frame",
    "encode_record",
    "scan",
]
