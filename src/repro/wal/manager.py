"""The write path: WAL-logged transactions, versioned installs, recovery.

:class:`WriteManager` is the only component that mutates tables after
registration.  Every statement runs the same discipline:

1. **Log** — one transaction per statement: a BEGIN frame, one INSERT /
   DELETE frame per affected row (an UPDATE is DELETE-old + INSERT-new),
   and a COMMIT frame, all buffered in the
   :class:`~repro.wal.log.WriteAheadLog`;
2. **Sync** — the buffered frames flush as one blob through the disk's
   durability barrier; a sync whose blob carries several COMMITs is a
   group commit;
3. **Apply** — the logged records replay against the table's current
   contents via :func:`replay_record` — the *same* function crash
   recovery uses, so the live state and the recovered state are
   byte-identical by construction — and the result is packed into a
   fresh immutable heap version (``NAME@e<epoch>``), registered with the
   :class:`~repro.wal.snapshot.SnapshotManager`, and swapped in.

Crash recovery (:meth:`WriteManager.recover`) deletes every untrusted
version file, scans the durable WAL image, truncates any torn tail,
replays the committed transactions in commit order from the epoch-0 base
files, and rebuilds secondary indexes.  Because the replay, the greedy
heap packing, and the index sort are all deterministic, running recovery
twice — or crashing in the middle of it and running it again — produces
bit-identical files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..columnar.index import SupportIntervalIndex, index_file_name
from ..data.relation import FuzzyRelation
from ..data.tuples import FuzzyTuple
from ..errors import RecoveryError
from ..observe.trace import maybe_span
from ..storage.heap import HeapFile
from ..storage.serializer import TupleSerializer
from ..storage.stats import OperationStats
from .log import WriteAheadLog
from .record import (
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_DELETE,
    KIND_INSERT,
    WalRecord,
    scan,
)
from .snapshot import SnapshotManager, version_file_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session import StorageSession


class TableState:
    """Mutable replay state of one table: its tuples in storage order.

    Both the live apply path and crash recovery mutate a ``TableState``
    with :meth:`insert` / :meth:`delete` and then pack ``tuples`` into a
    heap file — one code path, one deterministic result.
    """

    def __init__(self, serializer: TupleSerializer, tuples: List[FuzzyTuple]):
        self.serializer = serializer
        self.tuples = list(tuples)
        self._positions = {t.value_key(): i for i, t in enumerate(self.tuples)}
        #: ``True`` while every change so far only appended new rows at
        #: the end — the condition for staged index delta-merges.
        self.appended_only = True
        #: Set by the live apply path for single-row update / delete
        #: transactions: indexes may be patched from the in-memory rows
        #: and their recorded placements instead of rescanning the heap.
        #: Recovery never sets it (row ids shift arbitrarily across a
        #: whole log of transactions).
        self.patchable = False

    def insert(self, row: bytes) -> None:
        """Apply one INSERT record (fuzzy-OR: duplicates keep max degree)."""
        t = self.serializer.decode(row)
        key = t.value_key()
        at = self._positions.get(key)
        if at is None:
            self._positions[key] = len(self.tuples)
            self.tuples.append(t)
        elif t.degree > self.tuples[at].degree:
            self.tuples[at] = FuzzyTuple(self.tuples[at].values, t.degree)
            self.appended_only = False

    def delete(self, row: bytes) -> None:
        """Apply one DELETE record (value-identity match; no-op if absent)."""
        key = self.serializer.decode(row).value_key()
        at = self._positions.pop(key, None)
        if at is None:
            return
        del self.tuples[at]
        for k, i in self._positions.items():
            if i > at:
                self._positions[k] = i - 1
        self.appended_only = False


def replay_record(state: TableState, record: WalRecord) -> None:
    """Apply one row record to ``state`` — shared by live apply and recovery."""
    if record.kind == KIND_INSERT:
        state.insert(record.row)
    elif record.kind == KIND_DELETE:
        state.delete(record.row)


@dataclass
class RecoveryReport:
    """What one :meth:`WriteManager.recover` run restored."""

    txns_replayed: int = 0
    records_replayed: int = 0
    truncated_bytes: int = 0
    #: Per-table outcome: ``name -> (epoch installed, rows)``.
    tables: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def render(self) -> str:
        """A human-readable summary (the shell prints this)."""
        lines = [
            f"recovery: {self.txns_replayed} txns / {self.records_replayed} "
            f"records replayed, {self.truncated_bytes} torn bytes truncated"
        ]
        for name in sorted(self.tables):
            epoch, rows = self.tables[name]
            lines.append(f"  {name}: epoch {epoch}, {rows} rows")
        return "\n".join(lines)


class WriteManager:
    """Durable fuzzy writes for one :class:`~repro.session.StorageSession`."""

    def __init__(self, session: "StorageSession"):
        self.session = session
        self.wal = WriteAheadLog(session.disk)
        self.snapshots = SnapshotManager(session.disk)
        self.next_txn = 1
        self.statements = 0
        self.index_delta_merges = 0
        self.index_rebuilds = 0
        #: Index maintenance runs that patched postings from the in-memory
        #: rows (single-row update / delete) instead of re-scanning the
        #: heap — each one is a full rebuild avoided.
        self.index_patches = 0
        self.recoveries = 0

    # ------------------------------------------------------------------
    # The write path
    # ------------------------------------------------------------------
    def apply_ops(self, ops: List[Tuple[str, str, list]], tracer=None) -> List[str]:
        """Run DML operations as one group-committed batch.

        ``ops`` is a list of ``(verb, table, payload)``:

        * ``("insert", name, [FuzzyTuple, ...])``
        * ``("delete", name, [FuzzyTuple victims, ...])``
        * ``("update", name, [(old FuzzyTuple, new FuzzyTuple), ...])``

        Each op is one transaction; the whole batch shares a single WAL
        sync (group commit when it covers ≥ 2 commits).  Apply happens
        only after the sync returns, so a crash during the sync loses
        whole transactions, never halves of one.  Returns one status
        string per op.
        """
        session = self.session
        stats = OperationStats()
        with session.disk.use_stats(stats):
            txns = []
            with maybe_span(tracer, "wal-append", ops=len(ops)):
                for verb, name, payload in ops:
                    txn = self.next_txn
                    self.next_txn += 1
                    records = self._records_of(verb, name.upper(), payload, txn)
                    for record in records:
                        self.wal.append(record)
                    txns.append((verb, name.upper(), records))
            with maybe_span(tracer, "wal-sync"):
                synced = self.wal.sync()
            statuses = []
            with maybe_span(tracer, "wal-apply"):
                for verb, name, records in txns:
                    rows = [r for r in records if r.kind in (KIND_INSERT, KIND_DELETE)]
                    epoch = self._apply_rows(name, rows)
                    statuses.append(self._status_of(verb, name, payload_len=len(rows), epoch=epoch))
        self.statements += len(ops)
        session.last_stats = stats
        registry = getattr(session, "registry", None)
        if registry is not None:
            registry.count_wal(
                records=sum(len(records) for _, _, records in txns),
                commits=len(txns),
                syncs=1,
                group_commits=1 if len(txns) >= 2 else 0,
                bytes_synced=synced,
            )
        return statuses

    def _records_of(self, verb: str, name: str, payload: list, txn: int) -> List[WalRecord]:
        """The WAL records of one transaction (BEGIN ... COMMIT)."""
        serializer = self._serializer(name)
        records = [WalRecord(KIND_BEGIN, txn, "", b"")]
        if verb == "insert":
            for t in payload:
                records.append(WalRecord(KIND_INSERT, txn, name, serializer.encode(t)))
        elif verb == "delete":
            for t in payload:
                records.append(WalRecord(KIND_DELETE, txn, name, serializer.encode(t)))
        elif verb == "update":
            for old, new in payload:
                records.append(WalRecord(KIND_DELETE, txn, name, serializer.encode(old)))
                records.append(WalRecord(KIND_INSERT, txn, name, serializer.encode(new)))
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown write verb {verb!r}")
        records.append(WalRecord(KIND_COMMIT, txn, "", b""))
        return records

    @staticmethod
    def _status_of(verb: str, name: str, payload_len: int, epoch: int) -> str:
        """The human-readable outcome line of one applied transaction."""
        if verb == "update":
            n = payload_len // 2
            noun = "tuple" if n == 1 else "tuples"
            return f"{n} {noun} updated in {name} (epoch {epoch})"
        n = payload_len
        noun = "tuple" if n == 1 else "tuples"
        done = "inserted into" if verb == "insert" else "deleted from"
        return f"{n} {noun} {done} {name} (epoch {epoch})"

    def _apply_rows(self, name: str, rows: List[WalRecord]) -> int:
        """Replay ``rows`` onto ``name`` and install the new heap version."""
        session = self.session
        heap = session.tables[name]
        state = TableState(heap.serializer, self._contents(heap))
        for record in rows:
            replay_record(state, record)
        # A single-row update is DELETE-old + INSERT-new; a single-row
        # delete is one DELETE.  Either way at most one row id shifted
        # region exists and the in-memory tuples + load placements fully
        # describe the new image — indexes can be patched, not rebuilt.
        deletes = sum(1 for r in rows if r.kind == KIND_DELETE)
        state.patchable = deletes == 1 and len(rows) <= 2
        epoch = self.snapshots.epoch(name) + 1
        return self._install(name, heap, state, epoch)

    # ------------------------------------------------------------------
    # Version install (shared by live apply and recovery)
    # ------------------------------------------------------------------
    def _install(self, name: str, old_heap: HeapFile, state: TableState, epoch: int) -> int:
        """Pack ``state`` as epoch ``epoch`` of ``name`` and swap it in."""
        session = self.session
        disk = session.disk
        file = version_file_name(name, epoch)
        disk.delete(file)
        new_heap = HeapFile(file, old_heap.schema, disk, session.fixed_tuple_size)
        placements: List[Tuple[int, int]] = []
        new_heap.load(state.tuples, placements=placements)
        index_files = self._maintain_indexes(
            name, old_heap, new_heap, state, epoch, placements
        )
        if epoch > 0:
            self.snapshots.publish(name, epoch, [file] + index_files)
        session.tables[name] = new_heap
        registry = getattr(session, "registry", None)
        if getattr(session, "adaptive", False):
            self._refresh_statistics(name, new_heap, state, registry)
        else:
            session.stats_versions.observe_cardinality(name, new_heap.n_tuples)
            session.stats_versions.bump(name)
        session._replace_placement(name, FuzzyRelation(new_heap.schema, state.tuples))
        if registry is not None:
            registry.count_wal(snapshots=1)
        return epoch

    def _refresh_statistics(self, name: str, new_heap: HeapFile, state: TableState, registry) -> None:
        """Adaptive-session statistics maintenance after an install.

        Live bucket counts are refreshed first; only when the table has
        *drifted* past the session threshold do the histograms rebuild —
        changing their fingerprints and bumping the statistics version,
        which together evict every dependent plan-cache entry.  A benign
        ingest instead records the new cardinality without a version bump,
        so flat cached plans stay hits (they rebind their scans to the new
        heap version at execution); grouped / pipelined artifacts bake
        heap references into executables and are evicted either way.
        """
        session = self.session
        refreshed = session.histograms.refresh_table(name, new_heap.schema, state.tuples)
        if refreshed and registry is not None:
            registry.count_histogram(refreshes=refreshed)
        if session.histograms.drifted(name):
            rebuilt = session.histograms.build_table(name, new_heap.schema, state.tuples)
            if rebuilt and registry is not None:
                registry.count_histogram(drift_rebuilds=rebuilt)
            session.stats_versions.observe_cardinality(name, new_heap.n_tuples)
            session.stats_versions.bump(name)
        else:
            session.stats_versions.note_cardinality(name, new_heap.n_tuples)
            session._evict_baked_plans(name)

    def _maintain_indexes(
        self,
        name: str,
        old_heap: HeapFile,
        new_heap: HeapFile,
        state: TableState,
        epoch: int,
        placements: Optional[List[Tuple[int, int]]] = None,
    ) -> List[str]:
        """Carry every index of ``name`` over to the new heap version.

        Append-only transactions take the staged delta + merge path
        (existing postings are reused verbatim — the shared page prefix
        kept its row ids — and only the appended tail is scanned).
        Single-row update / delete transactions are *patched*: the write
        path already holds the new image's tuples in memory and the
        placements :meth:`~repro.storage.heap.HeapFile.load` just
        recorded, so the postings are regenerated from those without
        touching a heap page — :meth:`SupportIntervalIndex.from_rows`
        persists a file bit-identical to a full rebuild.  Anything larger
        falls back to the full heap-scanning rebuild.
        """
        session = self.session
        disk = session.disk
        files = []
        for (tname, attr), index in sorted(session.indexes.items()):
            if tname != name:
                continue
            new_file = version_file_name(index_file_name(name, attr), epoch)
            delta, rebuilds, patches = 0, 0, 0
            if state.appended_only:
                first_new_page = max(0, old_heap.n_pages - 1)
                skip = 0
                if old_heap.n_pages:
                    skip = len(list(
                        disk.read_page(old_heap.name, first_new_page).records()
                    ))
                new_index = index.merged_with_tail(
                    new_heap, disk, first_new_page, skip, new_file
                )
                self.index_delta_merges += 1
                delta = 1
            elif state.patchable and placements is not None:
                new_index = SupportIntervalIndex.from_rows(
                    name, attr, new_heap.schema, state.tuples, placements,
                    disk, new_file,
                )
                self.index_patches += 1
                patches = 1
            else:
                new_index = SupportIntervalIndex.build(
                    name, attr, new_heap, disk, new_file
                )
                self.index_rebuilds += 1
                rebuilds = 1
            session.indexes[(tname, attr)] = new_index
            files.append(new_file)
            registry = getattr(session, "registry", None)
            if registry is not None:
                registry.count_wal(
                    index_delta_merges=delta,
                    index_rebuilds=rebuilds,
                    index_patches=patches,
                )
        return files

    def _contents(self, heap: HeapFile) -> List[FuzzyTuple]:
        """Decode a heap file's tuples in storage order (charged reads)."""
        disk = self.session.disk
        tuples: List[FuzzyTuple] = []
        for page_index in range(heap.n_pages):
            page = disk.read_page(heap.name, page_index)
            tuples.extend(heap.serializer.decode(r) for r in page.records())
        return tuples

    def _serializer(self, name: str) -> TupleSerializer:
        """The serializer of table ``name`` (WAL rows share its layout)."""
        try:
            return self.session.tables[name].serializer
        except KeyError:
            raise RecoveryError(f"no table {name} registered in this session") from None

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, tracer=None) -> str:
        """Fold every current version into its base file and reset the WAL.

        After a checkpoint the epoch-0 files *are* the committed state,
        so the log can be emptied; the next crash recovers from the new
        bases alone.  Base files are pushed through the durability
        barrier explicitly.
        """
        session = self.session
        disk = session.disk
        stats = OperationStats()
        folded = 0
        with session.disk.use_stats(stats), maybe_span(tracer, "wal-checkpoint"):
            for name in sorted(session.tables):
                heap = session.tables[name]
                if self.snapshots.epoch(name) == 0:
                    disk.sync(name)
                    continue
                contents = self._contents(heap)
                self.snapshots.forget(name)
                disk.delete(name)
                base = HeapFile(name, heap.schema, disk, session.fixed_tuple_size)
                base.load(contents)
                disk.sync(name)
                session.tables[name] = base
                for (tname, attr), index in sorted(session.indexes.items()):
                    if tname != name:
                        continue
                    rebuilt = SupportIntervalIndex.build(name, attr, base, disk)
                    disk.sync(rebuilt.file)
                    session.indexes[(tname, attr)] = rebuilt
                session.stats_versions.bump(name)
                folded += 1
            self.wal.reset()
            disk.sync(self.wal.file)
        session.last_stats = stats
        return f"checkpoint: {folded} tables folded to base, wal reset"

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self, tracer=None) -> RecoveryReport:
        """Restore the committed state after a crash.

        The session must have :meth:`~repro.session.StorageSession.attach`-ed
        every table (schemas are not self-describing on this disk).  The
        sequence — delete untrusted version files, scan the durable WAL,
        truncate the torn tail, replay committed transactions from the
        bases, rebuild indexes — is deterministic end to end, so running
        it twice yields bit-identical files.
        """
        session = self.session
        disk = session.disk
        stats = OperationStats()
        report = RecoveryReport()
        with session.disk.use_stats(stats), maybe_span(tracer, "recovery"):
            for file in list(disk.files()):
                if "@e" in file:
                    disk.delete(file)
            # Replay starts from the epoch-0 bases: re-point every table
            # (and any index whose version file was just deleted) at the
            # base file, so recovery is restartable — a second run, or one
            # on a session that already holds versioned heaps, sees the
            # same starting state.
            for name in sorted(session.tables):
                heap = session.tables[name]
                if heap.name != name:
                    session.tables[name] = HeapFile.attach(
                        name, heap.schema, disk, session.fixed_tuple_size
                    )
                    session.stats_versions.bump(name)
            for (tname, attr), index in sorted(session.indexes.items()):
                if "@e" in index.file:
                    session.indexes[(tname, attr)] = SupportIntervalIndex.build(
                        tname, attr, session.tables[tname], disk
                    )
            self.snapshots = SnapshotManager(disk, self.snapshots.retain)
            image = self.wal.image()
            result = scan(image)
            torn = len(image) - result.good_length
            if torn:
                with maybe_span(tracer, "wal-truncate", bytes=torn):
                    self.wal.truncate_to(result.good_length, image)
            report.truncated_bytes = torn
            states: Dict[str, TableState] = {}
            touched: Dict[str, int] = {}
            ops_by_txn: Dict[int, List[WalRecord]] = {}
            max_txn = 0
            with maybe_span(tracer, "wal-replay"):
                for entry in result.entries:
                    record = entry.record
                    max_txn = max(max_txn, record.txn)
                    if record.kind == KIND_BEGIN:
                        ops_by_txn[record.txn] = []
                    elif record.kind in (KIND_INSERT, KIND_DELETE):
                        ops_by_txn.setdefault(record.txn, []).append(record)
                    elif record.kind == KIND_COMMIT:
                        rows = ops_by_txn.pop(record.txn, [])
                        for row in rows:
                            replay_record(self._recovery_state(states, row.table), row)
                        for table in sorted({row.table for row in rows}):
                            touched[table] = touched.get(table, 0) + 1
                        report.txns_replayed += 1
                        report.records_replayed += len(rows)
            for name in sorted(touched):
                epoch = touched[name]
                state = states[name]
                # Recovery rebuilds from scratch: append-only detection
                # does not apply across a whole log of transactions.
                state.appended_only = False
                self._recover_base_indexes(name)
                self._install(name, session.tables[name], state, epoch)
                report.tables[name] = (epoch, len(state.tuples))
            self.next_txn = max(self.next_txn, max_txn + 1)
        self.recoveries += 1
        session.last_stats = stats
        registry = getattr(session, "registry", None)
        if registry is not None:
            registry.count_wal(
                recoveries=1,
                replayed_records=report.records_replayed,
                truncated_bytes=torn,
            )
        return report

    def _recovery_state(self, states: Dict[str, TableState], name: str) -> TableState:
        """The replay state of ``name``, seeded from its base heap file."""
        state = states.get(name)
        if state is None:
            heap = self.session.tables.get(name)
            if heap is None:
                raise RecoveryError(
                    f"WAL references table {name} but the session never attached it"
                )
            states[name] = state = TableState(heap.serializer, self._contents(heap))
        return state

    def _recover_base_indexes(self, name: str) -> None:
        """Re-register indexes whose base files survived the crash.

        A pre-crash ``create_index`` left ``__idx_<table>_<attr>`` on the
        disk; recovery adopts it into ``session.indexes`` (built against
        the base, epoch 0) so the subsequent install carries it forward
        to the recovered epoch — no stale index entry can outlive a
        crash.
        """
        session = self.session
        heap = session.tables[name]
        for attr in heap.schema.names():
            if (name, attr) in session.indexes:
                continue
            base_file = index_file_name(name, attr)
            if session.disk.exists(base_file):
                column = heap.schema.index_of(attr)
                session.indexes[(name, attr)] = SupportIntervalIndex.build(
                    name, attr, heap, session.disk
                )
                assert session.indexes[(name, attr)].column == column

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def status(self) -> str:
        """The ``\\wal`` shell view: log, commit, and snapshot health."""
        wal = self.wal
        session = self.session
        durable = wal.synced_bytes
        lines = [
            f"wal: file {wal.file!r}, {durable} durable bytes, "
            f"{wal.pending_frames} pending frames",
            f"records={wal.records_appended} commits={wal.commits_appended} "
            f"syncs={wal.syncs} group_commits={wal.group_commits} "
            f"truncated_bytes={wal.truncated_bytes}",
            f"index maintenance: {self.index_delta_merges} delta merges, "
            f"{self.index_patches} patches, "
            f"{self.index_rebuilds} rebuilds; recoveries={self.recoveries}",
        ]
        versions = ", ".join(
            f"{name}@e{self.snapshots.epoch(name)} ({session.tables[name].n_tuples} rows)"
            for name in sorted(session.tables)
        )
        lines.append(f"tables: {versions or '(none)'}")
        lines.append(
            f"snapshots: retain={self.snapshots.retain} "
            f"pinned={self.snapshots.pinned()} published={self.snapshots.published}"
        )
        return "\n".join(lines)


__all__ = ["RecoveryReport", "TableState", "WriteManager", "replay_record"]
