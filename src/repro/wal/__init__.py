"""Durable fuzzy writes: WAL, group commit, snapshots, crash recovery.

The package turns the read-only storage engine into one with a real
write path while keeping every paper-era invariant intact:

* :mod:`repro.wal.record` — CRC32-framed, length-prefixed log records
  whose :func:`~repro.wal.record.scan` never panics on a torn tail;
* :mod:`repro.wal.log` — the :class:`WriteAheadLog`: buffered frames,
  one durability barrier per group commit, torn-tail truncation;
* :mod:`repro.wal.snapshot` — epoch-based immutable heap versions with
  pinning, bounded retention, and typed too-old errors;
* :mod:`repro.wal.manager` — the :class:`WriteManager` driving
  log → sync → apply, staged index delta-merges, checkpoints, and the
  deterministic crash recovery the chaos suite replays at every byte
  offset of the log.
"""

from .log import WAL_FILE, WriteAheadLog
from .manager import RecoveryReport, TableState, WriteManager, replay_record
from .record import (
    KIND_BEGIN,
    KIND_COMMIT,
    KIND_DELETE,
    KIND_INSERT,
    ScannedRecord,
    ScanResult,
    WalRecord,
    decode_frame,
    encode_record,
    scan,
)
from .snapshot import Snapshot, SnapshotManager, version_file_name

__all__ = [
    "KIND_BEGIN",
    "KIND_COMMIT",
    "KIND_DELETE",
    "KIND_INSERT",
    "RecoveryReport",
    "ScanResult",
    "ScannedRecord",
    "Snapshot",
    "SnapshotManager",
    "TableState",
    "WAL_FILE",
    "WalRecord",
    "WriteAheadLog",
    "WriteManager",
    "decode_frame",
    "encode_record",
    "replay_record",
    "scan",
    "version_file_name",
]
