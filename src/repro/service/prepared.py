"""Prepared queries: the front-end pipeline run once, executed many times.

A :class:`PreparedQuery` is produced by ``StorageSession.prepare(sql)``
or ``FuzzyDatabase.prepare(sql)``.  It owns the parsed template (which
may contain ``?`` placeholders, including ``WITH D >= ?``), the nesting
classification, and a :class:`PlanArtifact` describing how far the
planner got ahead of time:

========== ==========================================================
kind       what is cached / what happens per execution
========== ==========================================================
``flat``   the unnested single-block query (and, when the statement has
           no placeholders, the compiled merge-join operator tree);
           executions with placeholders bind values then recompile the
           predicate closures only.
``grouped`` a ready :class:`~repro.engine.grouped.GroupedAntiJoin`
           (Sections 5/7); placeholder-free statements only.
``ja``     a ready :class:`~repro.engine.pipelined.JAPipeline`
           (Section 6); placeholder-free statements only.
``memory`` an :class:`~repro.unnest.pipeline.UnnestedPlan` for the
           in-memory :class:`~repro.db.FuzzyDatabase` engine.
``dispatch`` nothing beyond parse + classification: values are bound and
           the normal strategy dispatch runs per execution (used when
           predicate closures would bake placeholder values in).
``naive``  parse + classification only; executions bind and run the
           naive nested-loop evaluator (the always-correct fallback).
========== ==========================================================

Executing a prepared query never re-enters the lexer, parser, binder, or
rewriter — the acceptance test asserts exactly that via tracer spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from ..sql.ast import SelectQuery
from ..sql.params import ParameterError, bind_parameters


@dataclass
class PlanArtifact:
    """What the planner pre-computed for one prepared statement."""

    kind: str
    #: ``flat``: the unnested single-block template (placeholders intact).
    flat: Optional[SelectQuery] = None
    #: Which rewrite fired (EXPLAIN/metrics label).
    rule: str = ""
    #: ``flat`` with no placeholders: the compiled operator tree.
    operator: object = None
    #: ``grouped`` / ``ja``: the ready storage-level executor.
    executable: object = None
    #: ``grouped`` / ``ja``: the session strategy string.
    strategy: str = ""
    #: ``memory``: the :class:`UnnestedPlan` for the in-memory engine.
    plan: object = None


class PreparedQuery:
    """A statement prepared once and executable many times.

    Obtained from ``session.prepare(sql)``; call :meth:`execute` with one
    positional value per ``?`` placeholder (numbered left to right in
    text order, the ``WITH D >= ?`` threshold included)::

        stmt = session.prepare(
            "SELECT R.K FROM R WHERE R.V = ? WITH D >= ?")
        strict = stmt.execute(["tall", 0.8])
        lenient = stmt.execute(["tall", 0.2])

    A prepared query is bound to the session that created it and remains
    valid across data changes — unlike a plan-cache entry it is *not*
    invalidated when statistics move, because its rewrite is structural;
    only the cached operator tree could grow stale, and the owning
    session rebuilds that per execution when placeholders are present.
    Concurrent ``execute`` calls on one instance are safe under the
    session's thread-safety contract (see ``docs/query_service.md``).
    """

    def __init__(
        self,
        owner: object,
        sql_text: str,
        template: SelectQuery,
        nesting: object,
        param_count: int,
        artifact: PlanArtifact,
    ):
        self._owner = owner
        self.sql_text = sql_text
        self.template = template
        self.nesting = nesting
        self.param_count = param_count
        self.artifact = artifact
        #: How many times this statement has been executed.
        self.executions = 0

    @property
    def is_closed(self) -> bool:
        """True when the statement has no placeholders to bind."""
        return self.param_count == 0

    def bind(self, params: Sequence = ()) -> SelectQuery:
        """The template with ``params`` substituted for its placeholders.

        Raises :class:`~repro.sql.params.ParameterError` unless exactly
        ``param_count`` values are supplied.
        """
        self.check_arity(params)
        if not self.param_count:
            return self.template
        return bind_parameters(self.template, params)

    def check_arity(self, params: Sequence) -> None:
        """Fail loudly on a placeholder/value count mismatch."""
        if len(params) != self.param_count:
            raise ParameterError(
                f"statement has {self.param_count} placeholder(s) "
                f"but {len(params)} value(s) were bound"
            )

    def execute(self, params: Sequence = (), metrics=None, tracer=None):
        """Run the prepared statement with ``params`` bound.

        Returns a :class:`~repro.data.relation.FuzzyRelation`, exactly as
        the owning session's ``query()`` would — but without re-parsing,
        re-binding, or re-rewriting the statement.
        """
        self.check_arity(params)
        return self._owner._execute_prepared(
            self, tuple(params), metrics=metrics, tracer=tracer
        )

    def describe(self) -> str:
        """A one-line summary of what was cached at prepare time."""
        cached = {
            "flat": "unnested flat query"
                    + (" + compiled operator tree" if self.artifact.operator is not None else ""),
            "grouped": "grouped anti-join executor",
            "ja": "pipelined T1/T2 executor",
            "memory": "unnested in-memory plan",
            "dispatch": "classification only (strategy chosen per execution)",
            "naive": "classification only (naive fallback)",
        }.get(self.artifact.kind, self.artifact.kind)
        return (
            f"prepared[{self.nesting.value}] params={self.param_count} "
            f"cached={cached}"
        )

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.sql_text!r}, params={self.param_count}, "
            f"kind={self.artifact.kind!r}, executions={self.executions})"
        )
