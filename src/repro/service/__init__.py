"""The query service layer: prepared statements and plan caching.

The paper's point is that nested fuzzy queries should not pay quadratic
cost twice — yet a naive server re-lexes, re-parses, re-classifies, and
re-applies the Theorem 4.1–8.1 rewrites for every call, even when the
SQL text is identical to the one it just ran.  This package makes the
compiled plan a reusable object:

* :class:`~repro.service.prepared.PreparedQuery` — parse + classify +
  rewrite (+ compile, when the statement has no ``?`` placeholders) done
  once, executable many times with per-call parameter bindings;
* :class:`~repro.service.plancache.PlanCache` — an LRU cache of prepared
  queries keyed on normalized SQL text, validated against per-relation
  statistics versions (:class:`~repro.engine.statistics.StatisticsVersions`)
  so data or fan-out drift invalidates stale plans.

See ``docs/query_service.md`` for the API walkthrough and the
thread-safety contract.
"""

from .plancache import CacheEntry, PlanCache, normalize_sql
from .prepared import PlanArtifact, PreparedQuery

__all__ = [
    "CacheEntry",
    "PlanCache",
    "normalize_sql",
    "PlanArtifact",
    "PreparedQuery",
]
