"""An LRU plan cache keyed on normalized SQL text.

Entries are validated against per-relation statistics versions: each
stored plan records the ``{relation: version}`` snapshot it was built
under, and a lookup re-snapshots those relations — one dict comparison
decides freshness.  A stale entry is evicted and reported as an
*invalidation* (which also counts as a miss), so the three counters obey
``lookups == hits + misses`` and ``invalidations <= misses``.

All operations take the cache lock; the cache may be shared by threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from ..observe.fingerprint import canonicalize_sql

#: Lookup outcomes, as recorded on a query's collector.
HIT, MISS, INVALIDATED = "hit", "miss", "invalidated"

#: The cache key normalizer — the *shared* statement canonicalizer
#: (:func:`repro.observe.fingerprint.canonicalize_sql`), so the plan
#: cache, the query log, and workload fingerprinting can never disagree
#: about statement identity.  Literals are preserved: the cache must not
#: conflate ``'very  tall'`` with ``'very tall'`` (different terms) nor
#: two statements differing only in a constant a compiled predicate bakes
#: in; only the literal-folding *fingerprint* conflates those.
normalize_sql = canonicalize_sql


@dataclass
class CacheEntry:
    """One cached plan plus the statistics snapshot it was built under."""

    value: object
    tokens: Dict[str, int]


class PlanCache:
    """A thread-safe LRU cache of prepared queries.

    ``lookup`` takes a *token function* rather than a snapshot: only the
    entry knows which relations its plan reads, so the cache asks the
    caller to re-snapshot exactly those keys.  This avoids parsing the
    SQL just to learn what it touches.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("a plan cache needs at least one slot")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._lock = threading.RLock()

    def lookup(
        self,
        key: str,
        current_tokens: Callable[[Iterable[str]], Dict[str, int]],
    ) -> Tuple[Optional[object], str]:
        """Return ``(value, outcome)``; ``value`` is None unless a hit.

        ``outcome`` is one of ``"hit"``, ``"miss"``, ``"invalidated"`` —
        the last meaning an entry existed but its statistics snapshot no
        longer matches, so it was evicted.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, MISS
            if current_tokens(entry.tokens) != entry.tokens:
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None, INVALIDATED
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.value, HIT

    def store(self, key: str, value: object, tokens: Dict[str, int]) -> None:
        """Insert (or replace) an entry, evicting LRU entries over capacity."""
        with self._lock:
            self._entries[key] = CacheEntry(value, dict(tokens))
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def peek(self, key: str) -> Optional[CacheEntry]:
        """The entry under ``key`` — no counters, no validation, no LRU touch.

        Introspection only (the shell's ``\\explain`` uses it to show the
        statistics tokens a cached plan was costed against); never use it
        to serve a plan.
        """
        with self._lock:
            return self._entries.get(key)

    def evict_if(self, predicate: Callable[[str, CacheEntry], bool]) -> int:
        """Drop entries matching ``predicate(key, entry)``; returns the count.

        The adaptive write path uses this for benign installs: flat plans
        survive (their scans rebind to the new heap version at execution),
        but grouped / pipelined artifacts bake heap references into their
        executables and must go even though no statistics version moved.
        """
        with self._lock:
            stale = [key for key, entry in self._entries.items() if predicate(key, entry)]
            for key in stale:
                del self._entries[key]
            self.invalidations += len(stale)
            return len(stale)

    def invalidate(self, relation: Optional[str] = None) -> int:
        """Drop entries touching ``relation`` (or all); returns the count."""
        with self._lock:
            if relation is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                name = relation.upper()
                stale = [
                    key for key, entry in self._entries.items()
                    if name in entry.tokens
                ]
                for key in stale:
                    del self._entries[key]
                dropped = len(stale)
            self.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )
