"""The typed failure taxonomy for resilient query execution.

Every failure the engine can surface to a caller is an instance of
:class:`FuzzyQueryError`; a served system can therefore promise that a
query either returns the bit-identical possibility-measure result or
raises one of the classes below — never a bare ``KeyError`` escaping from
a page parse or a silently wrong answer after a torn write.

The taxonomy splits along two axes:

* **storage faults** (:class:`TransientIOError`, :class:`DiskFullError`,
  :class:`PageCorruptionError`) — raised by the disk layer, possibly
  injected by :mod:`repro.faults`; transient ones are retried at the
  disk boundary, persistent ones propagate or trigger degradation;
* **query-lifecycle faults** (:class:`QueryTimeoutError`,
  :class:`QueryCancelledError`, :class:`ResourceExhaustedError`) —
  raised cooperatively by :class:`repro.resilience.QueryGuard` checks or
  by the buffer pool when every frame is pinned.
"""

from __future__ import annotations


class FuzzyQueryError(Exception):
    """Base class of every typed error the engine raises to callers."""


class StorageFaultError(FuzzyQueryError):
    """Base class for faults originating at the storage layer."""


class TransientIOError(StorageFaultError):
    """A page transfer failed but is expected to succeed on retry.

    The disk's bounded exponential-backoff retry loop absorbs bursts
    shorter than its attempt budget; longer bursts escape as this error.
    """


class DiskFullError(StorageFaultError):
    """An append was refused because the disk has no capacity left.

    During an external-sort spill this triggers graceful degradation to
    the nested-loop join path instead of failing the query.
    """


class PageCorruptionError(StorageFaultError):
    """A page image failed its checksum or could not be parsed.

    Torn writes are detected at *read* time: the page checksum written by
    :meth:`repro.storage.page.Page.to_bytes` no longer matches.
    """


class ResourceExhaustedError(FuzzyQueryError):
    """A bounded runtime resource (buffer frames, memory budget) ran out."""


class QueryTimeoutError(FuzzyQueryError):
    """The query exceeded its ``timeout_ms`` deadline."""


class QueryCancelledError(FuzzyQueryError):
    """The query observed its :class:`~repro.resilience.CancelToken` set."""


class WalCorruptionError(StorageFaultError):
    """A write-ahead-log frame failed its CRC32 or structural checks.

    Recovery never *raises* this for a torn tail — a bad frame simply
    ends the committed prefix and the tail is truncated.  It surfaces
    only when a caller strictly decodes a frame it believed durable.
    """


class RecoveryError(FuzzyQueryError):
    """Crash recovery could not restore a consistent table state.

    Raised when replay references a table the session never attached, or
    when the base heap file a committed transaction builds on is missing.
    """


class SnapshotTooOldError(FuzzyQueryError):
    """A snapshot read referenced an epoch the version store already GC'd.

    Snapshots pin their epochs while open; reading through a released
    snapshot whose version files were retired raises this instead of
    silently serving newer data.
    """


__all__ = [
    "FuzzyQueryError",
    "StorageFaultError",
    "TransientIOError",
    "DiskFullError",
    "PageCorruptionError",
    "ResourceExhaustedError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "WalCorruptionError",
    "RecoveryError",
    "SnapshotTooOldError",
]
