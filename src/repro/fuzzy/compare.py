"""Possibility degrees of fuzzy comparisons: ``d(X theta Y)``.

Implements the paper's satisfaction-degree semantics

    d(X theta Y) = sup_{x,y} min(mu_U(x), mu_V(y), mu_theta(x, y))

exactly, for every combination of crisp, trapezoidal, and discrete
distributions, and for ``theta`` in ``{=, !=, <, <=, >, >=}`` plus
tolerance-based similarity ("approximately equal", see
:mod:`repro.fuzzy.similarity`).

Binary operators admit closed forms:

* ``=``  — height of the highest intersection point of the two membership
  functions (sup-min of the piecewise-linear curves);
* ``<=`` — ``sup_x min(mu_U(x), sup_{y>=x} mu_V(y))``, computed with the
  nonincreasing right envelope of ``mu_V``;
* ``!=`` — degenerates to 1 unless one side is (effectively) a single point.
"""

from __future__ import annotations

import enum
import threading
from collections import OrderedDict
from typing import List, Optional, Sequence, Tuple

from .crisp import CrispLabel, CrispNumber
from .discrete import DiscreteDistribution
from .distribution import Distribution
from .trapezoid import TrapezoidalNumber


class Op(enum.Enum):
    """Comparison operators of the Fuzzy SQL WHERE clause."""

    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    SIMILAR = "~="

    @classmethod
    def from_symbol(cls, symbol: str) -> "Op":
        """The :class:`Op` for a comparison symbol, accepting aliases like ``!=``."""
        for op in cls:
            if op.value == symbol:
                return op
        aliases = {"!=": cls.NE, "==": cls.EQ, "=~": cls.SIMILAR}
        if symbol in aliases:
            return aliases[symbol]
        raise ValueError(f"unknown comparison operator {symbol!r}")

    def flipped(self) -> "Op":
        """The operator with its operands swapped (x op y == y flip(op) x)."""
        table = {
            Op.EQ: Op.EQ,
            Op.NE: Op.NE,
            Op.SIMILAR: Op.SIMILAR,
            Op.LT: Op.GT,
            Op.LE: Op.GE,
            Op.GT: Op.LT,
            Op.GE: Op.LE,
        }
        return table[self]

    def negated(self) -> "Op":
        """The complementary crisp operator (used by rewrites like JALL)."""
        table = {
            Op.EQ: Op.NE,
            Op.NE: Op.EQ,
            Op.LT: Op.GE,
            Op.LE: Op.GT,
            Op.GT: Op.LE,
            Op.GE: Op.LT,
        }
        if self not in table:
            raise ValueError(f"{self} has no crisp negation")
        return table[self]


def possibility(left: Distribution, op: Op, right: Distribution) -> float:
    """``d(left op right)`` under the possibility measure.

    Comparing a numeric distribution with a symbolic one yields 0 for every
    operator except ``!=`` (they can never be equal, hence are certainly
    unequal at degree ``min(height, height)``).
    """
    if op is Op.SIMILAR:
        raise ValueError("similarity comparisons need a tolerance; use similar()")
    if left.is_numeric != right.is_numeric:
        if op is Op.NE:
            return min(left.height, right.height)
        return 0.0
    if op is Op.EQ:
        return _equality(left, right)
    if op is Op.NE:
        return _inequality(left, right)
    if op in (Op.GT, Op.GE):
        return _less_than(right, left, strict=(op is Op.GT))
    return _less_than(left, right, strict=(op is Op.LT))


def necessity(left: Distribution, op: Op, right: Distribution) -> float:
    """``Nec(left op right) = 1 - Poss(left  not-op  right)`` (Section 2).

    The paper's *discussion* measure: the double-measure system of
    Prade-Testemale evaluates every predicate to a (possibility,
    necessity) pair, which makes algebraic operations non-composable and
    unnesting impossible — the reason the paper (and this system) measures
    satisfaction by possibility alone.  Provided for analysis and tests;
    no query operator uses it.

    With convex normal distributions necessity never exceeds possibility.
    """
    return 1.0 - possibility(left, op.negated(), right)


def intervals_intersect(left: Distribution, right: Distribution) -> bool:
    """True when the support intervals overlap (necessary for ``d(=) > 0``)."""
    lb, le = left.interval()
    rb, re = right.interval()
    return not (le < rb or re < lb)


# ----------------------------------------------------------------------
# Equality
# ----------------------------------------------------------------------

def _equality(left: Distribution, right: Distribution) -> float:
    crisp_l = _as_point(left)
    crisp_r = _as_point(right)
    if crisp_l is not None and crisp_r is not None:
        value_l, h_l = crisp_l
        value_r, h_r = crisp_r
        return min(h_l, h_r) if value_l == value_r else 0.0
    if crisp_l is not None:
        value, h = crisp_l
        return min(h, right.membership(value))
    if crisp_r is not None:
        value, h = crisp_r
        return min(h, left.membership(value))
    if isinstance(left, DiscreteDistribution) and isinstance(right, DiscreteDistribution):
        best = 0.0
        for value, p in left.items.items():
            q = right.items.get(value, 0.0)
            if q and min(p, q) > best:
                best = min(p, q)
        return best
    if isinstance(left, DiscreteDistribution):
        return max(min(p, right.membership(v)) for v, p in left.items.items())
    if isinstance(right, DiscreteDistribution):
        return max(min(p, left.membership(v)) for v, p in right.items.items())
    lpl, rpl = left.as_piecewise(), right.as_piecewise()
    if lpl is None or rpl is None:
        raise TypeError(f"cannot compare {type(left).__name__} with {type(right).__name__}")
    if not intervals_intersect(left, right):
        return 0.0
    return lpl.sup_min(rpl)


# ----------------------------------------------------------------------
# Strict/non-strict order
# ----------------------------------------------------------------------

def _less_than(left: Distribution, right: Distribution, strict: bool) -> float:
    """``Poss(left < right)`` or ``Poss(left <= right)``.

    Strictness is handled exactly whenever a *point* (crisp value, spike,
    or discrete element) is involved: ``Poss(u < v)`` against a point ``v``
    is the supremum of ``mu_u`` strictly below ``v``, which differs from
    the non-strict envelope at support boundaries of rectangular shapes.
    For two continuous non-point distributions, strict and non-strict
    possibilities coincide except on a measure-zero coincidence of jump
    boundaries, where we use closure semantics (the fuzzy-database
    convention).
    """
    if not left.is_numeric:
        return _less_than_labels(left, right, strict)
    crisp_l = _as_point(left)
    crisp_r = _as_point(right)
    if crisp_l is not None and crisp_r is not None:
        (vl, hl), (vr, hr) = crisp_l, crisp_r
        ok = vl < vr if strict else vl <= vr
        return min(hl, hr) if ok else 0.0
    if isinstance(left, DiscreteDistribution) and isinstance(right, DiscreteDistribution):
        best = 0.0
        for x, p in left.items.items():
            for y, q in right.items.items():
                if (x < y if strict else x <= y) and min(p, q) > best:
                    best = min(p, q)
        return best
    if isinstance(left, DiscreteDistribution):
        return max(
            min(p, _sup_above(right, x, strict)) for x, p in left.items.items()
        )
    if isinstance(right, DiscreteDistribution):
        return max(
            min(q, _sup_below(left, y, strict)) for y, q in right.items.items()
        )
    if crisp_l is not None:
        value, h = crisp_l
        return min(h, _sup_above(right, value, strict))
    if crisp_r is not None:
        value, h = crisp_r
        return min(h, _sup_below(left, value, strict))
    # Both continuous with nonempty interiors: closure semantics.
    lpl = left.as_piecewise()
    rpl = right.as_piecewise()
    return lpl.sup_min(rpl.running_max_right())


def _sup_below(dist: Distribution, v: float, strict: bool) -> float:
    """``sup_{x < v} mu(x)`` (or ``x <= v`` when non-strict)."""
    if isinstance(dist, DiscreteDistribution):
        degrees = [p for x, p in dist.items.items() if (x < v if strict else x <= v)]
        return max(degrees) if degrees else 0.0
    crisp = _as_point(dist)
    if crisp is not None:
        value, h = crisp
        return h if (value < v if strict else value <= v) else 0.0
    assert isinstance(dist, TrapezoidalNumber)
    if not strict:
        if v < dist.a:
            return 0.0
        if v >= dist.b:
            return 1.0
        return dist.membership(v)
    if v <= dist.a:
        return 0.0
    if v >= dist.b:
        return 1.0
    return (v - dist.a) / (dist.b - dist.a)


def _sup_above(dist: Distribution, v: float, strict: bool) -> float:
    """``sup_{y > v} mu(y)`` (or ``y >= v`` when non-strict)."""
    if isinstance(dist, DiscreteDistribution):
        degrees = [p for y, p in dist.items.items() if (y > v if strict else y >= v)]
        return max(degrees) if degrees else 0.0
    crisp = _as_point(dist)
    if crisp is not None:
        value, h = crisp
        return h if (value > v if strict else value >= v) else 0.0
    assert isinstance(dist, TrapezoidalNumber)
    if not strict:
        if v > dist.d:
            return 0.0
        if v <= dist.c:
            return 1.0
        return dist.membership(v)
    if v >= dist.d:
        return 0.0
    if v <= dist.c:
        return 1.0
    return (dist.d - v) / (dist.d - dist.c)


def _less_than_labels(left: Distribution, right: Distribution, strict: bool) -> float:
    """Lexicographic order comparison over symbolic domains."""
    best = 0.0
    for x, p in _label_items(left):
        for y, q in _label_items(right):
            if (x < y if strict else x <= y) and min(p, q) > best:
                best = min(p, q)
    return best


# ----------------------------------------------------------------------
# Inequality
# ----------------------------------------------------------------------

def _inequality(left: Distribution, right: Distribution) -> float:
    """``Poss(left != right) = sup_{x != y} min(mu_U(x), mu_V(y))``."""
    crisp_l = _as_point(left)
    crisp_r = _as_point(right)
    if crisp_l is not None and crisp_r is not None:
        (vl, hl), (vr, hr) = crisp_l, crisp_r
        return min(hl, hr) if vl != vr else 0.0
    if crisp_l is not None:
        value, h = crisp_l
        return min(h, _sup_excluding(right, value))
    if crisp_r is not None:
        value, h = crisp_r
        return min(h, _sup_excluding(left, value))
    if isinstance(left, DiscreteDistribution):
        best = 0.0
        for x, p in left.items.items():
            best = max(best, min(p, _sup_excluding(right, x)))
        return best
    if isinstance(right, DiscreteDistribution):
        best = 0.0
        for y, q in right.items.items():
            best = max(best, min(q, _sup_excluding(left, y)))
        return best
    # Two continuous distributions with nonempty interiors: one can always
    # pick x != y near the cores, so the degree is the min of the heights.
    return min(left.height, right.height)


def _sup_excluding(dist: Distribution, point) -> float:
    """``sup_{y != point} mu(y)`` — drops at most a single spike."""
    if isinstance(dist, DiscreteDistribution):
        degrees = [p for v, p in dist.items.items() if v != point]
        return max(degrees) if degrees else 0.0
    crisp = _as_point(dist)
    if crisp is not None:
        value, h = crisp
        return 0.0 if value == point else h
    # Continuous with nonempty interior: removing one point keeps the sup.
    return dist.height


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _as_point(dist: Distribution) -> Optional[Tuple[object, float]]:
    """``(value, height)`` when the distribution is a single point, else None.

    Covers :class:`CrispNumber`, :class:`CrispLabel`, degenerate trapezoids
    (``a == d``), and single-element discrete distributions.
    """
    if isinstance(dist, CrispNumber):
        return (dist.value, 1.0)
    if isinstance(dist, CrispLabel):
        return (dist.value, 1.0)
    if isinstance(dist, TrapezoidalNumber) and dist.a == dist.d:
        return (dist.a, 1.0)
    if isinstance(dist, DiscreteDistribution) and len(dist.items) == 1:
        ((value, p),) = dist.items.items()
        return (value, p)
    return None


def _label_items(dist: Distribution):
    if isinstance(dist, CrispLabel):
        return [(dist.value, 1.0)]
    if isinstance(dist, DiscreteDistribution) and not dist.is_numeric:
        return list(dist.items.items())
    raise TypeError(f"{type(dist).__name__} is not a symbolic distribution")


# ----------------------------------------------------------------------
# Batched comparison-degree kernel
# ----------------------------------------------------------------------

def _as_columns(values: Sequence[Distribution]):
    """``(a, b, e, d, kinds)`` parallel columns, or None for other shapes.

    Only crisp numbers and trapezoids lower to the column form the
    vectorized kernel understands; any other distribution in the block
    vetoes vectorization (the scalar path handles it instead).
    """
    from ..columnar.pages import KIND_POINT, KIND_TRAPEZOID

    col_a: List[float] = []
    col_b: List[float] = []
    col_e: List[float] = []
    col_d: List[float] = []
    kinds: List[int] = []
    for value in values:
        if isinstance(value, CrispNumber):
            v = value.value
            col_a.append(v)
            col_b.append(v)
            col_e.append(v)
            col_d.append(v)
            kinds.append(KIND_POINT)
        elif isinstance(value, TrapezoidalNumber):
            col_a.append(value.a)
            col_b.append(value.b)
            col_e.append(value.c)
            col_d.append(value.d)
            kinds.append(KIND_POINT if value.a == value.d else KIND_TRAPEZOID)
        else:
            return None
    return col_a, col_b, col_e, col_d, kinds


class ComparisonKernel:
    """Batched, memoized evaluation of ``d(probe op candidate)``.

    The merge-join inner loop evaluates one probe value against every
    candidate resident in the sliding window; the associative-array view of
    fuzzy relations shows that this is a *block* operation, not ``k``
    independent ones.  :meth:`batch` evaluates one probe distribution
    against a block of candidates in a single call and stores every degree
    in a bounded LRU memo keyed on ``(probe.key(), op, candidate.key())``,
    so repeated pairs — ubiquitous when attribute values are drawn from a
    small vocabulary of linguistic terms — are computed once per query.

    The kernel is thread-safe (a single lock guards the memo) so one
    instance can be shared by all partition workers of a parallel join.
    Memo hits deliberately do **not** change the ``fuzzy_evaluations``
    accounting done by callers: the counters measure logical work, keeping
    EXPLAIN ANALYZE output bit-identical with and without the kernel.
    """

    __slots__ = ("capacity", "_memo", "_lock", "hits", "misses")

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError("kernel capacity must be non-negative")
        #: Memo bound; 0 disables memoization entirely (every call is a
        #: miss), which the boundary tests use to pin the memo-off
        #: behaviour of the batched paths.
        self.capacity = capacity
        self._memo: "OrderedDict[Tuple, float]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def possibility(self, left: Distribution, op: Op, right: Distribution) -> float:
        """Memoized ``possibility(left, op, right)``."""
        key = (left.key(), op, right.key())
        with self._lock:
            cached = self._memo.get(key)
            if cached is not None:
                self._memo.move_to_end(key)
                self.hits += 1
                return cached
        degree = possibility(left, op, right)
        self._store(key, degree)
        return degree

    def batch(
        self, probe: Distribution, op: Op, candidates: Sequence[Distribution]
    ) -> List[float]:
        """Degrees of one probe against a block of candidates, priming the memo.

        Equivalent to ``[possibility(probe, op, c) for c in candidates]``
        but resolves the probe's key once and fills the memo in a single
        pass, which is what both join paths call per window scan.  Memo
        misses for an equality over purely crisp/trapezoidal operands are
        computed by the vectorized column kernel
        (:func:`repro.columnar.kernel.batch_eq_possibility`) in one sweep
        — bit-identical to the scalar library by that kernel's contract —
        instead of ``k`` dispatches through :func:`possibility`.
        """
        probe_key = probe.key()
        degrees: List[Optional[float]] = [None] * len(candidates)
        missing: List[int] = []
        for i, candidate in enumerate(candidates):
            key = (probe_key, op, candidate.key())
            with self._lock:
                cached = self._memo.get(key)
                if cached is not None:
                    self._memo.move_to_end(key)
                    self.hits += 1
                    degrees[i] = cached
                    continue
            missing.append(i)
        if missing:
            computed = self._compute_block(probe, op, [candidates[i] for i in missing])
            for i, degree in zip(missing, computed):
                self._store((probe_key, op, candidates[i].key()), degree)
                degrees[i] = degree
        return degrees

    def _compute_block(
        self, probe: Distribution, op: Op, block: Sequence[Distribution]
    ) -> List[float]:
        """Degrees for the memo misses — vectorized when the shapes allow."""
        vectorized = op in (Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE)
        columns = _as_columns(block) if vectorized else None
        if columns is not None and _as_columns([probe]) is not None:
            from ..columnar.kernel import (
                batch_eq_possibility,
                batch_le_possibility,
                batch_lt_possibility,
            )

            if op is Op.EQ:
                return batch_eq_possibility(probe, *columns, probe_on_left=True)
            # The scalar library evaluates GT/GE as flipped LT/LE, so the
            # orientation flag encodes the operator pair: probe-left LT is
            # "probe < value_i", probe-left GT is "value_i < probe".
            if op in (Op.LT, Op.GT):
                return batch_lt_possibility(
                    probe, *columns, probe_on_left=(op is Op.LT)
                )
            return batch_le_possibility(
                probe, *columns, probe_on_left=(op is Op.LE)
            )
        return [possibility(probe, op, candidate) for candidate in block]

    def _store(self, key: Tuple, degree: float) -> None:
        with self._lock:
            self.misses += 1
            if self.capacity == 0:
                return
            self._memo[key] = degree
            self._memo.move_to_end(key)
            while len(self._memo) > self.capacity:
                self._memo.popitem(last=False)

    def __len__(self) -> int:
        return len(self._memo)
