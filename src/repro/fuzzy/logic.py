"""Fuzzy logical connectives used by the query semantics.

The paper combines satisfaction degrees with the standard (Zadeh) system:
conjunction by ``min``, disjunction by ``max`` (duplicate elimination keeps
the highest degree), and negation by ``1 - d``.  A configurable
:class:`Norms` object is provided so ablations can swap in the product
t-norm, but every paper experiment uses :data:`ZADEH`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable


def _min2(a: float, b: float) -> float:
    return a if a < b else b


def _max2(a: float, b: float) -> float:
    return a if a > b else b


def _product(a: float, b: float) -> float:
    return a * b


def _prob_sum(a: float, b: float) -> float:
    return a + b - a * b


def _complement(a: float) -> float:
    return 1.0 - a


@dataclass(frozen=True)
class Norms:
    """A t-norm / t-conorm / negation triple."""

    t_norm: Callable[[float, float], float] = field(default=_min2)
    t_conorm: Callable[[float, float], float] = field(default=_max2)
    negation: Callable[[float], float] = field(default=_complement)

    def conjunction(self, degrees: Iterable[float]) -> float:
        """Degree of a conjunction; 1.0 for the empty conjunction."""
        result = 1.0
        for d in degrees:
            result = self.t_norm(result, d)
            if result == 0.0:
                break
        return result

    def disjunction(self, degrees: Iterable[float]) -> float:
        """Degree of a disjunction; 0.0 for the empty disjunction."""
        result = 0.0
        for d in degrees:
            result = self.t_conorm(result, d)
        return result

    def negate(self, degree: float) -> float:
        """The negation of ``degree`` under this norm family."""
        return self.negation(degree)


#: The paper's connectives: min / max / complement.
ZADEH = Norms()

#: Product t-norm alternative, for ablation experiments only.
PRODUCT = Norms(t_norm=_product, t_conorm=_prob_sum)


def f_and(*degrees: float) -> float:
    """min-conjunction of satisfaction degrees."""
    return ZADEH.conjunction(degrees)


def f_or(*degrees: float) -> float:
    """max-disjunction of satisfaction degrees."""
    return ZADEH.disjunction(degrees)


def f_not(degree: float) -> float:
    """Fuzzy negation ``1 - d``."""
    return 1.0 - degree


def meets_threshold(degree: float, threshold: float) -> bool:
    """The WITH clause: keep tuples whose degree is >= the threshold.

    ``WITH D > 0`` (the implicit default) keeps strictly positive degrees;
    the paper writes both ``D > z`` and ``D >= z`` forms — we treat a zero
    threshold as strict (membership requires degree > 0) and any positive
    threshold as inclusive, matching the SELECT-statement description.
    """
    if threshold <= 0.0:
        return degree > 0.0
    return degree >= threshold
