"""Crisp (precisely known) values as degenerate possibility distributions.

A crisp value ``v`` has the distribution ``mu(x) = 1 if x == v else 0``; the
paper treats such values uniformly with fuzzy ones (its interval is the
singleton ``[v, v]``).  Numeric and symbolic (label) crisp values are kept
as distinct classes because only the former participate in the interval
order and in fuzzy arithmetic.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from .distribution import Distribution
from .membership import PiecewiseLinear


class CrispNumber(Distribution):
    """A precisely known numeric value."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = float(value)

    def membership(self, x) -> float:
        """1.0 exactly at the crisp value, 0.0 everywhere else."""
        try:
            return 1.0 if float(x) == self.value else 0.0
        except (TypeError, ValueError):
            return 0.0

    @property
    def height(self) -> float:
        """Maximum membership (always 1.0)."""
        return 1.0

    @property
    def is_crisp(self) -> bool:
        """True: a crisp number is a singleton distribution."""
        return True

    @property
    def is_numeric(self) -> bool:
        """True: the domain is numeric."""
        return True

    def key(self) -> Hashable:
        """Hashable key used for duplicate detection and grouping."""
        return ("num", self.value)

    def interval(self) -> Tuple[float, float]:
        """The degenerate support interval ``(value, value)``."""
        return (self.value, self.value)

    def as_piecewise(self) -> PiecewiseLinear:
        # A spike; usable by the sup-min machinery because evaluation at the
        # exact abscissa yields 1 and breakpoints are always candidates.
        """The number as a :class:`PiecewiseLinear` spike at the value."""
        return PiecewiseLinear([(self.value, 1.0)])

    def defuzzify(self) -> float:
        """The crisp value itself."""
        return self.value

    def __repr__(self) -> str:
        return f"CrispNumber({self.value:g})"


class CrispLabel(Distribution):
    """A precisely known symbolic value (e.g. a NAME attribute)."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = str(value)

    def membership(self, x) -> float:
        """1.0 exactly on the label, 0.0 everywhere else."""
        return 1.0 if x == self.value else 0.0

    @property
    def height(self) -> float:
        """Maximum membership (always 1.0)."""
        return 1.0

    @property
    def is_crisp(self) -> bool:
        """True: a crisp label is a singleton distribution."""
        return True

    @property
    def is_numeric(self) -> bool:
        """False: labels are symbolic, not numeric."""
        return False

    def key(self) -> Hashable:
        """Hashable key used for duplicate detection and grouping."""
        return ("label", self.value)

    def interval(self) -> Tuple[str, str]:
        """Labels order lexicographically; the 'interval' is a singleton."""
        return (self.value, self.value)

    def __repr__(self) -> str:
        return f"CrispLabel({self.value!r})"
