"""Discrete possibility distributions (``1/y1 + 0.8/y2`` notation).

The paper's appendix uses distributions like ``1/y1 + .8/y2`` — a finite set
of candidate values, each with its own possibility degree.  Elements may be
numbers or labels, but a single distribution must be homogeneous.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from .distribution import Distribution


class DiscreteDistribution(Distribution):
    """A finite possibility distribution ``{value: possibility}``.

    Degrees must lie in ``(0, 1]``; zero-possibility elements are simply
    absent.  The distribution is *normal* when some element has degree 1.
    """

    __slots__ = ("items", "_numeric")

    def __init__(self, items: Mapping):
        if not items:
            raise ValueError("a discrete distribution needs at least one element")
        cleaned: Dict = {}
        numeric = True
        for value, poss in items.items():
            poss = float(poss)
            if not 0.0 < poss <= 1.0:
                raise ValueError(f"possibility degree must be in (0, 1], got {poss} for {value!r}")
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                numeric = False
            cleaned[value] = poss
        if numeric:
            cleaned = {float(v): p for v, p in cleaned.items()}
        self.items: Dict = cleaned
        self._numeric = numeric

    # ------------------------------------------------------------------
    # Distribution protocol
    # ------------------------------------------------------------------
    def membership(self, x) -> float:
        """The possibility of element ``x`` (0.0 if outside the support)."""
        if self._numeric:
            try:
                x = float(x)
            except (TypeError, ValueError):
                return 0.0
        return self.items.get(x, 0.0)

    @property
    def height(self) -> float:
        """The largest membership over the support."""
        return max(self.items.values())

    @property
    def is_crisp(self) -> bool:
        """Whether the distribution is a single element with membership 1."""
        return len(self.items) == 1 and next(iter(self.items.values())) == 1.0

    @property
    def is_numeric(self) -> bool:
        """Whether every support element is numeric."""
        return self._numeric

    def key(self) -> Hashable:
        """Hashable key used for duplicate detection and grouping."""
        return ("disc",) + tuple(sorted(self.items.items(), key=lambda kv: repr(kv[0])))

    def interval(self) -> Tuple:
        """Span of the candidate values (works for numbers and labels)."""
        values = sorted(self.items)
        return (values[0], values[-1])

    def defuzzify(self) -> float:
        """The most possible element (ties broken by value) — scalar summary."""
        if not self._numeric:
            raise TypeError("cannot defuzzify a symbolic discrete distribution")
        best = max(self.items.values())
        return min(v for v, p in self.items.items() if p == best)

    def __repr__(self) -> str:
        inner = " + ".join(f"{p:g}/{v!r}" for v, p in sorted(self.items.items(), key=lambda kv: -kv[1]))
        return f"DiscreteDistribution({inner})"
