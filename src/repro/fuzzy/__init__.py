"""Possibility-theory substrate: distributions, comparisons, fuzzy logic.

This package implements everything Section 2 of the paper assumes about
fuzzy sets and the theory of possibility: trapezoidal / discrete / crisp
possibility distributions, exact possibility degrees for comparison
predicates, Zadeh connectives, fuzzy arithmetic on alpha-cuts, the interval
order of Definition 3.1, and linguistic vocabularies.
"""

from .arithmetic import add, divide, multiply, scale, subtract, to_trapezoid
from .compare import Op, intervals_intersect, necessity, possibility
from .crisp import CrispLabel, CrispNumber
from .discrete import DiscreteDistribution
from .distribution import Distribution
from .interval_order import begin, end, overlaps, precedes, precedes_eq, sort_key, strictly_before
from .linguistic import UnknownTermError, Vocabulary, lift, paper_vocabulary
from .logic import PRODUCT, ZADEH, Norms, f_and, f_not, f_or, meets_threshold
from .membership import PiecewiseLinear
from .similarity import TableSimilarity, ToleranceSimilarity
from .trapezoid import TrapezoidalNumber

__all__ = [
    "Distribution",
    "TrapezoidalNumber",
    "DiscreteDistribution",
    "CrispNumber",
    "CrispLabel",
    "PiecewiseLinear",
    "Op",
    "possibility",
    "necessity",
    "intervals_intersect",
    "ToleranceSimilarity",
    "TableSimilarity",
    "Norms",
    "ZADEH",
    "PRODUCT",
    "f_and",
    "f_or",
    "f_not",
    "meets_threshold",
    "add",
    "subtract",
    "multiply",
    "divide",
    "scale",
    "to_trapezoid",
    "sort_key",
    "begin",
    "end",
    "precedes",
    "precedes_eq",
    "overlaps",
    "strictly_before",
    "Vocabulary",
    "UnknownTermError",
    "paper_vocabulary",
    "lift",
]
