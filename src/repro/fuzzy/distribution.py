"""The :class:`Distribution` abstraction for possibly ill-known values.

In the paper's data model every attribute value is associated with a
possibility distribution over the attribute's (crisp) domain.  Crisp values
are the degenerate case.  This module defines the common interface shared by
trapezoidal, discrete, and crisp distributions, together with the
value-identity semantics (hash/equality on the *representation*) that the
unnesting rewrites of Section 6 rely on ("``d(r.U = u)`` is binary").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Optional, Tuple

from .membership import PiecewiseLinear


class Distribution(ABC):
    """A possibility distribution restricting the value of an attribute.

    Two distributions compare equal (``==``/``hash``) iff they have the same
    canonical representation — this is *value identity*, not fuzzy equality.
    Fuzzy comparison degrees live in :mod:`repro.fuzzy.compare`.
    """

    __slots__ = ()

    # ------------------------------------------------------------------
    # Core protocol
    # ------------------------------------------------------------------
    @abstractmethod
    def membership(self, x) -> float:
        """Possibility that the actual value equals ``x``."""

    @property
    @abstractmethod
    def height(self) -> float:
        """Maximal possibility degree (1.0 for normal distributions)."""

    @property
    @abstractmethod
    def is_crisp(self) -> bool:
        """True when the distribution pins down a single fully-possible value."""

    @property
    @abstractmethod
    def is_numeric(self) -> bool:
        """True when the underlying domain is numeric (supports intervals)."""

    @abstractmethod
    def key(self) -> Hashable:
        """Canonical hashable representation (value identity)."""

    # ------------------------------------------------------------------
    # Numeric-domain protocol (interval order of Definition 3.1)
    # ------------------------------------------------------------------
    def interval(self) -> Tuple[float, float]:
        """The support interval ``[b(v), e(v)]`` used by the interval order.

        For a crisp value ``v`` this is ``[v, v]``; for a trapezoid the 0-cut;
        for a discrete numeric distribution the span of its elements.
        """
        raise TypeError(f"{type(self).__name__} has no numeric interval")

    def as_piecewise(self) -> Optional[PiecewiseLinear]:
        """Piecewise-linear membership function, if continuous numeric."""
        return None

    def defuzzify(self) -> float:
        """Scalar summary (center of the 1-cut) used by fuzzy MIN/MAX."""
        raise TypeError(f"{type(self).__name__} cannot be defuzzified")

    # ------------------------------------------------------------------
    # Value identity
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.key() == other.key()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        if eq is NotImplemented:
            return eq
        return not eq

    def __hash__(self) -> int:
        return hash(self.key())
