"""Linguistic vocabularies: named fuzzy terms ("medium young", "high", ...).

Fuzzy SQL queries reference possibility distributions by name (Query 1
compares ``M.INCOME`` with ``"medium high"``).  A :class:`Vocabulary` maps
term names, scoped by domain, to distributions; the parser resolves quoted
terms against it.

:func:`paper_vocabulary` reconstructs the membership functions of the
paper's Figs. 1-2 for the dating-service database.  Fig. 1 pins
``medium young`` = Trap(20, 25, 30, 35) and ``about 35`` = Tri(30, 35, 40)
(their intersection height is the 0.5 the text quotes).  The remaining
shapes are not fully legible in the published figure; the ones below are
chosen so every degree the paper's Example 4.1 derives is met exactly:

* ``d(about 50 = middle age) = 0.4`` (the T-relation row "about 40K | 0.4"),
* ``d(24 = middle age) = 0`` and ``d(about 29 = middle age) = 0``
  (tuples 201/204 are excluded from T),
* ``d(about 35 = medium young) = 0.5``,
* ``d(middle age = medium young) = 0.75`` (Betty's answer degree),
* ``d(medium high = high) = 0.7`` (Ann's answer degree),
* ``d(about 60K = high) = 0.3`` and ``d(about 60K = about 40K) = 0``
  (Ann's lower candidate degree 0.3).
"""

from __future__ import annotations

from typing import Dict, Optional

from .crisp import CrispLabel, CrispNumber
from .distribution import Distribution
from .trapezoid import TrapezoidalNumber


class UnknownTermError(KeyError):
    """Raised when a quoted linguistic term is not in the vocabulary."""


class Vocabulary:
    """A registry of named fuzzy terms, optionally scoped by domain.

    Terms may be registered globally or for a specific domain name (e.g.
    ``AGE`` vs ``INCOME``); domain-scoped entries shadow global ones.  Term
    lookup is case-insensitive and whitespace-normalized.
    """

    def __init__(self):
        self._global: Dict[str, Distribution] = {}
        self._scoped: Dict[str, Dict[str, Distribution]] = {}

    @staticmethod
    def _norm(name: str) -> str:
        return " ".join(name.lower().split())

    def define(self, name: str, value: Distribution, domain: Optional[str] = None) -> None:
        """Register ``name`` -> ``value``, optionally only within ``domain``."""
        key = self._norm(name)
        if domain is None:
            self._global[key] = value
        else:
            self._scoped.setdefault(self._norm(domain), {})[key] = value

    def resolve(self, name: str, domain: Optional[str] = None) -> Distribution:
        """Look up a term; domain-scoped entries take precedence."""
        key = self._norm(name)
        if domain is not None:
            scoped = self._scoped.get(self._norm(domain), {})
            if key in scoped:
                return scoped[key]
        if key in self._global:
            return self._global[key]
        raise UnknownTermError(name)

    def __contains__(self, name: str) -> bool:
        key = self._norm(name)
        if key in self._global:
            return True
        return any(key in scoped for scoped in self._scoped.values())

    def terms(self) -> Dict[str, Distribution]:
        """A flat snapshot of all global terms (for introspection/plots)."""
        return dict(self._global)

    def export(self):
        """Every definition as ``(name, domain_or_None, distribution)``.

        Domain-scoped entries come after global ones so replaying them
        through :meth:`define` reproduces the same shadowing.
        """
        out = [(name, None, dist) for name, dist in sorted(self._global.items())]
        for domain in sorted(self._scoped):
            for name, dist in sorted(self._scoped[domain].items()):
                out.append((name, domain, dist))
        return out


def paper_vocabulary() -> Vocabulary:
    """The dating-service vocabulary of the paper's Figs. 1-2.

    See the module docstring for which degrees these shapes are calibrated
    to reproduce.
    """
    vocab = Vocabulary()
    # --- AGE terms (years) -------------------------------------------
    vocab.define("medium young", TrapezoidalNumber(20, 25, 30, 35), domain="AGE")
    vocab.define("about 35", TrapezoidalNumber.triangular(30, 35, 40), domain="AGE")
    # Up-ramp 31 -> 31+1/3 crosses medium-young's down-ramp at height 0.75;
    # down-ramp 44 -> 50 crosses "about 50" at height 0.4.
    vocab.define("middle age", TrapezoidalNumber(31.0, 31.0 + 1.0 / 3.0, 44, 50), domain="AGE")
    vocab.define("about 50", TrapezoidalNumber.triangular(46, 50, 54), domain="AGE")
    vocab.define("about 29", TrapezoidalNumber.triangular(27, 29, 31), domain="AGE")
    vocab.define("young", TrapezoidalNumber(15, 18, 25, 30), domain="AGE")
    vocab.define("old", TrapezoidalNumber(55, 65, 90, 100), domain="AGE")
    # --- INCOME terms (thousands of dollars) --------------------------
    vocab.define("low", TrapezoidalNumber(0, 0, 15, 25), domain="INCOME")
    vocab.define("medium low", TrapezoidalNumber(20, 26, 34, 40), domain="INCOME")
    vocab.define("about 25k", TrapezoidalNumber.triangular(20, 25, 30), domain="INCOME")
    vocab.define("about 40k", TrapezoidalNumber.triangular(34, 40, 46), domain="INCOME")
    # medium-high's down-ramp 62 -> 86 crosses high's up-ramp 58 -> 74 at 0.7.
    vocab.define("medium high", TrapezoidalNumber(50, 56, 62, 86), domain="INCOME")
    vocab.define("high", TrapezoidalNumber(58, 74, 150, 150), domain="INCOME")
    vocab.define("about 60k", TrapezoidalNumber.triangular(56, 60, 64), domain="INCOME")
    return vocab


def lift(value, vocabulary: Optional[Vocabulary] = None, domain: Optional[str] = None) -> Distribution:
    """Coerce a Python value into a :class:`Distribution`.

    Numbers become :class:`CrispNumber`; strings are resolved against the
    vocabulary when provided (falling back to :class:`CrispLabel`);
    distributions pass through unchanged.
    """
    if isinstance(value, Distribution):
        return value
    if isinstance(value, bool):
        raise TypeError("boolean attribute values are not supported")
    if isinstance(value, (int, float)):
        return CrispNumber(value)
    if isinstance(value, str):
        if vocabulary is not None and value in vocabulary:
            return vocabulary.resolve(value, domain)
        return CrispLabel(value)
    raise TypeError(f"cannot interpret {value!r} as an attribute value")
