"""Fuzzy arithmetic on 0-cuts and 1-cuts (Section 6 of the paper).

"Fuzzy arithmetic operations take two values and determine the two intervals
of the resulting value" — i.e. the result of an operation is the trapezoid
whose 0-cut (support) and 1-cut (core) are obtained by interval arithmetic on
the operands' cuts.  ``AVG`` is fuzzy addition followed by division by a
crisp count; ``SUM`` is fuzzy addition.

Operands may be any numeric :class:`~repro.fuzzy.distribution.Distribution`;
non-trapezoidal operands are first enclosed in their *trapezoidal envelope*
(0-cut = support span, 1-cut = span of maximal-possibility values), which is
exact for crisp values and conservative for discrete ones.
"""

from __future__ import annotations

from typing import Tuple

from .crisp import CrispNumber
from .discrete import DiscreteDistribution
from .distribution import Distribution
from .trapezoid import TrapezoidalNumber

Interval = Tuple[float, float]


def to_trapezoid(value: Distribution) -> TrapezoidalNumber:
    """The trapezoidal envelope of a numeric distribution."""
    if isinstance(value, TrapezoidalNumber):
        return value
    if isinstance(value, CrispNumber):
        v = value.value
        return TrapezoidalNumber(v, v, v, v)
    if isinstance(value, DiscreteDistribution):
        if not value.is_numeric:
            raise TypeError("cannot do arithmetic on symbolic distributions")
        lo, hi = value.interval()
        top = max(value.items.values())
        peaks = [v for v, p in value.items.items() if p == top]
        return TrapezoidalNumber(lo, min(peaks), max(peaks), hi)
    raise TypeError(f"cannot do arithmetic on {type(value).__name__}")


def _combine(x: TrapezoidalNumber, y: TrapezoidalNumber, zero: Interval, one: Interval) -> TrapezoidalNumber:
    (z_lo, z_hi), (o_lo, o_hi) = zero, one
    # Guard against floating drift breaking the a<=b<=c<=d invariant.
    o_lo, o_hi = max(z_lo, o_lo), min(z_hi, o_hi)
    if o_lo > o_hi:
        o_lo = o_hi = (o_lo + o_hi) / 2.0
    return TrapezoidalNumber(z_lo, o_lo, o_hi, z_hi)


def add(left: Distribution, right: Distribution) -> TrapezoidalNumber:
    """Fuzzy addition: cuts add end-to-end."""
    x, y = to_trapezoid(left), to_trapezoid(right)
    return _combine(
        x, y,
        zero=(x.a + y.a, x.d + y.d),
        one=(x.b + y.b, x.c + y.c),
    )


def subtract(left: Distribution, right: Distribution) -> TrapezoidalNumber:
    """Fuzzy subtraction: ``[x1-y4, x4-y1]`` on the 0-cut, etc."""
    x, y = to_trapezoid(left), to_trapezoid(right)
    return _combine(
        x, y,
        zero=(x.a - y.d, x.d - y.a),
        one=(x.b - y.c, x.c - y.b),
    )


def multiply(left: Distribution, right: Distribution) -> TrapezoidalNumber:
    """Fuzzy multiplication by interval arithmetic on both cuts."""
    x, y = to_trapezoid(left), to_trapezoid(right)
    return _combine(
        x, y,
        zero=_interval_mul((x.a, x.d), (y.a, y.d)),
        one=_interval_mul((x.b, x.c), (y.b, y.c)),
    )


def divide(left: Distribution, right: Distribution) -> TrapezoidalNumber:
    """Fuzzy division; the divisor's support must exclude 0."""
    x, y = to_trapezoid(left), to_trapezoid(right)
    if y.a <= 0.0 <= y.d:
        raise ZeroDivisionError("fuzzy division by a distribution whose support contains 0")
    return _combine(
        x, y,
        zero=_interval_div((x.a, x.d), (y.a, y.d)),
        one=_interval_div((x.b, x.c), (y.b, y.c)),
    )


def scale(value: Distribution, factor: float) -> TrapezoidalNumber:
    """Multiply by a crisp scalar (used by AVG: divide the SUM by COUNT)."""
    x = to_trapezoid(value)
    ends0 = sorted((x.a * factor, x.d * factor))
    ends1 = sorted((x.b * factor, x.c * factor))
    return _combine(x, x, zero=(ends0[0], ends0[1]), one=(ends1[0], ends1[1]))


def _interval_mul(p: Interval, q: Interval) -> Interval:
    products = [p[0] * q[0], p[0] * q[1], p[1] * q[0], p[1] * q[1]]
    return (min(products), max(products))


def _interval_div(p: Interval, q: Interval) -> Interval:
    quotients = [p[0] / q[0], p[0] / q[1], p[1] / q[0], p[1] / q[1]]
    return (min(quotients), max(quotients))
