"""The linear order on possibility distributions (Definition 3.1).

Every data value ``v`` (crisp or fuzzy) represents an interval
``[b(v), e(v)]`` on which its membership is positive; crisp values are the
degenerate interval ``[v, v]``.  Values are ordered by

    v1 < v2  iff  b(v1) < b(v2), or b(v1) = b(v2) and e(v1) < e(v2)

which is the lexicographic order on ``(b, e)`` pairs.  Tuples are ordered by
the interval of their value on the sort attribute.  This order is what the
extended merge-join sorts both relations on, and what makes its range scan
(`Rng(r)`) terminate correctly: once S-tuples start *beginning* after
``e(r.X)``, none of them can intersect ``r.X`` any more.
"""

from __future__ import annotations

from typing import Tuple

from .distribution import Distribution


def begin(value: Distribution):
    """``b(v)`` — where the support of ``v`` begins."""
    return value.interval()[0]


def end(value: Distribution):
    """``e(v)`` — where the support of ``v`` ends."""
    return value.interval()[1]


def sort_key(value: Distribution) -> Tuple:
    """The ``(b(v), e(v))`` pair; sorting by it realizes Definition 3.1.

    The paper notes sorting needs at most two comparisons per pair: left
    endpoints first, then right endpoints on ties — exactly the behaviour
    of tuple comparison on this key.
    """
    return value.interval()


def precedes(v1: Distribution, v2: Distribution) -> bool:
    """``v1 < v2`` in the interval order (strict)."""
    return sort_key(v1) < sort_key(v2)


def precedes_eq(v1: Distribution, v2: Distribution) -> bool:
    """``v1 <= v2`` in the interval order."""
    return sort_key(v1) <= sort_key(v2)


def overlaps(v1: Distribution, v2: Distribution) -> bool:
    """True when the supports intersect; a prerequisite for ``d(v1 = v2) > 0``."""
    b1, e1 = v1.interval()
    b2, e2 = v2.interval()
    return not (e1 < b2 or e2 < b1)


def strictly_before(v1: Distribution, v2: Distribution) -> bool:
    """``e(v1) < b(v2)``: the supports are disjoint with ``v1`` on the left.

    During the merge scan, an S-tuple ``s`` with ``strictly_before(s.X, r.X)``
    can be skipped for the current *and all later* R-tuples, and the scan for
    ``r`` may stop at the first ``s`` with ``strictly_before(r.X, s.X)``.
    """
    return end(v1) < begin(v2)
