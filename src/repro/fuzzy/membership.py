"""Exact algebra on piecewise-linear membership functions.

The paper computes possibility degrees such as ``d(X = Y)`` as the height of
the highest intersection point of two membership functions:

    d(X = Y) = sup_x min(mu_U(x), mu_V(x))

For trapezoidal (and generally piecewise-linear) membership functions this
supremum can be computed *exactly* by enumerating segment breakpoints and
pairwise segment intersections, with no grid sampling.  This module provides
that machinery; it is the numeric kernel under :mod:`repro.fuzzy.compare`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple

Point = Tuple[float, float]

#: Tolerance used when comparing abscissae of breakpoints.
_EPS = 1e-12


class PiecewiseLinear:
    """A continuous piecewise-linear function with compact support.

    The function is described by a sorted sequence of ``(x, y)`` breakpoints
    and is linearly interpolated between consecutive breakpoints.  Outside
    the breakpoint range the function is 0 (membership functions vanish
    outside their support).

    Instances are immutable; all combinators return new objects.
    """

    __slots__ = ("xs", "ys")

    def __init__(self, points: Iterable[Point]):
        pts = _normalize(points)
        if not pts:
            raise ValueError("a piecewise-linear function needs at least one point")
        self.xs: Tuple[float, ...] = tuple(p[0] for p in pts)
        self.ys: Tuple[float, ...] = tuple(p[1] for p in pts)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, x: float) -> float:
        xs, ys = self.xs, self.ys
        if x < xs[0] or x > xs[-1]:
            return 0.0
        idx = bisect_right(xs, x)
        if idx >= len(xs):
            return ys[-1]
        if idx == 0:
            return ys[0]
        x0, x1 = xs[idx - 1], xs[idx]
        y0, y1 = ys[idx - 1], ys[idx]
        if x1 == x0:
            return max(y0, y1)
        t = (x - x0) / (x1 - x0)
        return y0 + t * (y1 - y0)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def height(self) -> float:
        """The supremum of the function (its maximal membership degree)."""
        return max(self.ys)

    @property
    def points(self) -> List[Point]:
        """The breakpoints as ``(x, membership)`` pairs."""
        return list(zip(self.xs, self.ys))

    def argmax(self) -> float:
        """Some abscissa attaining :attr:`height`."""
        best = max(self.ys)
        for x, y in zip(self.xs, self.ys):
            if y == best:
                return x
        return self.xs[0]

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def sup_min(self, other: "PiecewiseLinear") -> float:
        """Exact ``sup_x min(f(x), g(x))`` over the whole real line.

        The supremum of the pointwise minimum of two piecewise-linear
        functions is attained either at a breakpoint of one of them or at
        an intersection of two segments; we enumerate both candidate sets.
        """
        lo = max(self.xs[0], other.xs[0])
        hi = min(self.xs[-1], other.xs[-1])
        if lo > hi:
            return 0.0
        candidates = set()
        for x in self.xs:
            if lo <= x <= hi:
                candidates.add(x)
        for x in other.xs:
            if lo <= x <= hi:
                candidates.add(x)
        candidates.add(lo)
        candidates.add(hi)
        for x in _segment_intersections(self, other, lo, hi):
            candidates.add(x)
        best = 0.0
        for x in candidates:
            v = min(self(x), other(x))
            if v > best:
                best = v
        return best

    def running_max_right(self) -> "PiecewiseLinear":
        """The nonincreasing envelope ``g(x) = sup_{y >= x} f(y)``.

        Used for possibility of inequalities:
        ``Poss(U <= V) = sup_x min(mu_U(x), sup_{y>=x} mu_V(y))``.
        The envelope is again piecewise linear; to the left of the support
        it is constant at :attr:`height` (represented by extending the
        first breakpoint far left).
        """
        pts: List[Point] = []
        running = 0.0
        for x, y in zip(reversed(self.xs), reversed(self.ys)):
            running = max(running, y)
            pts.append((x, running))
        pts.reverse()
        # Envelope is flat at `height` for all x <= first support point.
        first_x = pts[0][0]
        span = max(1.0, self.xs[-1] - self.xs[0])
        pts.insert(0, (first_x - 1e9 * span, pts[0][1]))
        return PiecewiseLinear(_upper_staircase(pts))

    def running_max_left(self) -> "PiecewiseLinear":
        """The nondecreasing envelope ``g(x) = sup_{y <= x} f(y)``."""
        pts: List[Point] = []
        running = 0.0
        for x, y in zip(self.xs, self.ys):
            running = max(running, y)
            pts.append((x, running))
        last_x = pts[-1][0]
        span = max(1.0, self.xs[-1] - self.xs[0])
        pts.append((last_x + 1e9 * span, pts[-1][1]))
        return PiecewiseLinear(_upper_staircase(pts))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"({x:g}, {y:g})" for x, y in zip(self.xs, self.ys))
        return f"PiecewiseLinear([{inner}])"


def _normalize(points: Iterable[Point]) -> List[Point]:
    """Sort points and drop exact duplicates, keeping the larger ordinate.

    Only *exactly* coincident abscissae merge — an epsilon here would
    destroy legitimately thin ramps (e.g. denormal-width trapezoids).
    """
    pts = sorted((float(x), float(y)) for x, y in points)
    out: List[Point] = []
    for x, y in pts:
        if out and out[-1][0] == x:
            if y > out[-1][1]:
                out[-1] = (out[-1][0], y)
        else:
            out.append((x, y))
    return out


def _upper_staircase(points: Sequence[Point]) -> List[Point]:
    """Collapse duplicate abscissae produced by envelope construction."""
    out: List[Point] = []
    for x, y in points:
        if out and out[-1][0] == x:
            out[-1] = (out[-1][0], max(out[-1][1], y))
        else:
            out.append((x, y))
    return out


def _segment_intersections(
    f: PiecewiseLinear, g: PiecewiseLinear, lo: float, hi: float
) -> List[float]:
    """Abscissae where a segment of ``f`` crosses a segment of ``g``.

    Only crossings within ``[lo, hi]`` are reported.  A quadratic pairwise
    sweep is fine: membership functions here have a handful of segments.
    """
    crossings: List[float] = []
    fseg = list(zip(zip(f.xs, f.ys), zip(f.xs[1:], f.ys[1:])))
    gseg = list(zip(zip(g.xs, g.ys), zip(g.xs[1:], g.ys[1:])))
    for (fx0, fy0), (fx1, fy1) in fseg:
        for (gx0, gy0), (gx1, gy1) in gseg:
            left = max(fx0, gx0, lo)
            right = min(fx1, gx1, hi)
            if left > right:
                continue
            # Solve f(x) = g(x) on the overlap, both linear.
            fdx = fx1 - fx0
            gdx = gx1 - gx0
            fslope = (fy1 - fy0) / fdx if fdx else 0.0
            gslope = (gy1 - gy0) / gdx if gdx else 0.0
            # f(x) = fy0 + fslope*(x - fx0); g likewise.
            a = fslope - gslope
            b = (fy0 - fslope * fx0) - (gy0 - gslope * gx0)
            if abs(a) <= _EPS:
                continue  # parallel: extrema are at breakpoints, already candidates
            x = -b / a
            if left - _EPS <= x <= right + _EPS:
                crossings.append(min(max(x, left), right))
    return crossings


def sup_min(f: PiecewiseLinear, g: PiecewiseLinear) -> float:
    """Module-level convenience wrapper for :meth:`PiecewiseLinear.sup_min`."""
    return f.sup_min(g)
