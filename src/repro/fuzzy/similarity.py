"""Nonbinary comparison relations ("the comparison theta may be nonbinary").

The paper's satisfaction degree allows ``theta`` to be defined by a
similarity relation ``mu_theta(x, y)``:

    d(X theta Y) = sup_{x,y} min(mu_U(x), mu_V(y), mu_theta(x, y))

Two families are provided:

* :class:`ToleranceSimilarity` over numeric domains —
  ``mu_theta(x, y) = tol(x - y)`` for a trapezoidal tolerance around 0;
  the supremum is computed exactly through fuzzy subtraction
  (``sup_z min(mu_{U-V}(z), tol(z))`` by the extension principle);
* :class:`TableSimilarity` over symbolic domains — an explicit symmetric
  table of pairwise similarity degrees (reflexive at 1).
"""

from __future__ import annotations

from typing import Dict, Tuple

from . import arithmetic
from .compare import Op, possibility
from .crisp import CrispLabel
from .discrete import DiscreteDistribution
from .distribution import Distribution
from .trapezoid import TrapezoidalNumber


class ToleranceSimilarity:
    """"Approximately equal" up to a fuzzy tolerance around zero.

    ``ToleranceSimilarity(full=2, zero=5)`` considers differences of at most
    2 fully similar and differences beyond 5 entirely dissimilar, with a
    linear ramp in between.
    """

    def __init__(self, full: float, zero: float):
        full, zero = float(full), float(zero)
        if not 0.0 <= full <= zero:
            raise ValueError(f"need 0 <= full <= zero, got full={full}, zero={zero}")
        if zero == 0.0:
            # Degenerate: plain equality.
            self.tolerance = TrapezoidalNumber(0.0, 0.0, 0.0, 0.0)
        else:
            self.tolerance = TrapezoidalNumber(-zero, -full, full, zero)

    def degree(self, left: Distribution, right: Distribution) -> float:
        """``d(left ~= right)`` — possibility the difference is tolerable."""
        if not (left.is_numeric and right.is_numeric):
            raise TypeError("tolerance similarity requires numeric distributions")
        if isinstance(left, DiscreteDistribution) or isinstance(right, DiscreteDistribution):
            return self._discrete_degree(left, right)
        diff = arithmetic.subtract(left, right)
        return possibility(diff, Op.EQ, self.tolerance)

    def _discrete_degree(self, left: Distribution, right: Distribution) -> float:
        """Enumerate discrete elements; exact for mixed discrete/continuous."""
        best = 0.0
        for x, p in _numeric_items(left):
            for y, q in _numeric_items(right):
                if x is None and y is None:
                    continue
                if x is not None and y is not None:
                    sim = self.tolerance.membership(x - y)
                    best = max(best, min(p, q, sim))
                elif x is not None:
                    shifted = _shift(self.tolerance, x)
                    best = max(best, min(p, possibility(right, Op.EQ, shifted)))
                else:
                    shifted = _shift(self.tolerance, y)
                    best = max(best, min(q, possibility(left, Op.EQ, shifted)))
        return best


class TableSimilarity:
    """An explicit similarity relation on a symbolic domain.

    The table is symmetrized and made reflexive automatically.  Missing
    pairs are entirely dissimilar (degree 0).
    """

    def __init__(self, pairs: Dict[Tuple[str, str], float]):
        table: Dict[Tuple[str, str], float] = {}
        for (x, y), degree in pairs.items():
            degree = float(degree)
            if not 0.0 <= degree <= 1.0:
                raise ValueError(f"similarity degree must be in [0, 1], got {degree}")
            table[(x, y)] = degree
            table[(y, x)] = degree
        self.table = table

    def mu(self, x: str, y: str) -> float:
        """Similarity of two labels: 1.0 on equality, else the table entry (0 default).
        """
        if x == y:
            return 1.0
        return self.table.get((x, y), 0.0)

    def degree(self, left: Distribution, right: Distribution) -> float:
        """``d(left ~= right)`` over the symbolic domain."""
        best = 0.0
        for x, p in _label_items(left):
            for y, q in _label_items(right):
                best = max(best, min(p, q, self.mu(x, y)))
        return best


def _shift(trap: TrapezoidalNumber, offset: float) -> TrapezoidalNumber:
    return TrapezoidalNumber(
        trap.a + offset, trap.b + offset, trap.c + offset, trap.d + offset
    )


def _numeric_items(dist: Distribution):
    """Yield ``(point, degree)`` for discrete members, ``(None, 1)`` otherwise."""
    if isinstance(dist, DiscreteDistribution):
        return list(dist.items.items())
    return [(None, 1.0)]


def _label_items(dist: Distribution):
    if isinstance(dist, CrispLabel):
        return [(dist.value, 1.0)]
    if isinstance(dist, DiscreteDistribution) and not dist.is_numeric:
        return list(dist.items.items())
    raise TypeError(f"{type(dist).__name__} is not a symbolic distribution")
