"""Trapezoidal possibility distributions.

The paper restricts continuous possibility distributions to trapezoidal
shapes "because they are typical in practice"; triangular and rectangular
shapes are special cases.  A trapezoid is described by four abscissae
``a <= b <= c <= d``: membership ramps 0→1 on ``[a, b]``, is 1 on the core
``[b, c]``, and ramps 1→0 on ``[c, d]``.
"""

from __future__ import annotations

from typing import Hashable, Tuple

from .distribution import Distribution
from .membership import PiecewiseLinear


class TrapezoidalNumber(Distribution):
    """A normal trapezoidal possibility distribution over a numeric domain.

    ``a`` and ``d`` bound the support (the 0-cut ``[a, d]``); ``b`` and ``c``
    bound the core (the 1-cut ``[b, c]``).  ``triangular(a, m, d)`` and
    rectangles (``b == a``, ``c == d``) are degenerate constructions.
    """

    __slots__ = ("a", "b", "c", "d")

    def __init__(self, a: float, b: float, c: float, d: float):
        a, b, c, d = float(a), float(b), float(c), float(d)
        if not (a <= b <= c <= d):
            raise ValueError(f"trapezoid abscissae must satisfy a<=b<=c<=d, got {(a, b, c, d)}")
        self.a, self.b, self.c, self.d = a, b, c, d

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def triangular(cls, a: float, m: float, d: float) -> "TrapezoidalNumber":
        """A triangular distribution peaking at ``m``."""
        return cls(a, m, m, d)

    @classmethod
    def rectangular(cls, a: float, d: float) -> "TrapezoidalNumber":
        """An interval (rectangular) distribution: fully possible on [a, d]."""
        return cls(a, a, d, d)

    @classmethod
    def about(cls, center: float, spread: float) -> "TrapezoidalNumber":
        """The "about x" triangular shape used throughout the paper."""
        return cls.triangular(center - spread, center, center + spread)

    # ------------------------------------------------------------------
    # Distribution protocol
    # ------------------------------------------------------------------
    def membership(self, x) -> float:
        """Membership of ``x`` under the trapezoid (0 outside ``[a, d]``)."""
        try:
            x = float(x)
        except (TypeError, ValueError):
            return 0.0
        if x < self.a or x > self.d:
            return 0.0
        if self.b <= x <= self.c:
            return 1.0
        if x < self.b:
            # Rising ramp; a < b here because x in [a, b) is nonempty.
            return (x - self.a) / (self.b - self.a)
        return (self.d - x) / (self.d - self.c)

    @property
    def height(self) -> float:
        """Maximum membership (1.0 for a well-formed trapezoid)."""
        return 1.0

    @property
    def is_crisp(self) -> bool:
        """Whether the trapezoid degenerates to a single point."""
        return self.a == self.d

    @property
    def is_numeric(self) -> bool:
        """True: trapezoids live on a numeric domain."""
        return True

    def key(self) -> Hashable:
        """Hashable key used for duplicate detection and grouping."""
        return ("trap", self.a, self.b, self.c, self.d)

    def interval(self) -> Tuple[float, float]:
        """The support interval ``(a, d)``."""
        return (self.a, self.d)

    def as_piecewise(self) -> PiecewiseLinear:
        """The trapezoid as a four-breakpoint :class:`PiecewiseLinear`."""
        a, b, c, d = self.a, self.b, self.c, self.d
        pts = [(a, 0.0 if a < b else 1.0), (b, 1.0), (c, 1.0), (d, 0.0 if d > c else 1.0)]
        return PiecewiseLinear(pts)

    def defuzzify(self) -> float:
        """Center of the 1-cut, the paper's fuzzy MIN/MAX sort key."""
        return (self.b + self.c) / 2.0

    # ------------------------------------------------------------------
    # Alpha-cuts (Section 6 uses the 0-cut and 1-cut)
    # ------------------------------------------------------------------
    def alpha_cut(self, alpha: float) -> Tuple[float, float]:
        """The closed interval of values with membership >= ``alpha``.

        ``alpha_cut(0.0)`` returns the support closure ``[a, d]`` (the
        paper's "0-cut") and ``alpha_cut(1.0)`` the core ``[b, c]``.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        lo = self.a + alpha * (self.b - self.a)
        hi = self.d - alpha * (self.d - self.c)
        # Mathematically lo <= b <= c <= hi; floating-point cancellation in
        # the hi form can violate it by ~1 ulp for near-degenerate shapes.
        if hi < lo:
            hi = lo
        return (lo, hi)

    @property
    def zero_cut(self) -> Tuple[float, float]:
        """The support ``(a, d)`` — the closure of the 0-cut."""
        return (self.a, self.d)

    @property
    def one_cut(self) -> Tuple[float, float]:
        """The core ``(b, c)`` where membership is 1."""
        return (self.b, self.c)

    def __repr__(self) -> str:
        return f"TrapezoidalNumber({self.a:g}, {self.b:g}, {self.c:g}, {self.d:g})"
