"""A storage-backed query session: every nesting type on the disk engine.

:class:`StorageSession` is the integration layer that makes the paper's
architecture concrete end to end: relations are materialized as paged heap
files, and ``query()`` dispatches each Fuzzy SQL query to the appropriate
disk-level strategy —

* flat / type N / J / SOME / chain  → unnest, then the
  :class:`~repro.engine.executor.FlatCompiler` plan (merge joins with
  selection pushdown, optional Section 8 join ordering);
* type XN / JX (NOT IN)            → the Section 5 grouped anti-join fold;
* type ALL / JALL                   → the Section 7 doubly negated fold;
* type JA with one equality correlation → the Section 6 pipelined
  T1/T2/JA' merge pass;
* everything else (GENERAL, type A, exotic JA shapes) → relations are read
  back through the buffer (charged) and evaluated by the naive engine.

All I/O and CPU events of the last query are available in
:attr:`last_stats`; :attr:`last_strategy` names the path taken.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Tuple, Union

from .data.catalog import Catalog
from .errors import FuzzyQueryError, QueryCancelledError, QueryTimeoutError
from .resilience import CancelToken, QueryGuard
from .data.io import parse_value
from .data.relation import FuzzyRelation
from .data.schema import Attribute, Schema
from .data.types import AttributeType
from .data.tuples import FuzzyTuple
from .engine.adaptive import AdaptiveController
from .engine.aggregates import DegreePolicy
from .engine.executor import CompileError, DmlColumns, FlatCompiler, compile_comparison
from .engine.grouped import GroupedAntiJoin, GroupMode
from .engine.histogram import HistogramStore
from .engine.operators import ExecutionContext, Scan
from .engine.optimizer import PlanMemo
from .engine.pipelined import JAPipeline
from .engine.semantics import NaiveEvaluator
from .engine.statistics import StatisticsVersions
from .fuzzy.compare import Op
from .observe.explain import annotate_estimates, join_q_errors, render_plan, render_report
from .observe.health import HealthReport, HealthThresholds, evaluate_health
from .observe.metrics import QueryMetrics
from .observe.querylog import QueryLog
from .observe.recorder import FlightRecorder
from .observe.registry import MetricsRegistry
from .observe.timeseries import TimeSeries, lifetime_window
from .observe.trace import SpanTracer, maybe_span
from .fuzzy.linguistic import Vocabulary
from .service.plancache import PlanCache, normalize_sql
from .service.prepared import PlanArtifact, PreparedQuery
from .sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    InPredicate,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
)
from .sql.classify import NestingType, classify
from .sql.params import ParameterError, bind_parameters, count_parameters, referenced_tables
from .sql.parser import parse
from .sql.statements import (
    CreateTable,
    DefineTerm,
    DeleteFrom,
    DropTable,
    InsertInto,
    Statement,
    Update,
    parse_statement,
)
from .storage.disk import SimulatedDisk
from .storage.heap import HeapFile
from .storage.stats import OperationStats
from .unnest.common import UnnestError, qualify, split_nesting_predicate
from .unnest.rewriter import unnest

FLAT_TYPES = {
    NestingType.FLAT,
    NestingType.TYPE_N,
    NestingType.TYPE_J,
    NestingType.TYPE_SOME,
    NestingType.TYPE_JSOME,
    NestingType.CHAIN,
}




class StorageSession:
    """Heap-file-backed query execution with automatic unnesting."""

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        page_size: int = 8 * 1024,
        buffer_pages: int = 64,
        aggregate_policy: DegreePolicy = DegreePolicy.ONE,
        fixed_tuple_size: Optional[int] = None,
        optimize_joins: bool = False,
        disk: Optional[SimulatedDisk] = None,
        workers: int = 1,
        shards: int = 1,
        shard_on: Optional[str] = None,
        shard_disks: Optional[List[SimulatedDisk]] = None,
        adaptive: bool = False,
        adapt_threshold: float = 4.0,
        histogram_buckets: int = 8,
        drift_threshold: float = 0.25,
    ):
        #: Pass ``disk`` to run the session on a caller-provided device —
        #: e.g. a :class:`~repro.faults.FaultyDisk` for chaos testing.
        self.disk = disk if disk is not None else SimulatedDisk(page_size=page_size)
        self.buffer_pages = buffer_pages
        #: Default intra-query worker budget; ``query(..., workers=N)``
        #: overrides it per call.  With 1 every plan runs serially.
        self.workers = max(1, workers)
        #: Default shard budget; ``query(..., shards=N)`` overrides it per
        #: call.  With ``shards >= 2`` the session additionally places
        #: registered relations across that many independent disk nodes
        #: (:class:`~repro.shard.ShardedStorage`) and merge-joins over
        #: placed base relations scatter-gather across them.  Pass
        #: ``shard_disks`` to run specific nodes on caller-provided
        #: devices (e.g. one :class:`~repro.faults.FaultyDisk` for chaos
        #: testing) and ``shard_on`` as the default placement attribute
        #: for :meth:`register`.
        self.shards = max(1, shards)
        self.shard_on = shard_on
        from .shard import ShardedStorage

        self.sharded: Optional[ShardedStorage] = (
            ShardedStorage(
                self.shards,
                page_size=page_size,
                fixed_tuple_size=fixed_tuple_size,
                disks=shard_disks,
            )
            if self.shards > 1
            else None
        )
        self.aggregate_policy = aggregate_policy
        self.fixed_tuple_size = fixed_tuple_size
        self.optimize_joins = optimize_joins
        self.tables: Dict[str, HeapFile] = {}
        #: Support-interval indexes by ``(TABLE, attribute)``; created via
        #: :meth:`create_index`, rebuilt automatically on re-registration,
        #: and offered to every compiled plan as candidate access paths.
        self.indexes: Dict[Tuple[str, str], "SupportIntervalIndex"] = {}
        #: In-memory relations retained for re-placement (:meth:`reshard`);
        #: only populated on sharded sessions.
        self._relations: Dict[str, FuzzyRelation] = {}
        #: Schema-only catalog used for classification and rewriting.
        self.schemas = Catalog(vocabulary)
        self.last_stats = OperationStats()
        self.last_strategy: str = ""
        #: The compiled operator tree of the last flat query (None for the
        #: storage-level strategies, which have no tree).
        self.last_plan = None
        #: The :class:`~repro.observe.metrics.QueryMetrics` collector of
        #: the last instrumented run, if one was supplied.
        self.last_metrics: Optional[QueryMetrics] = None
        #: Workload-level sinks.  Assign a
        #: :class:`~repro.observe.registry.MetricsRegistry`, a
        #: :class:`~repro.observe.querylog.QueryLog`, and/or a
        #: :class:`~repro.observe.recorder.FlightRecorder` and every query
        #: is folded in / logged / recorded automatically (one collector
        #: per query, read exactly once — see the no-double-counting
        #: regression test).  All three key statement identity on the
        #: shared canonicalizer in :mod:`repro.observe.fingerprint`.
        self.registry: Optional[MetricsRegistry] = None
        self.query_log: Optional[QueryLog] = None
        self.recorder: Optional[FlightRecorder] = None
        #: Optional :class:`~repro.observe.timeseries.TimeSeries` over the
        #: registry; when attached (and snapshotted), :meth:`health`
        #: evaluates the merged recent windows instead of lifetime totals.
        self.timeseries: Optional[TimeSeries] = None
        #: Per-relation statistics versions; bumped on (re)registration and
        #: on sampled fan-out drift.  Plan-cache entries validate against
        #: these tokens.
        self.stats_versions = StatisticsVersions()
        #: Adaptive feedback-driven optimization.  Histograms over the
        #: join attributes' support intervals are maintained
        #: unconditionally (register builds, the WAL apply path delta-
        #: refreshes) — they are pure CPU over in-memory rows and touch no
        #: gated counter.  Everything that changes *behaviour* is gated on
        #: ``adaptive=True``: histogram-fed edge fan-outs and bushy join
        #: trees in the Section 8 DP, drift-based (rather than
        #: version-bump) plan-cache invalidation on ingest, and mid-query
        #: re-planning past ``adapt_threshold`` q-error.
        self.adaptive = adaptive
        self.histograms = HistogramStore(
            buckets=histogram_buckets, drift_threshold=drift_threshold
        )
        #: The session's re-planner (None when ``adaptive`` is off); its
        #: ``replans`` tally is what benchmarks gate on.
        self.adapt_controller = (
            AdaptiveController(threshold=adapt_threshold) if adaptive else None
        )
        #: Cross-query memo of Section 8 DP subplans (adaptive only).
        self._plan_memo = PlanMemo() if adaptive else None
        #: LRU cache of prepared plans for textual ``query()`` calls.
        #: Assign ``None`` to disable caching entirely.
        self.plan_cache: Optional[PlanCache] = PlanCache()
        #: The lazily created :class:`~repro.wal.WriteManager` behind
        #: :attr:`writes`; ``None`` until the first DML / recovery call,
        #: so read-only sessions never create a WAL file.
        self._writes = None

    @property
    def vocabulary(self) -> Vocabulary:
        """The linguistic vocabulary shared by the session's catalog."""
        return self.schemas.vocabulary

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        relation: FuzzyRelation,
        shard_on: Optional[str] = None,
    ) -> HeapFile:
        """Materialize a relation as a heap file (load I/O is not charged).

        On a sharded session the relation is *additionally* placed across
        the shard nodes on ``shard_on`` (default: the session-level
        :attr:`shard_on`, when that attribute exists in the schema) — the
        main-disk heap stays authoritative for every strategy the
        scatter-gather executor does not cover.
        """
        name = name.upper()
        scratch = OperationStats()
        with self.disk.use_stats(scratch):
            # Re-registration replaces the relation; without the delete the
            # new tuples would be appended after the old file's pages.
            if self._writes is not None:
                self._writes.snapshots.forget(name)
            self.disk.delete(name)
            heap = HeapFile(name, relation.schema, self.disk, self.fixed_tuple_size)
            heap.load(relation.tuples())
        self.tables[name] = heap
        self.schemas.register(name, FuzzyRelation(relation.schema))
        # Equi-depth histograms over the support intervals (b(v), e(v)):
        # the planner's per-edge fan-outs and the drift-invalidation rule
        # both read them.  Pure CPU over the in-memory rows — no counter,
        # no I/O — so non-adaptive workloads are untouched.
        built = self.histograms.build_table(name, relation.schema, relation.tuples())
        if built and self.registry is not None:
            self.registry.count_histogram(builds=built)
        if self.sharded is not None:
            attribute = shard_on if shard_on is not None else self.shard_on
            names = {a.name for a in relation.schema}
            if attribute is not None and attribute in names:
                self._relations[name] = relation
                self.sharded.place(name, relation, attribute)
        # Every (re)registration moves the relation's statistics version:
        # cached plans that read this table must be re-validated.
        if not self.stats_versions.observe_cardinality(name, heap.n_tuples):
            self.stats_versions.bump(name)
        # Indexes follow their relation: rebuild any that exist on it so
        # index plans never read postings for replaced tuples.
        for (table, attribute) in [k for k in self.indexes if k[0] == name]:
            self.create_index(table, attribute)
        return heap

    def create_index(self, name: str, attribute: str) -> "SupportIntervalIndex":
        """Build (or rebuild) a support-interval index on ``name.attribute``.

        The index persists the paper's interval order ``(b(v), e(v))`` for
        one attribute as columnar pages on the session disk; compiled
        plans then cost ``index_scan`` / ``index_merge_join`` access paths
        against the row paths.  Build I/O goes to a scratch ledger (like
        :meth:`register`), and the relation's statistics version is bumped
        so cached plans recompile against the new access path.  Raises
        :class:`~repro.columnar.UnsupportedIndexError` for attributes
        whose values have no single-interval support.
        """
        from .columnar import SupportIntervalIndex

        name = name.upper()
        heap = self.tables.get(name)
        if heap is None:
            raise FuzzyQueryError(f"no relation registered as {name!r}")
        scratch = OperationStats()
        with self.disk.use_stats(scratch):
            index = SupportIntervalIndex.build(name, attribute, heap, self.disk)
        self.indexes[(name, attribute)] = index
        self.stats_versions.bump(name)
        return index

    def reshard(
        self,
        name: str,
        boundaries: Optional[List] = None,
        shard_on: Optional[str] = None,
    ) -> None:
        """Re-place an already registered relation with a new shard layout.

        Changes the placement *only* — the relation's statistics version
        is deliberately left alone, so the layout token in the plan-cache
        validation pair ``(stats version, layout token)`` is what
        invalidates cached plans over this relation (the stale-layout
        regression test drives exactly this path).
        """
        name = name.upper()
        if self.sharded is None:
            raise FuzzyQueryError("reshard() needs a session with shards >= 2")
        relation = self._relations.get(name)
        if relation is None:
            raise FuzzyQueryError(f"relation {name} was never placed on the shards")
        layout = self.sharded.layout(name)
        attribute = shard_on if shard_on is not None else layout.attribute
        self.sharded.place(name, relation, attribute, boundaries=boundaries)

    # ------------------------------------------------------------------
    # Writes: WAL-backed DML, snapshots, recovery
    # ------------------------------------------------------------------
    @property
    def writes(self):
        """The session's :class:`~repro.wal.WriteManager` (created lazily).

        The WAL file itself appears on disk only at the first sync, so
        merely touching this property keeps read-only sessions unchanged.
        """
        if self._writes is None:
            from .wal import WriteManager

            self._writes = WriteManager(self)
        return self._writes

    def _replace_placement(self, name: str, relation: FuzzyRelation) -> None:
        """Refresh the sharded placement of ``name`` after a write.

        Tables never placed (unsharded sessions, or relations without the
        shard attribute) stay unplaced — the main-disk heap remains
        authoritative and scatter-gather joins simply degrade to it.
        """
        if self.sharded is None or name not in self._relations:
            return
        layout = self.sharded.layout(name)
        self._relations[name] = relation
        self.sharded.place(name, relation, layout.attribute)

    def attach(self, name: str, schema) -> HeapFile:
        """Adopt an existing heap file after a restart (no data load).

        Schemas are not self-describing on the simulated disk, so crash
        recovery starts with ``attach(name, schema)`` for every table and
        then :meth:`recover`.  Raises ``FileNotFoundError`` when the base
        file does not exist.
        """
        name = name.upper()
        schema = schema if isinstance(schema, Schema) else Schema(schema)
        scratch = OperationStats()
        with self.disk.use_stats(scratch):
            heap = HeapFile.attach(name, schema, self.disk, self.fixed_tuple_size)
            contents = [
                heap.serializer.decode(record)
                for page_index in range(heap.n_pages)
                for record in self.disk.read_page(heap.name, page_index).records()
            ]
        self.tables[name] = heap
        self.schemas.register(name, FuzzyRelation(schema))
        built = self.histograms.build_table(name, schema, contents)
        if built and self.registry is not None:
            self.registry.count_histogram(builds=built)
        if not self.stats_versions.observe_cardinality(name, heap.n_tuples):
            self.stats_versions.bump(name)
        return heap

    def snapshot(self):
        """Pin every table's current epoch for consistent reads.

        Returns a :class:`~repro.wal.Snapshot` (usable as a context
        manager); concurrent DML keeps publishing new epochs while the
        snapshot still reads the pinned ones.
        """
        from .wal import Snapshot

        return Snapshot(self.writes.snapshots, self.tables)

    def recover(self, tracer: Optional[SpanTracer] = None):
        """Run crash recovery over the attached tables.

        See :meth:`~repro.wal.WriteManager.recover`; returns its
        :class:`~repro.wal.RecoveryReport`.
        """
        return self.writes.recover(tracer=tracer)

    def checkpoint(self, tracer: Optional[SpanTracer] = None) -> str:
        """Fold every table version into its base file and reset the WAL."""
        return self.writes.checkpoint(tracer=tracer)

    def wal_status(self) -> str:
        """The ``\\wal`` shell view (an idle line before the first write)."""
        if self._writes is None:
            return "wal: idle (no writes this session)"
        return self._writes.status()

    def execute(self, statements, tracer: Optional[SpanTracer] = None):
        """Execute SQL statements: SELECT, DDL, and WAL-logged DML.

        ``statements`` may be one statement (text or parsed) or a list;
        in a list, consecutive INSERT / UPDATE / DELETE statements are
        logged as one group-committed WAL batch.  Returns the single
        result for a single statement (a
        :class:`~repro.data.relation.FuzzyRelation` for SELECT, a status
        string otherwise) or the list of results.

        Victim sets of UPDATE / DELETE are computed against the table
        version current when the statement enters the batch.
        """
        single = not isinstance(statements, (list, tuple))
        items = [statements] if single else list(statements)
        parsed = [parse_statement(s) if isinstance(s, str) else s for s in items]
        results: list = []
        pending: List[Tuple[str, str, list]] = []

        def flush() -> None:
            if pending:
                results.extend(self.writes.apply_ops(list(pending), tracer=tracer))
                pending.clear()

        for stmt in parsed:
            if isinstance(stmt, SelectQuery):
                flush()
                results.append(self.query(stmt, tracer=tracer))
            elif isinstance(stmt, CreateTable):
                flush()
                results.append(self._execute_create(stmt))
            elif isinstance(stmt, InsertInto):
                pending.append(self._insert_op(stmt))
            elif isinstance(stmt, (Update, DeleteFrom)):
                # Victim scans read the installed table version, so any
                # pending ops on the same table must apply first.
                if any(op[1] == stmt.table.upper() for op in pending):
                    flush()
                build = self._update_op if isinstance(stmt, Update) else self._delete_op
                pending.append(build(stmt))
            elif isinstance(stmt, DefineTerm):
                flush()
                results.append(self._execute_define(stmt))
            elif isinstance(stmt, DropTable):
                flush()
                results.append(self._execute_drop(stmt))
            else:
                raise FuzzyQueryError(f"unsupported statement {stmt!r}")
        flush()
        return results[0] if single else results

    def _execute_create(self, stmt: CreateTable) -> str:
        """CREATE TABLE: register an empty relation from the column defs."""
        attrs = [
            Attribute(
                col.name,
                AttributeType.LABEL if col.type_name == "LABEL" else AttributeType.NUMERIC,
                col.domain,
            )
            for col in stmt.columns
        ]
        self.register(stmt.name, FuzzyRelation(Schema(attrs)))
        return f"table {stmt.name.upper()} created"

    def _execute_define(self, stmt: DefineTerm) -> str:
        """DEFINE: bind a linguistic term and invalidate cached plans."""
        value = parse_value(stmt.shape, self.vocabulary, stmt.domain)
        self.vocabulary.define(stmt.term, value, stmt.domain)
        # Term redefinitions change predicate semantics everywhere.
        for name in self.tables:
            self.stats_versions.bump(name)
        return f"term '{stmt.term}' defined"

    def _execute_drop(self, stmt: DropTable) -> str:
        """DROP TABLE: retire the heap, its versions, and its indexes."""
        from .columnar.index import index_file_name

        name = stmt.name.upper()
        heap = self.tables.pop(name, None)
        if heap is None:
            raise FuzzyQueryError(f"no relation registered as {name!r}")
        scratch = OperationStats()
        with self.disk.use_stats(scratch):
            if self._writes is not None:
                self._writes.snapshots.forget(name)
            self.disk.delete(heap.name)
            self.disk.delete(name)
            for key in [k for k in self.indexes if k[0] == name]:
                index = self.indexes.pop(key)
                self.disk.delete(index.file)
                self.disk.delete(index_file_name(name, key[1]))
        self.schemas.remove(name)
        self._relations.pop(name, None)
        self.histograms.forget(name)
        self.stats_versions.bump(name)
        return f"table {name} dropped"

    def _heap_of(self, table: str) -> HeapFile:
        """The heap of ``table`` for DML, or a typed error."""
        heap = self.tables.get(table.upper())
        if heap is None:
            raise FuzzyQueryError(f"no relation registered as {table.upper()!r}")
        return heap

    def _insert_op(self, stmt: InsertInto) -> Tuple[str, str, list]:
        """Build the write-manager op of one INSERT statement."""
        heap = self._heap_of(stmt.table)
        schema = heap.schema
        degree = 1.0 if stmt.degree is None else float(stmt.degree)
        rows = []
        for row in stmt.rows:
            if len(row) != len(schema):
                raise FuzzyQueryError(
                    f"INSERT arity mismatch: {len(row)} values for "
                    f"{len(schema)} columns of {heap.name.split('@', 1)[0]}"
                )
            values = [
                parse_value(raw, self.vocabulary, attr.domain)
                for raw, attr in zip(row, schema)
            ]
            rows.append(FuzzyTuple(values, degree))
        return ("insert", stmt.table.upper(), rows)

    def _delete_op(self, stmt: DeleteFrom) -> Tuple[str, str, list]:
        """Build the write-manager op of one DELETE statement."""
        name = stmt.table.upper()
        victims = self._dml_victims(name, stmt.table, stmt.where, stmt.threshold)
        return ("delete", name, victims)

    def _update_op(self, stmt: Update) -> Tuple[str, str, list]:
        """Build the write-manager op of one UPDATE statement."""
        name = stmt.table.upper()
        heap = self._heap_of(name)
        schema = heap.schema
        victims = self._dml_victims(name, stmt.table, stmt.where, stmt.threshold)
        pairs = []
        for old in victims:
            values = list(old.values)
            for column, raw in stmt.assignments:
                try:
                    at = schema.index_of(column)
                except KeyError as exc:
                    raise FuzzyQueryError(str(exc)) from None
                values[at] = parse_value(
                    raw, self.vocabulary, schema.attributes[at].domain
                )
            pairs.append((old, FuzzyTuple(values, old.degree)))
        return ("update", name, pairs)

    def _dml_victims(self, name, table_as_typed, where, threshold) -> List[FuzzyTuple]:
        """Rows of ``name`` whose match degree passes the DML threshold.

        The match degree of a row is ``min(μ(row), μ(WHERE))``; with no
        threshold any positive match qualifies, with ``WITH D >= z`` the
        degree must reach ``z``.  The scan is charged to a scratch ledger
        (the WAL apply owns the statement's ledger).
        """
        heap = self._heap_of(name)
        match = self._dml_match(heap, table_as_typed, where)
        victims = []
        scratch = OperationStats()
        with self.disk.use_stats(scratch):
            for page_index in range(heap.n_pages):
                page = self.disk.read_page(heap.name, page_index)
                for record in page.records():
                    t = heap.serializer.decode(record)
                    d = min(t.degree, match(t))
                    if (d >= threshold) if threshold is not None else (d > 0.0):
                        victims.append(t)
        return victims

    def _dml_match(self, heap: HeapFile, table_as_typed: str, where):
        """Compile the WHERE conjunction of an UPDATE / DELETE.

        Only flat comparisons are accepted; column references may be
        unqualified or qualified by the table name (as typed or upper).
        """
        if not where:
            return lambda t: 1.0
        columns = DmlColumns(
            {None, table_as_typed, table_as_typed.upper(), heap.name},
            heap.schema,
        )
        compiled = []
        for predicate in where:
            if not isinstance(predicate, Comparison):
                raise FuzzyQueryError(
                    "UPDATE/DELETE WHERE accepts only flat comparisons, "
                    f"not {predicate!r}"
                )
            try:
                compiled.append(
                    compile_comparison(predicate, columns, columns, self.vocabulary)
                )
            except CompileError as exc:
                raise FuzzyQueryError(str(exc)) from None

        def degree(t: FuzzyTuple) -> float:
            d = 1.0
            for predicate in compiled:
                if d == 0.0:
                    return 0.0
                d = min(d, predicate(t, None))
            return d

        return degree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        sql: Union[str, SelectQuery],
        metrics: Optional[QueryMetrics] = None,
        tracer: Optional[SpanTracer] = None,
        timeout_ms: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> FuzzyRelation:
        """Execute a query; attach a collector and/or tracer to instrument it.

        With ``metrics`` the whole execution is traced: every disk page
        transfer, operator counters, sort shapes, the nesting type, which
        rewrite fired, and the strategy taken.  With ``tracer`` the
        parse/bind/rewrite/sort/merge/probe phases are recorded as a span
        tree.  When a :attr:`registry` or :attr:`query_log` is attached, a
        collector is created as needed and folded in exactly once.  With
        nothing attached, nothing extra runs — operators stream their raw
        generators.

        ``timeout_ms`` sets a per-query deadline and ``cancel`` a
        cooperative :class:`~repro.resilience.CancelToken`; both are
        checked at every page transfer, raising
        :class:`~repro.errors.QueryTimeoutError` /
        :class:`~repro.errors.QueryCancelledError`.  Failed queries are
        still folded into the registry and query log with their typed
        outcome before the error propagates.

        Textual queries go through the :attr:`plan_cache`: the second run
        of the same SQL skips parse/bind/rewrite (and, for flat plans,
        compilation) entirely, and the collector records the lookup
        outcome in ``metrics.plan_cache``.

        ``workers`` sets this query's intra-query parallelism budget
        (default: the session's :attr:`workers`).  With ``workers > 1``
        flat merge-join plans partition both join inputs by ranges of the
        interval order and sort + join the partitions concurrently,
        degrading to the serial path — with bit-identical results —
        whenever usable boundaries cannot be sampled.

        ``shards`` sets this query's scatter-gather budget (default: the
        session's :attr:`shards`).  On a sharded session merge-joins over
        placed base relations run shard-local against the placed slices
        and splice the results — again degrading, bit-identically, when
        the placement does not cover the join.  Pass ``shards=1`` to pin
        one query to local execution.
        """
        workers = self.workers if workers is None else max(1, workers)
        shards = self.shards if shards is None else max(1, shards)
        guard = QueryGuard.create(timeout_ms, cancel)
        guard_ctx = self.disk.use_guard(guard) if guard is not None else nullcontext()
        need_collector = (
            metrics is not None
            or self.registry is not None
            or self.query_log is not None
            or self.recorder is not None
        )
        use_cache = isinstance(sql, str) and self.plan_cache is not None
        if not need_collector and tracer is None:
            stats = OperationStats()
            self.last_stats = stats
            self.last_plan = None
            self.last_metrics = None
            with guard_ctx:
                if use_cache:
                    prepared, _ = self._cached_prepared(sql, None)
                    result = self._run_prepared(
                        prepared, (), stats, None, None, workers=workers,
                        guard=guard, shards=shards,
                    )
                    prepared.executions += 1
                    return result
                query = parse(sql) if isinstance(sql, str) else sql
                nesting = classify(query, self.schemas)
                return self._dispatch(
                    query, nesting, stats, None, workers=workers, guard=guard,
                    shards=shards,
                )

        collector = (
            (metrics if metrics is not None else QueryMetrics())
            if need_collector
            else None
        )
        self.last_metrics = collector
        self.last_plan = None
        started = time.perf_counter()
        outcome = None
        prepared = None
        try:
            with guard_ctx, maybe_span(tracer, "query"):
                if use_cache:
                    prepared, outcome = self._cached_prepared(sql, tracer)
                    nesting = prepared.nesting
                else:
                    with maybe_span(tracer, "parse"):
                        query = parse(sql) if isinstance(sql, str) else sql
                    with maybe_span(tracer, "bind"):
                        nesting = classify(query, self.schemas)
                stats = OperationStats()
                self.last_stats = stats
                if collector is None:
                    if prepared is not None:
                        result = self._run_prepared(
                            prepared, (), stats, None, tracer,
                            workers=workers, guard=guard, shards=shards,
                        )
                    else:
                        result = self._dispatch(
                            query, nesting, stats, None, tracer,
                            workers=workers, guard=guard, shards=shards,
                        )
                else:
                    collector.nesting_type = nesting.value
                    collector.plan_cache = outcome
                    collector.stats = stats
                    with collector.watch_disk(self.disk), collector.span("query"):
                        if prepared is not None:
                            result = self._run_prepared(
                                prepared, (), stats, collector, tracer,
                                workers=workers, guard=guard, shards=shards,
                            )
                        else:
                            result = self._dispatch(
                                query, nesting, stats, collector, tracer,
                                workers=workers, guard=guard, shards=shards,
                            )
        except FuzzyQueryError as exc:
            self._record_failure(
                sql if isinstance(sql, str) else repr(sql),
                collector,
                started,
                exc,
            )
            raise
        if prepared is not None:
            prepared.executions += 1
        wall = time.perf_counter() - started
        self._observe_query(
            sql if isinstance(sql, str) else repr(sql),
            collector,
            wall,
            len(result),
        )
        return result

    def _observe_query(
        self,
        sql_text: str,
        collector: Optional[QueryMetrics],
        wall: float,
        rows: int,
        error: str = "",
    ) -> None:
        """Fold one finished query into every attached workload sink.

        The single funnel for the registry, query log, and flight
        recorder, so all three always agree on query counts and statement
        identity.  Per-join q-errors are stamped onto the collector first
        (successful flat plans only) — pure arithmetic over the compiled
        plan and the collector's already-measured row counts, no extra
        I/O — so every sink sees the same estimate-drift numbers.
        """
        if collector is None:
            return
        if not error and self.last_plan is not None:
            collector.q_errors = join_q_errors(self.last_plan, collector)
        if self.registry is not None:
            self.registry.observe(collector, wall_seconds=wall, rows=rows)
        if self.query_log is not None:
            self.query_log.record(sql_text, collector, wall_seconds=wall, rows=rows)
        if self.recorder is not None:
            self.recorder.record(
                sql_text, collector, wall_seconds=wall, rows=rows, error=error
            )

    def _record_failure(
        self,
        sql_text: str,
        collector: Optional[QueryMetrics],
        started: float,
        exc: FuzzyQueryError,
    ) -> None:
        """Fold a failed query into the sinks with its typed outcome."""
        if self.registry is not None:
            self.registry.count_error(type(exc).__name__)
        if collector is None:
            return
        if isinstance(exc, QueryTimeoutError):
            collector.outcome = "timeout"
        elif isinstance(exc, QueryCancelledError):
            collector.outcome = "cancelled"
        else:
            collector.outcome = "error"
        wall = time.perf_counter() - started
        self._observe_query(
            sql_text, collector, wall, 0, error=type(exc).__name__
        )

    def health(
        self,
        thresholds: Optional[HealthThresholds] = None,
        last: Optional[int] = None,
    ) -> HealthReport:
        """Evaluate the health rules over this session's workload.

        With a :attr:`timeseries` attached and at least one snapshot
        taken, the report covers the merged recent windows (optionally the
        ``last`` N); otherwise it covers the :attr:`registry`'s lifetime
        totals.  Raises :class:`~repro.errors.FuzzyQueryError` when
        neither sink is attached — there is nothing to judge.
        """
        if self.timeseries is not None and len(self.timeseries):
            window = self.timeseries.merged(last)
        else:
            registry = self.registry
            if registry is None and self.timeseries is not None:
                registry = self.timeseries.registry
            if registry is None:
                raise FuzzyQueryError(
                    "health() needs a registry or timeseries attached "
                    "(assign session.registry = MetricsRegistry())"
                )
            window = lifetime_window(registry)
        return evaluate_health(window, thresholds)

    def trace(self, sql: Union[str, SelectQuery]) -> SpanTracer:
        """Run a query with a fresh span tracer attached and return it.

        The tracer's tree (``render_tree()``) shows where the time went;
        ``export(path)`` writes Chrome ``trace_event`` JSON for
        ``chrome://tracing`` / Perfetto.
        """
        tracer = SpanTracer()
        self.query(sql, tracer=tracer)
        return tracer

    # ------------------------------------------------------------------
    # Prepared statements and the plan cache
    # ------------------------------------------------------------------
    def prepare(self, sql: Union[str, SelectQuery]) -> PreparedQuery:
        """Parse, classify, and rewrite once; execute many times.

        The statement may contain ``?`` placeholders (anywhere a literal
        is legal, and as the ``WITH D >= ?`` threshold); bind one value
        per placeholder at each :meth:`~repro.service.prepared.PreparedQuery.execute`.
        Statements without placeholders additionally cache their compiled
        execution plan (the flat operator tree, a grouped anti-join, or a
        Section 6 pipeline), so repeated executions skip straight to I/O.
        """
        prepared = self._prepare(sql)
        if self.registry is not None:
            self.registry.count_prepared()
        return prepared

    def _prepare(self, sql: Union[str, SelectQuery], tracer: Optional[SpanTracer] = None) -> PreparedQuery:
        with maybe_span(tracer, "parse"):
            template = parse(sql) if isinstance(sql, str) else sql
        with maybe_span(tracer, "bind"):
            nesting = classify(template, self.schemas)
        n_params = count_parameters(template)
        artifact = self._plan_template(template, nesting, n_params, tracer)
        text = sql if isinstance(sql, str) else str(sql)
        return PreparedQuery(self, text, template, nesting, n_params, artifact)

    def _plan_tokens(self, names) -> Dict[str, Tuple[int, int, int]]:
        """Validation tokens per relation:
        ``(stats version, layout token, histogram fingerprint)``.

        Plan-cache entries are stale when *any* component moved — a
        re-registration bumps the statistics version, :meth:`reshard`
        advances only the layout token (placement changes which physical
        files a scatter-gather join reads, so a cached plan's sharded
        execution must be re-validated even though the data — and hence
        the statistics — did not change), and the histogram fingerprint
        records the distribution a plan was *costed* against: it changes
        only when a histogram is rebuilt (registration, or an adaptive
        drift-triggered rebuild), so benign ingest below the drift
        threshold leaves cached plans valid.
        """
        versions = self.stats_versions.snapshot(names)
        return {
            name: (
                version,
                self.sharded.catalog.token(name) if self.sharded is not None else 0,
                self.histograms.fingerprint(name),
            )
            for name, version in versions.items()
        }

    def _compiler(self) -> FlatCompiler:
        """A flat compiler over the current tables (adaptive features gated).

        Non-adaptive sessions get the exact pre-adaptive compiler — no
        histograms, left-deep DP only — so their plans stay byte-for-byte
        identical; adaptive sessions feed histogram edge fan-outs into
        the Section 8 DP, allow bushy trees, and share the subplan memo.
        """
        if not self.adaptive:
            return FlatCompiler(self.tables, self.vocabulary, indexes=self.indexes)
        return FlatCompiler(
            self.tables,
            self.vocabulary,
            indexes=self.indexes,
            histograms=self.histograms,
            bushy=True,
            plan_memo=self._plan_memo,
        )

    def _rebind_plan(self, operator) -> None:
        """Point a cached flat plan's leaves at the current table versions.

        Benign adaptive installs keep cached plans alive without a
        statistics-version bump, so a cached plan's Scan / IndexScan
        leaves may still hold a replaced heap epoch; rebinding by base
        name (``T@e3`` → the session's current ``T`` heap) preserves the
        compiled shape while reading the live data.
        """
        from .columnar.operators import IndexScan

        stack = [operator]
        while stack:
            op = stack.pop()
            if isinstance(op, Scan):
                base = op.heap.name.split("@", 1)[0]
                current = self.tables.get(base)
                if current is not None and current is not op.heap:
                    op.heap = current
                if isinstance(op, IndexScan):
                    index = self.indexes.get((base, op.index.attribute))
                    if index is not None:
                        op.index = index
            stack.extend(op.children())

    def _evict_baked_plans(self, name: str) -> None:
        """Drop cached grouped / pipelined artifacts reading ``name``.

        Flat plans survive a benign install (their leaves rebind), but
        the grouped and Section 6 executables bake heap references into
        their construction and cannot be rebound — a benign install must
        still evict them even though no validation token moved.
        """
        if self.plan_cache is None:
            return
        name = name.upper()

        def stale(_key: str, entry) -> bool:
            artifact = getattr(entry.value, "artifact", None)
            if artifact is None or artifact.kind not in ("grouped", "ja"):
                return False
            return name in entry.tokens

        self.plan_cache.evict_if(stale)

    def _cached_prepared(
        self, sql: str, tracer: Optional[SpanTracer]
    ) -> Tuple[PreparedQuery, str]:
        """The plan-cache lookup behind textual ``query()`` calls."""
        key = normalize_sql(sql)
        prepared, outcome = self.plan_cache.lookup(key, self._plan_tokens)
        if prepared is None:
            prepared = self._prepare(sql, tracer)
            if prepared.param_count:
                raise ParameterError(
                    "query() cannot run a statement with ? placeholders; "
                    "use prepare() and bind values per execution"
                )
            tokens = self._plan_tokens(referenced_tables(prepared.template))
            self.plan_cache.store(key, prepared, tokens)
        return prepared, outcome

    def _plan_template(
        self,
        query: SelectQuery,
        nesting: NestingType,
        n_params: int,
        tracer: Optional[SpanTracer] = None,
    ) -> PlanArtifact:
        """Run the rewrite (and, when closed, compilation) ahead of time.

        Strategies whose predicate compilation bakes literal values in
        (the grouped and pipelined paths) cannot be pre-built for
        parameterized statements; those fall back to per-execution
        dispatch on the bound query.
        """
        if nesting in FLAT_TYPES:
            try:
                with maybe_span(tracer, "rewrite"):
                    plan = unnest(query, self.schemas)
                    if plan.steps or not isinstance(plan.final, SelectQuery):
                        raise UnnestError("not a single flat query")
                rule = plan.rule or plan.nesting_type
                operator = None
                if n_params == 0:
                    with maybe_span(tracer, "compile"):
                        operator = self._compiler().compile(
                            plan.final, optimize=self.optimize_joins
                        )
                return PlanArtifact(
                    "flat", flat=plan.final, rule=rule, operator=operator
                )
            except (UnnestError, CompileError):
                return PlanArtifact("naive")
        if n_params:
            return PlanArtifact("dispatch")
        try:
            if nesting in (NestingType.TYPE_XN, NestingType.TYPE_JX):
                with maybe_span(tracer, "rewrite"):
                    built = self._build_grouped(query, GroupMode.NOT_IN, nesting)
                executable, strategy, rule = built
                return PlanArtifact(
                    "grouped", executable=executable, strategy=strategy, rule=rule
                )
            if nesting in (NestingType.TYPE_ALL, NestingType.TYPE_JALL):
                with maybe_span(tracer, "rewrite"):
                    built = self._build_grouped(query, GroupMode.ALL, nesting)
                executable, strategy, rule = built
                return PlanArtifact(
                    "grouped", executable=executable, strategy=strategy, rule=rule
                )
            if nesting is NestingType.TYPE_JA:
                with maybe_span(tracer, "rewrite"):
                    built = self._build_ja(query, nesting)
                executable, strategy, rule = built
                return PlanArtifact(
                    "ja", executable=executable, strategy=strategy, rule=rule
                )
        except (UnnestError, CompileError):
            pass
        return PlanArtifact("naive")

    def _execute_prepared(
        self,
        prepared: PreparedQuery,
        params: tuple,
        metrics: Optional[QueryMetrics] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> FuzzyRelation:
        """Run a prepared statement (the back end of ``PreparedQuery.execute``)."""
        need_collector = (
            metrics is not None
            or self.registry is not None
            or self.query_log is not None
            or self.recorder is not None
        )
        if not need_collector and tracer is None:
            stats = OperationStats()
            self.last_stats = stats
            self.last_plan = None
            self.last_metrics = None
            result = self._run_prepared(prepared, params, stats, None, None)
            prepared.executions += 1
            return result
        collector = (
            (metrics if metrics is not None else QueryMetrics())
            if need_collector
            else None
        )
        self.last_metrics = collector
        self.last_plan = None
        started = time.perf_counter()
        try:
            with maybe_span(tracer, "query"):
                stats = OperationStats()
                self.last_stats = stats
                if collector is None:
                    result = self._run_prepared(prepared, params, stats, None, tracer)
                else:
                    collector.nesting_type = prepared.nesting.value
                    collector.prepared = True
                    collector.stats = stats
                    with collector.watch_disk(self.disk), collector.span("query"):
                        result = self._run_prepared(
                            prepared, params, stats, collector, tracer
                        )
        except FuzzyQueryError as exc:
            self._record_failure(prepared.sql_text, collector, started, exc)
            raise
        prepared.executions += 1
        wall = time.perf_counter() - started
        self._observe_query(prepared.sql_text, collector, wall, len(result))
        return result

    def _run_prepared(
        self,
        prepared: PreparedQuery,
        params: tuple,
        stats: OperationStats,
        metrics: Optional[QueryMetrics],
        tracer: Optional[SpanTracer],
        workers: int = 1,
        guard: Optional[QueryGuard] = None,
        shards: int = 1,
    ) -> FuzzyRelation:
        """Execute a prepared artifact: bind values, (re)compile, run.

        Never re-enters the parser, binder, or rewriter — only the value
        substitution and (for parameterized flat plans) predicate
        compilation happen per execution.
        """
        from .join.merge_join import WindowOverflowError

        artifact = prepared.artifact
        try:
            if artifact.kind == "flat":
                operator = artifact.operator
                if operator is None:
                    with maybe_span(tracer, "bind-params"):
                        flat = (
                            bind_parameters(artifact.flat, params)
                            if prepared.param_count
                            else artifact.flat
                        )
                    with maybe_span(tracer, "compile"):
                        operator = self._compiler().compile(
                            flat, optimize=self.optimize_joins
                        )
                elif self.adaptive:
                    # A cached plan may have outlived a benign install
                    # (no version bump): rebind its leaves to the live
                    # heap versions before running it.
                    self._rebind_plan(operator)
                if self.adaptive:
                    annotate_estimates(operator)
                self.last_strategy = (
                    f"flat/{prepared.nesting.value}: merge-join plan"
                )
                self.last_plan = operator
                if metrics is not None:
                    metrics.rewrite = artifact.rule
                    metrics.strategy = self.last_strategy
                return operator.to_relation(
                    ExecutionContext(
                        self.disk,
                        self.buffer_pages,
                        stats,
                        metrics=metrics,
                        tracer=tracer,
                        workers=workers,
                        guard=guard,
                        shards=shards,
                        sharded=self.sharded,
                        adapt=self.adapt_controller,
                    )
                )
            if artifact.kind in ("grouped", "ja"):
                self.last_strategy = artifact.strategy
                if metrics is not None:
                    metrics.rewrite = artifact.rule
                    metrics.strategy = artifact.strategy
                return artifact.executable.run(
                    self.disk,
                    self.buffer_pages,
                    stats,
                    metrics=metrics,
                    tracer=tracer,
                )
            if artifact.kind == "dispatch":
                with maybe_span(tracer, "bind-params"):
                    bound = prepared.bind(params)
                return self._dispatch(
                    bound, prepared.nesting, stats, metrics, tracer,
                    workers=workers, guard=guard, shards=shards,
                )
        except (UnnestError, CompileError):
            pass
        except WindowOverflowError:
            stats = OperationStats()
            self.last_stats = stats
            if metrics is not None:
                metrics.stats = stats
        with maybe_span(tracer, "bind-params"):
            bound = prepared.bind(params)
        return self._run_naive(bound, prepared.nesting, stats, metrics, tracer)

    def run_batch(
        self,
        queries,
        workers: int = 1,
        timeout_ms: Optional[float] = None,
        cancel: Optional[CancelToken] = None,
    ) -> List[FuzzyRelation]:
        """Execute read-only queries, optionally across worker threads.

        Results come back in input order regardless of completion order,
        and with ``workers <= 1`` the loop is plain serial execution —
        the differential tests assert both modes produce bit-identical
        relations.  Each query gets its own stats ledger (disk accounting
        is thread-local), and a shared :attr:`registry` / :attr:`query_log`
        is folded under its own lock.

        ``timeout_ms`` applies per query (not to the whole batch); a
        shared ``cancel`` token abandons the batch cooperatively — it is
        checked between queries and, inside each running query, at every
        page transfer.
        """
        from .parallel.executor import run_ordered

        def run_one(q):
            if cancel is not None and cancel.cancelled:
                raise QueryCancelledError("batch cancelled by its CancelToken")
            return self.query(q, timeout_ms=timeout_ms, cancel=cancel)

        return run_ordered(queries, run_one, workers)

    def _dispatch(
        self,
        query: SelectQuery,
        nesting: NestingType,
        stats: OperationStats,
        metrics: Optional[QueryMetrics],
        tracer: Optional[SpanTracer] = None,
        workers: int = 1,
        guard: Optional[QueryGuard] = None,
        shards: int = 1,
    ) -> FuzzyRelation:
        from .join.merge_join import WindowOverflowError

        try:
            if nesting in FLAT_TYPES:
                return self._run_flat(
                    query, nesting, stats, metrics, tracer,
                    workers=workers, guard=guard, shards=shards,
                )
            if nesting in (NestingType.TYPE_XN, NestingType.TYPE_JX):
                return self._run_grouped(
                    query, GroupMode.NOT_IN, nesting, stats, metrics, tracer
                )
            if nesting in (NestingType.TYPE_ALL, NestingType.TYPE_JALL):
                return self._run_grouped(
                    query, GroupMode.ALL, nesting, stats, metrics, tracer
                )
            if nesting is NestingType.TYPE_JA:
                return self._run_ja(query, nesting, stats, metrics, tracer)
        except (UnnestError, CompileError):
            pass
        except WindowOverflowError:
            # The largest Rng(r) did not fit the buffer (very wide supports,
            # Section 3's caveat): restart on the always-applicable path.
            stats = OperationStats()
            self.last_stats = stats
            if metrics is not None:
                metrics.stats = stats
        return self._run_naive(query, nesting, stats, metrics, tracer)

    def explain(self, sql: Union[str, SelectQuery]) -> str:
        """Describe the strategy and plan a query would run with.

        Executes nothing against the data (beyond sampling-free schema
        work); safe to call on large sessions.
        """
        query = parse(sql) if isinstance(sql, str) else sql
        nesting = classify(query, self.schemas)
        lines = [f"nesting type: {nesting.value}"]
        if nesting in FLAT_TYPES:
            try:
                plan = unnest(query, self.schemas)
                if not plan.steps and isinstance(plan.final, SelectQuery):
                    operator = self._compiler().compile(plan.final, optimize=self.optimize_joins)
                    if plan.rule:
                        lines.append(f"rewrite: {plan.rule}")
                    lines.append("strategy: flat merge-join plan")
                    lines.append(render_plan(operator))
                    return "\n".join(lines)
            except (UnnestError, CompileError):
                pass
        elif nesting in (NestingType.TYPE_XN, NestingType.TYPE_JX,
                         NestingType.TYPE_ALL, NestingType.TYPE_JALL):
            try:
                self._dissect(query)
                kind = "NOT IN" if nesting in (NestingType.TYPE_XN, NestingType.TYPE_JX) else "op ALL"
                lines.append(f"strategy: grouped anti-join min-fold ({kind})")
                return "\n".join(lines)
            except (UnnestError, CompileError):
                pass
        elif nesting is NestingType.TYPE_JA:
            try:
                self._dissect(query)
                lines.append("strategy: pipelined T1/T2 merge pass (Section 6)")
                return "\n".join(lines)
            except (UnnestError, CompileError):
                pass
        lines.append("strategy: naive in-memory nested evaluation")
        return "\n".join(lines)

    def explain_analyze(
        self,
        sql: Union[str, SelectQuery],
        workers: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> str:
        """Run the query fully instrumented and render the analysis.

        The report shows the nesting type, the rewrite that fired, the
        strategy taken, the physical plan (estimated next to measured
        cardinalities, with per-join q-error from sampled fan-outs) or the
        storage-level executor's counters, sort shapes, buffer behaviour,
        and per-phase I/O and comparison counts.  With ``workers > 1``
        the report additionally shows the partition table of the parallel
        merge-join (per-partition rows and pages) and the modelled
        parallel response time.
        """
        metrics = QueryMetrics()
        result = self.query(sql, metrics=metrics, workers=workers, shards=shards)
        return render_report(
            metrics,
            plan=self.last_plan,
            n_answers=len(result),
            buffer_pages=self.buffer_pages,
            edge_fanouts=self.sampled_edge_fanouts(self.last_plan) or None,
        )

    def sampled_edge_fanouts(
        self, plan=None, sample_size: int = 64, seed: int = 0
    ) -> Dict[int, float]:
        """Sampled fan-out per merge-join of ``plan``, keyed by ``id(op)``.

        For each :class:`~repro.engine.operators.MergeJoinOp` the base heap
        files carrying the two join attributes are sampled
        (:func:`~repro.engine.statistics.estimate_fanout`), replacing the
        paper's constant ``C`` with a per-edge estimate.  Sampling I/O is
        charged to a scratch ledger, never to :attr:`last_stats`.  Joins
        whose base relations cannot be identified (or whose sample came up
        empty) are simply absent — the caller's constant is the fallback.
        """
        from .engine.operators import MergeJoinOp, Scan
        from .engine.statistics import estimate_fanout

        plan = plan if plan is not None else self.last_plan
        if plan is None:
            return {}

        def base_heap(node, attribute):
            stack = [node]
            while stack:
                op = stack.pop()
                if isinstance(op, Scan) and any(
                    a.name == attribute for a in op.heap.schema
                ):
                    return op.heap
                stack.extend(op.children())
            return None

        fanouts: Dict[int, float] = {}
        scratch = OperationStats()
        stack = [plan]
        while stack:
            op = stack.pop()
            if isinstance(op, MergeJoinOp):
                left = base_heap(op.left, op.left_attr)
                right = base_heap(op.right, op.right_attr)
                if left is not None and right is not None:
                    estimate = estimate_fanout(
                        left,
                        right,
                        attribute=op.left_attr,
                        sample_size=sample_size,
                        seed=seed,
                        stats=scratch,
                        inner_attribute=op.right_attr,
                    )
                    if estimate.pairs_checked:
                        fanouts[id(op)] = estimate.edge_fanout()
                        # Feed the drift detector: a fan-out moving past
                        # the tolerance bumps the relation's statistics
                        # version and invalidates cached plans over it.
                        self.stats_versions.record_fanout(
                            left.name, op.left_attr, estimate.edge_fanout()
                        )
                        self.stats_versions.record_fanout(
                            right.name, op.right_attr, estimate.edge_fanout()
                        )
            stack.extend(op.children())
        return fanouts

    # ------------------------------------------------------------------
    # Strategy: flat plans
    # ------------------------------------------------------------------
    def _run_flat(
        self,
        query: SelectQuery,
        nesting: NestingType,
        stats: OperationStats,
        metrics: Optional[QueryMetrics] = None,
        tracer: Optional[SpanTracer] = None,
        workers: int = 1,
        guard: Optional[QueryGuard] = None,
        shards: int = 1,
    ) -> FuzzyRelation:
        with maybe_span(tracer, "rewrite"):
            plan = unnest(query, self.schemas)
            if plan.steps or not isinstance(plan.final, SelectQuery):
                raise UnnestError("not a single flat query")
        with maybe_span(tracer, "compile"):
            operator = self._compiler().compile(plan.final, optimize=self.optimize_joins)
        if self.adaptive:
            annotate_estimates(operator)
        self.last_strategy = f"flat/{nesting.value}: merge-join plan"
        self.last_plan = operator
        if metrics is not None:
            metrics.rewrite = plan.rule or plan.nesting_type
            metrics.strategy = self.last_strategy
        return operator.to_relation(
            ExecutionContext(
                self.disk, self.buffer_pages, stats, metrics=metrics,
                tracer=tracer, workers=workers, guard=guard,
                shards=shards, sharded=self.sharded,
                adapt=self.adapt_controller,
            )
        )

    # ------------------------------------------------------------------
    # Strategy: grouped anti-joins (Sections 5 and 7)
    # ------------------------------------------------------------------
    def _build_grouped(
        self, query: SelectQuery, mode: GroupMode, nesting: NestingType
    ) -> Tuple[GroupedAntiJoin, str, str]:
        """Dissect and construct the Section 5/7 executor (no I/O yet)."""
        parts = self._dissect(query)
        (outer_name, inner_name, p1, p2, cross, nesting_pred, project_attrs) = parts
        if mode is GroupMode.NOT_IN:
            if not isinstance(nesting_pred, InPredicate) or not nesting_pred.negated:
                raise CompileError("not a NOT IN query")
            z_attr = self._single_column(nesting_pred.query).attribute
            link = (nesting_pred.column.attribute, Op.EQ, z_attr)
        else:
            if not isinstance(nesting_pred, QuantifiedComparison):
                raise CompileError("not an ALL query")
            z_attr = self._single_column(nesting_pred.query).attribute
            link = (nesting_pred.column.attribute, nesting_pred.op, z_attr)
        grouped = GroupedAntiJoin(
            self.tables[outer_name],
            self.tables[inner_name],
            mode,
            link,
            cross=cross,
            p1=p1,
            p2=p2,
            project_attrs=project_attrs,
        )
        band = "merge-join" if grouped.band else "nested-loop"
        strategy = f"grouped/{nesting.value}: {band} min-fold"
        rewrite = (
            "NOT IN -> grouped anti-join min-fold (Section 5)"
            if mode is GroupMode.NOT_IN
            else "op ALL -> doubly-negated grouped fold (Section 7)"
        )
        return grouped, strategy, rewrite

    def _run_grouped(
        self,
        query: SelectQuery,
        mode: GroupMode,
        nesting: NestingType,
        stats: OperationStats,
        metrics: Optional[QueryMetrics] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> FuzzyRelation:
        with maybe_span(tracer, "rewrite"):
            grouped, strategy, rewrite = self._build_grouped(query, mode, nesting)
        self.last_strategy = strategy
        if metrics is not None:
            metrics.rewrite = rewrite
            metrics.strategy = strategy
        return grouped.run(
            self.disk, self.buffer_pages, stats, metrics=metrics, tracer=tracer
        )

    # ------------------------------------------------------------------
    # Strategy: the Section 6 pipeline
    # ------------------------------------------------------------------
    def _build_ja(
        self, query: SelectQuery, nesting: NestingType
    ) -> Tuple[JAPipeline, str, str]:
        """Dissect and construct the Section 6 pipeline (no I/O yet)."""
        parts = self._dissect(query)
        (outer_name, inner_name, p1, p2, cross, nesting_pred, project_attrs) = parts
        if not isinstance(nesting_pred, ScalarSubqueryComparison):
            raise CompileError("not an aggregate nesting")
        if len(cross) != 1 or cross[0][1] is not Op.EQ:
            raise CompileError("the pipeline needs exactly one equality correlation")
        agg = nesting_pred.query.select[0]
        if not isinstance(agg, AggregateExpr):
            raise CompileError("inner block must select an aggregate")
        u_attr, _, v_attr = cross[0]
        pipeline = JAPipeline(
            self.tables[outer_name],
            self.tables[inner_name],
            u_attr=u_attr,
            v_attr=v_attr,
            y_attr=nesting_pred.column.attribute,
            op1=nesting_pred.op,
            agg_func=agg.func,
            z_attr=agg.argument.attribute,
            project_attrs=project_attrs,
            p1=p1,
            p2=p2,
            policy=self.aggregate_policy,
        )
        strategy = f"pipelined/{nesting.value}: T1/T2 merge pass"
        rewrite = "correlated aggregate -> pipelined T1/T2 merge pass (Section 6)"
        return pipeline, strategy, rewrite

    def _run_ja(
        self,
        query: SelectQuery,
        nesting: NestingType,
        stats: OperationStats,
        metrics: Optional[QueryMetrics] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> FuzzyRelation:
        with maybe_span(tracer, "rewrite"):
            pipeline, strategy, rewrite = self._build_ja(query, nesting)
        self.last_strategy = strategy
        if metrics is not None:
            metrics.rewrite = rewrite
            metrics.strategy = strategy
        return pipeline.run(
            self.disk, self.buffer_pages, stats, metrics=metrics, tracer=tracer
        )

    # ------------------------------------------------------------------
    # Fallback: naive evaluation over buffered reads
    # ------------------------------------------------------------------
    def _run_naive(
        self,
        query: SelectQuery,
        nesting: NestingType,
        stats: OperationStats,
        metrics: Optional[QueryMetrics] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> FuzzyRelation:
        if metrics is not None and metrics.rewrite is None:
            metrics.rewrite = "none (naive fallback)"
        catalog = Catalog(self.vocabulary)
        with maybe_span(tracer, "scan tables"), self.disk.use_stats(stats):
            for name, heap in self.tables.items():
                relation = FuzzyRelation(heap.schema)
                for page_index in range(heap.n_pages):
                    page = self.disk.read_page(heap.name, page_index)
                    for record in page.records():
                        relation.add(heap.serializer.decode(record))
                catalog.register(name, relation)
        self.last_strategy = f"naive/{nesting.value}: in-memory nested evaluation"
        if metrics is not None:
            metrics.strategy = self.last_strategy
        evaluator = NaiveEvaluator(
            catalog, aggregate_policy=self.aggregate_policy, stats=stats
        )
        with maybe_span(tracer, "evaluate"):
            return evaluator.evaluate(query)

    # ------------------------------------------------------------------
    # AST dissection shared by the grouped and pipelined strategies
    # ------------------------------------------------------------------
    def _dissect(self, query: SelectQuery):
        q = qualify(query, self.schemas)
        nesting_pred, rest = split_nesting_predicate(q)
        if len(q.from_tables) != 1:
            raise CompileError("these strategies expect a single outer relation")
        outer = q.from_tables[0]
        inner_query = nesting_pred.query
        if len(inner_query.from_tables) != 1:
            raise CompileError("these strategies expect a single inner relation")
        inner = inner_query.from_tables[0]
        if inner_query.group_by or inner_query.distinct or inner_query.with_threshold is not None:
            raise CompileError("inner block must be a plain select")
        if q.with_threshold not in (None, 0.0):
            raise CompileError("WITH thresholds use the fallback path")
        outer_name, inner_name = outer.name.upper(), inner.name.upper()
        if outer_name not in self.tables or inner_name not in self.tables:
            raise CompileError("unregistered relation")
        outer_heap, inner_heap = self.tables[outer_name], self.tables[inner_name]

        outer_columns = [(outer.binding, a.name) for a in outer_heap.schema]
        inner_columns = [(inner.binding, a.name) for a in inner_heap.schema]
        domains = {
            (outer.binding, a.name): a.domain for a in outer_heap.schema
        }
        domains.update({(inner.binding, a.name): a.domain for a in inner_heap.schema})

        p1 = self._conjunction(rest, outer_columns, domains)
        cross: List[Tuple[str, Op, str]] = []
        local = []
        inner_bindings = {inner.binding}
        for predicate in inner_query.where:
            if not isinstance(predicate, Comparison):
                raise CompileError(f"unsupported inner predicate {predicate!r}")
            sides = [predicate.left, predicate.right]
            outer_refs = [
                s for s in sides
                if isinstance(s, ColumnRef) and s.relation not in inner_bindings
            ]
            if not outer_refs:
                local.append(predicate)
                continue
            if len(outer_refs) == 2:
                raise CompileError("correlation must reference one inner column")
            # Normalize: outer attribute first.
            if isinstance(predicate.left, ColumnRef) and predicate.left.relation not in inner_bindings:
                outer_ref, op, inner_ref = predicate.left, predicate.op, predicate.right
            else:
                outer_ref, op, inner_ref = predicate.right, predicate.op.flipped(), predicate.left
            if not isinstance(inner_ref, ColumnRef):
                raise CompileError("correlation must compare two columns")
            cross.append((outer_ref.attribute, op, inner_ref.attribute))
        p2 = self._conjunction(local, inner_columns, domains)

        project_attrs = []
        for item in q.select:
            if not isinstance(item, ColumnRef):
                raise CompileError("select list must be plain columns")
            project_attrs.append(item.attribute)
        return outer_name, inner_name, p1, p2, cross, nesting_pred, project_attrs

    def _conjunction(self, predicates, columns, domains) -> Optional[Callable[[FuzzyTuple], float]]:
        if not predicates:
            return None
        compiled = [
            compile_comparison(p, columns, domains, self.vocabulary) for p in predicates
        ]

        def degree(t: FuzzyTuple) -> float:
            d = 1.0
            for predicate in compiled:
                if d == 0.0:
                    return 0.0
                d = min(d, predicate(t, None))
            return d

        return degree

    def _single_column(self, inner_query: SelectQuery) -> ColumnRef:
        if len(inner_query.select) != 1 or not isinstance(inner_query.select[0], ColumnRef):
            raise CompileError("inner block must select one plain column")
        return inner_query.select[0]
