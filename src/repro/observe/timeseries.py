"""A windowed time-series over :class:`~repro.observe.registry.MetricsRegistry`.

The registry answers "how much, ever"; operations questions are about
*trends*: is the degraded rate climbing, did the cache hit rate collapse
after a reshard, is shard 3 absorbing all the I/O this minute?  This
module keeps a bounded ring of registry snapshots and derives per-window
**deltas** — counter increments and latency-histogram increments between
consecutive snapshots — so those rates fall out without the registry ever
resetting (Prometheus discipline: counters only go up; rates live in the
scrape layer).

Usage::

    ts = TimeSeries(session.registry)
    ... run traffic ...
    ts.snapshot()              # close window 1
    ... run more traffic ...
    ts.snapshot()              # close window 2
    window = ts.merged(last=2) # one aggregate over both windows
    window.degraded_rate, window.cache_hit_rate, window.shard_skew

Timestamps default to :func:`time.monotonic`; pass ``at=`` for
deterministic tests.  The health rules in
:mod:`repro.observe.health` evaluate exactly these window rates.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional

from .registry import MetricsRegistry


@dataclass(frozen=True)
class Window:
    """Counter increments between two snapshots, plus derived rates."""

    start: float
    end: float
    deltas: Mapping[str, float]

    @property
    def duration(self) -> float:
        """Window length in seconds (0 for a degenerate window)."""
        return max(0.0, self.end - self.start)

    def delta(self, key: str) -> float:
        """The increment of one counter over this window (0 if absent)."""
        return self.deltas.get(key, 0.0)

    # ------------------------------------------------------------------
    # Rates the health rules read
    # ------------------------------------------------------------------
    @property
    def queries(self) -> float:
        """Queries folded into the registry during this window."""
        return self.delta("queries")

    @property
    def queries_per_second(self) -> float:
        """Query throughput over the window (0 when duration is 0)."""
        return self.queries / self.duration if self.duration > 0 else 0.0

    @property
    def degraded_rate(self) -> float:
        """Fraction of the window's queries answered degraded."""
        return self._per_query("queries_degraded_total")

    @property
    def failover_rate(self) -> float:
        """Replica failovers per query over the window."""
        return self._per_query("shard_failovers_total")

    @property
    def error_rate(self) -> float:
        """Fraction of the window's queries that failed or timed out."""
        failed = (
            self.delta("queries_failed_total")
            + self.delta("queries_timeout_total")
            + self.delta("queries_cancelled_total")
        )
        return failed / self.queries if self.queries > 0 else 0.0

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Plan-cache hit fraction, or ``None`` with no lookups to judge."""
        hits = self.delta("plan_cache_hits_total")
        lookups = hits + self.delta("plan_cache_misses_total")
        return hits / lookups if lookups > 0 else None

    @property
    def mean_q_error(self) -> Optional[float]:
        """Mean per-join q-error, or ``None`` with no observations."""
        count = self.delta("join_q_error_count")
        return self.delta("join_q_error_sum") / count if count > 0 else None

    def shard_io(self) -> Dict[str, float]:
        """Per-shard page I/O (reads + writes) incremented this window."""
        out: Dict[str, float] = {}
        for key, value in self.deltas.items():
            family, _, label = key.partition(":")
            if family in ("shard_page_reads", "shard_page_writes") and label:
                out[label] = out.get(label, 0.0) + value
        return out

    @property
    def shard_skew(self) -> float:
        """Max-over-mean per-shard I/O this window (1.0 = balanced).

        1.0 when fewer than two shards saw traffic — skew is undefined,
        not alarming, on an unsharded or idle window.
        """
        io = [v for v in self.shard_io().values() if v > 0]
        if len(io) < 2:
            return 1.0
        mean = sum(io) / len(io)
        return max(io) / mean if mean > 0 else 1.0

    def latency_quantile(self, q: float) -> float:
        """Interpolated latency quantile (seconds) from bucket deltas.

        Prometheus-style ``histogram_quantile`` over this window's bucket
        increments; 0.0 on an empty window.
        """
        buckets: List[tuple] = []
        for key, value in self.deltas.items():
            family, _, label = key.partition(":")
            if family == "latency_bucket" and label:
                buckets.append((float(label), value))
        buckets.sort()
        count = self.delta("latency_count")
        if count <= 0 or not buckets:
            return 0.0
        # Bucket counts are cumulative over the bounds within each
        # snapshot, so their per-window differences stay cumulative.
        rank = q * count
        below = 0.0
        lower = 0.0
        for bound, cumulative in buckets:
            if cumulative >= rank:
                in_bucket = cumulative - below
                if in_bucket <= 0:
                    return bound
                fraction = (rank - below) / in_bucket
                return lower + (bound - lower) * fraction
            below = cumulative
            lower = bound
        return buckets[-1][0]

    def _per_query(self, key: str) -> float:
        return self.delta(key) / self.queries if self.queries > 0 else 0.0


class TimeSeries:
    """A bounded ring of registry snapshots with per-window deltas."""

    def __init__(
        self,
        registry: MetricsRegistry,
        capacity: int = 240,
        at: Optional[float] = None,
    ):
        if capacity <= 0:
            raise ValueError("time series capacity must be positive")
        self.registry = registry
        self.capacity = capacity
        self._windows: Deque[Window] = deque(maxlen=capacity)
        #: The open window's baseline: the state at the last snapshot.
        self._last_state = registry.snapshot_state()
        self._last_at = time.monotonic() if at is None else at
        #: Snapshots taken, surviving ring eviction.
        self.snapshots_total = 0

    def snapshot(self, at: Optional[float] = None) -> Window:
        """Close the current window: diff the registry against the last
        snapshot, append the delta window, and open the next one."""
        now_at = time.monotonic() if at is None else at
        state = self.registry.snapshot_state()
        deltas = {
            key: state[key] - self._last_state.get(key, 0.0)
            for key in state
        }
        window = Window(self._last_at, now_at, deltas)
        self._windows.append(window)
        self._last_state = state
        self._last_at = now_at
        self.snapshots_total += 1
        return window

    def windows(self, last: Optional[int] = None) -> List[Window]:
        """The retained windows, oldest first (optionally the last N)."""
        out = list(self._windows)
        return out if last is None else out[-max(0, last):]

    def merged(self, last: Optional[int] = None) -> Window:
        """One window aggregating the last N retained windows.

        Counter deltas sum; the span runs from the first window's start
        to the last window's end.  With no retained windows the result is
        an empty degenerate window (all rates 0 / undefined).
        """
        windows = self.windows(last)
        if not windows:
            at = self._last_at
            return Window(at, at, {})
        deltas: Dict[str, float] = {}
        for window in windows:
            for key, value in window.deltas.items():
                deltas[key] = deltas.get(key, 0.0) + value
        return Window(windows[0].start, windows[-1].end, deltas)

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:
        return (
            f"TimeSeries(windows={len(self._windows)}/{self.capacity}, "
            f"snapshots={self.snapshots_total})"
        )


def lifetime_window(registry: MetricsRegistry) -> Window:
    """The registry's whole life as one degenerate window.

    Deltas are the raw totals (baseline zero) and the duration is 0 —
    ratios (degraded rate, cache hit rate, skew) are meaningful,
    throughput is not.  This is what ``session.health()`` evaluates when
    no :class:`TimeSeries` has been attached.
    """
    state = registry.snapshot_state()
    return Window(0.0, 0.0, dict(state))


__all__ = ["TimeSeries", "Window", "lifetime_window"]
