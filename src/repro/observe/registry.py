"""A process-lifetime metrics registry with Prometheus text exposition.

:class:`QueryMetrics` observes *one* query; a :class:`MetricsRegistry`
folds successive collectors into cumulative workload-level counters —
queries per strategy, rewrites per rule, page I/O, comparison counts,
sort shapes, rows returned — plus a latency histogram, and renders them
in the Prometheus text exposition format so an exporter endpoint (or a
test) can scrape them.

Attach one to a :class:`~repro.session.StorageSession` (or a
:class:`~repro.db.FuzzyDatabase`) by assigning ``session.registry``; the
session then folds every query's collector in exactly once.  The fold is
read-only over a *finished* collector, so attaching a registry never
perturbs the per-query trace (see the no-double-counting regression test
in ``tests/test_observe_workload.py``).
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from .metrics import QueryMetrics

#: Default latency buckets (seconds) — log-ish spacing from 0.5 ms to 10 s.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Prefix of every exported metric family.
NAMESPACE = "fuzzysql"


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_number(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics)."""

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold ``value`` into the sum, count, and cumulative buckets."""
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    def render(self, name: str, help_text: str) -> List[str]:
        """The ``# HELP`` / ``# TYPE`` / sample lines of this histogram."""
        lines = [f"# HELP {name} {help_text}", f"# TYPE {name} histogram"]
        for bound, count in zip(self.bounds, self.bucket_counts):
            lines.append(f'{name}_bucket{{le="{_format_number(bound)}"}} {count}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{name}_sum {repr(self.sum)}")
        lines.append(f"{name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Cumulative counters over every query observed in this process."""

    def __init__(self, latency_buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.queries_by_strategy: Counter = Counter()
        self.queries_by_nesting: Counter = Counter()
        self.rewrites: Counter = Counter()
        self.rows_returned_total = 0
        self.page_reads_total = 0
        self.page_writes_total = 0
        self.crisp_comparisons_total = 0
        self.fuzzy_evaluations_total = 0
        self.tuple_moves_total = 0
        self.sort_runs_total = 0
        self.sort_merge_passes_total = 0
        self.plan_cache_hits_total = 0
        self.plan_cache_misses_total = 0
        self.plan_cache_invalidations_total = 0
        self.statements_prepared_total = 0
        self.prepared_executions_total = 0
        self.io_retries_total = 0
        self.partitions_total = 0
        self.parallel_queries_total = 0
        self.shards_total = 0
        self.sharded_queries_total = 0
        self.shard_failovers_total = 0
        self.queries_degraded_total = 0
        self.queries_timeout_total = 0
        self.queries_cancelled_total = 0
        self.queries_failed_total = 0
        #: Write-ahead-log counters, fed by the
        #: :class:`~repro.wal.manager.WriteManager` via :meth:`count_wal`.
        self.wal_records_total = 0
        self.wal_commits_total = 0
        self.wal_syncs_total = 0
        self.wal_group_commits_total = 0
        self.wal_bytes_synced_total = 0
        self.wal_truncated_bytes_total = 0
        self.wal_snapshots_total = 0
        self.wal_index_delta_merges_total = 0
        self.wal_index_rebuilds_total = 0
        self.wal_index_patches_total = 0
        self.wal_recoveries_total = 0
        self.wal_replayed_records_total = 0
        #: Adaptive-execution counters: join edges re-costed mid-query
        #: and queries whose execution actually changed because of it.
        self.replans_total = 0
        self.queries_adapted_total = 0
        #: Histogram maintenance counters, fed by the session / write
        #: path via :meth:`count_histogram`.
        self.histogram_builds_total = 0
        self.histogram_refreshes_total = 0
        self.histogram_drift_rebuilds_total = 0
        self.operator_rows: Counter = Counter()  # keyed by operator kind
        #: Typed errors raised, keyed by exception class name — every name
        #: in :data:`repro.errors.__all__` is a possible label.
        self.errors_by_type: Counter = Counter()
        #: Per-shard page I/O, keyed by shard index (as a string label) —
        #: the raw material of the time-series shard-skew signal.
        self.shard_page_reads: Counter = Counter()
        self.shard_page_writes: Counter = Counter()
        #: Join q-error accumulation (sum + observation count), folded
        #: from collectors whose session stamped per-join q-errors.
        self.join_q_error_sum = 0.0
        self.join_q_error_count = 0
        self.latency = Histogram(latency_buckets)
        #: Folding is serialized so concurrent sessions can share a
        #: registry (``run_batch`` drives queries from worker threads).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    @property
    def queries_total(self) -> int:
        """Number of queries folded into the registry so far."""
        return self.latency.count

    def observe(
        self,
        metrics: QueryMetrics,
        wall_seconds: float = 0.0,
        rows: Optional[int] = None,
    ) -> None:
        """Fold one finished collector into the cumulative counters.

        Call this exactly once per query; the session does so for you when
        a registry is attached.  The collector is only *read* — folding
        never mutates it, so a caller-supplied ``QueryMetrics`` stays
        usable for per-query analysis afterwards.
        """
        with self._lock:
            self.latency.observe(wall_seconds)
            if metrics.strategy:
                self.queries_by_strategy[metrics.strategy] += 1
            if metrics.nesting_type:
                self.queries_by_nesting[metrics.nesting_type] += 1
            if metrics.rewrite:
                self.rewrites[metrics.rewrite] += 1
            if metrics.plan_cache == "hit":
                self.plan_cache_hits_total += 1
            elif metrics.plan_cache in ("miss", "invalidated"):
                self.plan_cache_misses_total += 1
                if metrics.plan_cache == "invalidated":
                    self.plan_cache_invalidations_total += 1
            if metrics.prepared:
                self.prepared_executions_total += 1
            partitions = getattr(metrics, "partitions", None)
            if partitions:
                # A query counts as parallel only when a partitioned plan
                # actually ran — a worker budget alone (parallel_workers)
                # may have degraded to the serial path.
                self.parallel_queries_total += 1
                self.partitions_total += len(partitions)
            shards = getattr(metrics, "shards", None)
            if shards:
                # Same discipline as parallel queries: a shard budget
                # alone may have degraded to local execution.
                self.sharded_queries_total += 1
                self.shards_total += len(shards)
                for shard in shards:
                    if shard.stats is not None:
                        total = shard.stats.total
                        self.shard_page_reads[str(shard.index)] += total.page_reads
                        self.shard_page_writes[str(shard.index)] += total.page_writes
            self.shard_failovers_total += getattr(metrics, "shard_failovers", 0)
            for q in getattr(metrics, "q_errors", ()):
                self.join_q_error_sum += q
                self.join_q_error_count += 1
            if metrics.degraded:
                self.queries_degraded_total += 1
            self.replans_total += getattr(metrics, "replans", 0)
            if getattr(metrics, "adapted", False):
                self.queries_adapted_total += 1
            outcome = getattr(metrics, "outcome", "ok")
            if outcome == "timeout":
                self.queries_timeout_total += 1
            elif outcome == "cancelled":
                self.queries_cancelled_total += 1
            elif outcome != "ok":
                self.queries_failed_total += 1
            if rows is not None:
                self.rows_returned_total += rows
            if metrics.stats is not None:
                total = metrics.stats.total
                self.page_reads_total += total.page_reads
                self.page_writes_total += total.page_writes
                self.crisp_comparisons_total += total.crisp_comparisons
                self.fuzzy_evaluations_total += total.fuzzy_evaluations
                self.tuple_moves_total += total.tuple_moves
                self.io_retries_total += total.io_retries
            for sort in metrics.sorts:
                self.sort_runs_total += sort.runs
                self.sort_merge_passes_total += sort.merge_passes
            for om in metrics.operators.values():
                # Key by operator kind (the label up to any parenthesis) to
                # keep the label cardinality bounded.
                kind = om.label.split("(", 1)[0].split("[", 1)[0]
                self.operator_rows[kind] += om.rows_out

    def count_prepared(self) -> None:
        """Record one ``prepare()`` call (a statement entering the service)."""
        with self._lock:
            self.statements_prepared_total += 1

    def count_wal(
        self,
        records: int = 0,
        commits: int = 0,
        syncs: int = 0,
        group_commits: int = 0,
        bytes_synced: int = 0,
        snapshots: int = 0,
        index_delta_merges: int = 0,
        index_rebuilds: int = 0,
        index_patches: int = 0,
        recoveries: int = 0,
        replayed_records: int = 0,
        truncated_bytes: int = 0,
    ) -> None:
        """Fold one write-path event into the ``fuzzysql_wal_*`` counters."""
        with self._lock:
            self.wal_records_total += records
            self.wal_commits_total += commits
            self.wal_syncs_total += syncs
            self.wal_group_commits_total += group_commits
            self.wal_bytes_synced_total += bytes_synced
            self.wal_snapshots_total += snapshots
            self.wal_index_delta_merges_total += index_delta_merges
            self.wal_index_rebuilds_total += index_rebuilds
            self.wal_index_patches_total += index_patches
            self.wal_recoveries_total += recoveries
            self.wal_replayed_records_total += replayed_records
            self.wal_truncated_bytes_total += truncated_bytes

    def count_histogram(
        self,
        builds: int = 0,
        refreshes: int = 0,
        drift_rebuilds: int = 0,
    ) -> None:
        """Fold histogram maintenance into the ``fuzzysql_histogram_*`` counters."""
        with self._lock:
            self.histogram_builds_total += builds
            self.histogram_refreshes_total += refreshes
            self.histogram_drift_rebuilds_total += drift_rebuilds

    def count_error(self, type_name: str) -> None:
        """Record one raised error by its exception class name."""
        with self._lock:
            self.errors_by_type[type_name] += 1

    # ------------------------------------------------------------------
    # Snapshots (the time-series feed)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, float]:
        """A flat, lock-consistent copy of every counter.

        Scalar counters appear under their attribute name; labelled
        families under ``family:label`` (``shard_page_reads:0``); the
        latency histogram under ``latency_sum`` / ``latency_count`` /
        ``latency_bucket:<bound>``.  This is what
        :class:`~repro.observe.timeseries.TimeSeries` diffs window to
        window, so it must cover every signal a health rule reads.
        """
        with self._lock:
            state: Dict[str, float] = {
                name: float(value)
                for name, value in vars(self).items()
                if isinstance(value, (int, float)) and not name.startswith("_")
            }
            state["queries"] = float(self.latency.count)
            for family, counts in (
                ("strategy", self.queries_by_strategy),
                ("nesting", self.queries_by_nesting),
                ("rewrite", self.rewrites),
                ("operator_rows", self.operator_rows),
                ("errors", self.errors_by_type),
                ("shard_page_reads", self.shard_page_reads),
                ("shard_page_writes", self.shard_page_writes),
            ):
                for key, value in counts.items():
                    state[f"{family}:{key}"] = float(value)
            state["latency_sum"] = self.latency.sum
            state["latency_count"] = float(self.latency.count)
            for bound, count in zip(self.latency.bounds, self.latency.bucket_counts):
                state[f"latency_bucket:{_format_number(bound)}"] = float(count)
        return state

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_prometheus(self, name_prefix: Optional[str] = None) -> str:
        """The registry in the Prometheus text exposition format.

        ``name_prefix`` keeps only the metric families whose qualified
        name starts with it (``fuzzysql_`` is implied when the prefix
        does not carry it), so a reader can slice the growing exposition
        — e.g. ``render_prometheus("fuzzysql_shard")`` or, through the
        shell, ``\\metrics shard``.
        """
        families: List[List[str]] = []
        families.append(
            self._counter_family(
                "queries_total",
                "Queries executed, by execution strategy.",
                "strategy",
                self.queries_by_strategy,
            )
        )
        families.append(
            self._counter_family(
                "nesting_total",
                "Queries executed, by nesting type.",
                "nesting",
                self.queries_by_nesting,
            )
        )
        families.append(
            self._counter_family(
                "rewrites_total",
                "Unnesting rewrites fired, by rule.",
                "rule",
                self.rewrites,
            )
        )
        families.append(
            self._counter_family(
                "operator_rows_total",
                "Rows produced, by operator kind.",
                "operator",
                self.operator_rows,
            )
        )
        families.append(
            self._counter_family(
                "errors_total",
                "Typed errors raised, by exception class name.",
                "type",
                self.errors_by_type,
            )
        )
        families.append(
            self._counter_family(
                "shard_page_reads_total",
                "Pages read by shard tasks, by shard index.",
                "shard",
                self.shard_page_reads,
            )
        )
        families.append(
            self._counter_family(
                "shard_page_writes_total",
                "Pages written by shard tasks, by shard index.",
                "shard",
                self.shard_page_writes,
            )
        )
        for name, help_text, value in (
            ("rows_returned_total", "Answer tuples returned.", self.rows_returned_total),
            ("page_reads_total", "Pages read from the simulated disk.", self.page_reads_total),
            ("page_writes_total", "Pages written to the simulated disk.", self.page_writes_total),
            ("crisp_comparisons_total", "Crisp comparisons performed.", self.crisp_comparisons_total),
            ("fuzzy_evaluations_total", "Fuzzy predicate evaluations performed.", self.fuzzy_evaluations_total),
            ("tuple_moves_total", "Tuple moves performed.", self.tuple_moves_total),
            ("sort_runs_total", "Initial runs generated by external sorts.", self.sort_runs_total),
            ("sort_merge_passes_total", "Merge passes performed by external sorts.", self.sort_merge_passes_total),
            ("plan_cache_hits_total", "Plan-cache lookups served from cache.", self.plan_cache_hits_total),
            ("plan_cache_misses_total", "Plan-cache lookups that had to plan.", self.plan_cache_misses_total),
            ("plan_cache_invalidations_total", "Plan-cache entries dropped for stale statistics.", self.plan_cache_invalidations_total),
            ("statements_prepared_total", "Statements prepared via prepare().", self.statements_prepared_total),
            ("prepared_executions_total", "Executions of prepared statements.", self.prepared_executions_total),
            ("io_retries_total", "Page transfers re-issued after a transient fault.", self.io_retries_total),
            ("partitions_total", "Partitions executed by range-partitioned parallel joins.", self.partitions_total),
            ("parallel_queries_total", "Queries that ran a range-partitioned parallel join.", self.parallel_queries_total),
            ("shards_total", "Shard tasks executed by scatter-gather joins.", self.shards_total),
            ("sharded_queries_total", "Queries that ran a scatter-gather sharded join.", self.sharded_queries_total),
            ("shard_failovers_total", "Shard reads completed from a mirror replica after a storage fault.", self.shard_failovers_total),
            ("queries_degraded_total", "Queries answered via a degraded fallback strategy.", self.queries_degraded_total),
            ("queries_timeout_total", "Queries that exceeded their deadline.", self.queries_timeout_total),
            ("queries_cancelled_total", "Queries cancelled via a CancelToken.", self.queries_cancelled_total),
            ("queries_failed_total", "Queries that failed with a typed error.", self.queries_failed_total),
            ("wal_records_total", "Frames appended to the write-ahead log.", self.wal_records_total),
            ("wal_commits_total", "Transactions committed through the write-ahead log.", self.wal_commits_total),
            ("wal_syncs_total", "Durability barriers issued by the write-ahead log.", self.wal_syncs_total),
            ("wal_group_commits_total", "Syncs that covered two or more commits.", self.wal_group_commits_total),
            ("wal_bytes_synced_total", "Bytes made durable by WAL syncs.", self.wal_bytes_synced_total),
            ("wal_truncated_bytes_total", "Torn WAL tail bytes truncated by recovery.", self.wal_truncated_bytes_total),
            ("wal_snapshots_total", "Heap versions installed by the write path.", self.wal_snapshots_total),
            ("wal_index_delta_merges_total", "Index maintenance runs taking the staged delta-merge path.", self.wal_index_delta_merges_total),
            ("wal_index_rebuilds_total", "Index maintenance runs taking the full-rebuild path.", self.wal_index_rebuilds_total),
            ("wal_index_patches_total", "Index maintenance runs taking the single-row patch path.", self.wal_index_patches_total),
            ("wal_recoveries_total", "Crash recoveries completed.", self.wal_recoveries_total),
            ("wal_replayed_records_total", "Row records replayed by crash recovery.", self.wal_replayed_records_total),
            ("replans_total", "Join edges re-costed by mid-query adaptive re-planning.", self.replans_total),
            ("queries_adapted_total", "Queries whose execution changed via adaptive re-planning.", self.queries_adapted_total),
            ("histogram_builds_total", "Attribute histograms built at registration.", self.histogram_builds_total),
            ("histogram_refreshes_total", "Attribute histogram delta refreshes by the write path.", self.histogram_refreshes_total),
            ("histogram_drift_rebuilds_total", "Histogram rebuilds triggered by statistics drift.", self.histogram_drift_rebuilds_total),
            ("join_q_error_sum", "Sum of per-join q-errors stamped on collectors.", self.join_q_error_sum),
            ("join_q_error_count", "Number of per-join q-error observations.", self.join_q_error_count),
        ):
            qualified = f"{NAMESPACE}_{name}"
            families.append([
                f"# HELP {qualified} {help_text}",
                f"# TYPE {qualified} counter",
                f"{qualified} {_format_number(value)}",
            ])
        families.append(
            self.latency.render(
                f"{NAMESPACE}_query_seconds", "Query wall time in seconds."
            )
        )
        if name_prefix:
            prefix = (
                name_prefix
                if name_prefix.startswith(NAMESPACE)
                else f"{NAMESPACE}_{name_prefix}"
            )
            families = [
                family
                for family in families
                if family[0].split(" ", 2)[2].split(" ", 1)[0].startswith(prefix)
            ]
        lines = [line for family in families for line in family]
        return "\n".join(lines) + "\n"

    @staticmethod
    def _counter_family(
        name: str, help_text: str, label: str, values: Dict[str, int]
    ) -> List[str]:
        qualified = f"{NAMESPACE}_{name}"
        lines = [f"# HELP {qualified} {help_text}", f"# TYPE {qualified} counter"]
        for key in sorted(values):
            lines.append(
                f'{qualified}{{{label}="{escape_label_value(key)}"}} {values[key]}'
            )
        return lines

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(queries={self.queries_total}, "
            f"reads={self.page_reads_total}, writes={self.page_writes_total})"
        )
