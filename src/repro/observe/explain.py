"""EXPLAIN / EXPLAIN ANALYZE rendering for physical plans.

Two jobs:

* :func:`annotate_estimates` — bottom-up cardinality estimation over an
  operator tree under the paper's constant fan-out model (each outer
  tuple joins ``C`` inner tuples on average; selections filter by a fixed
  factor).  Estimates are stamped onto the operators as
  ``estimated_rows`` so the renderer — and anything else — can read them.
* :func:`render_plan` / :func:`render_report` — the indented plan tree,
  optionally annotated with a :class:`~repro.observe.metrics.QueryMetrics`
  collector's *measured* counters next to the estimates, so
  estimate-vs-actual drift is visible in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine.operators import (
    Materialize,
    MergeJoinOp,
    NestedLoopJoinOp,
    Operator,
    Project,
    Scan,
    Select,
    Threshold,
)
from .metrics import QueryMetrics

#: Default join fan-out — the paper's constant C (Section 8 / Section 9).
DEFAULT_FANOUT = 7.0

#: Assumed filter factor of one pushed-down or residual fuzzy predicate.
PREDICATE_SELECTIVITY = 0.5


def estimate_rows(
    operator: Operator,
    fanout: float = DEFAULT_FANOUT,
    edge_fanouts: Optional[Dict[int, float]] = None,
) -> float:
    """Estimated output cardinality of one operator (children recursed).

    ``edge_fanouts`` maps ``id(join_operator)`` to a *per-edge* fan-out —
    typically a sampled :meth:`~repro.engine.statistics.FanoutEstimate.edge_fanout`
    — so each join can use its own measured C; joins without an entry fall
    back to the constant ``fanout``.
    """
    if isinstance(operator, Scan):
        base = float(operator.heap.n_tuples)
        return base * PREDICATE_SELECTIVITY ** len(operator.predicates)
    if isinstance(operator, (MergeJoinOp, NestedLoopJoinOp)):
        left = estimate_rows(operator.left, fanout, edge_fanouts)
        right = estimate_rows(operator.right, fanout, edge_fanouts)
        c = fanout
        if edge_fanouts is not None:
            c = edge_fanouts.get(id(operator), fanout)
        # Constant fan-out: each left tuple joins C right tuples, bounded
        # by the cross product on tiny inputs.
        return max(1.0, min(left * c, left * max(right, 1.0)))
    if isinstance(operator, Select):
        child = estimate_rows(operator.child, fanout, edge_fanouts)
        return child * PREDICATE_SELECTIVITY ** len(operator.predicates)
    if isinstance(operator, Threshold):
        child = estimate_rows(operator.child, fanout, edge_fanouts)
        return child if operator.threshold <= 0.0 else child * PREDICATE_SELECTIVITY
    if isinstance(operator, (Project, Materialize)):
        return estimate_rows(operator.child, fanout, edge_fanouts)
    children = operator.children()
    if len(children) == 1:
        return estimate_rows(children[0], fanout, edge_fanouts)
    raise TypeError(f"no cardinality estimate for {type(operator).__name__}")


def annotate_estimates(
    root: Operator,
    fanout: float = DEFAULT_FANOUT,
    edge_fanouts: Optional[Dict[int, float]] = None,
) -> Dict[int, float]:
    """Stamp ``estimated_rows`` on every node; returns ``{id(op): est}``."""
    estimates: Dict[int, float] = {}

    def walk(operator: Operator) -> None:
        estimates[id(operator)] = estimate_rows(operator, fanout, edge_fanouts)
        operator.estimated_rows = estimates[id(operator)]
        for child in operator.children():
            walk(child)

    walk(root)
    return estimates


def q_error(estimated: float, actual: float) -> float:
    """The q-error ``max(est/actual, actual/est)``, both sides floored at 1.

    1.0 means a perfect estimate; the factor says how far off the
    cardinality model was, symmetrically for over- and under-estimates.
    """
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


def join_q_errors(
    root: Operator,
    metrics: QueryMetrics,
    fanout: float = DEFAULT_FANOUT,
    edge_fanouts: Optional[Dict[int, float]] = None,
) -> List[float]:
    """Per-join q-errors of an executed plan, in plan order.

    Pure arithmetic over the cardinality model and the collector's
    measured ``rows_out`` — no sampling, no I/O — so the session can
    stamp these onto every instrumented query for the registry's q-error
    drift signal.  Joins the collector never touched (e.g. short-circuited
    subtrees) are skipped.
    """
    estimates = annotate_estimates(root, fanout, edge_fanouts)
    out: List[float] = []

    def walk(operator: Operator) -> None:
        if isinstance(operator, (MergeJoinOp, NestedLoopJoinOp)):
            om = metrics.for_node(operator)
            if om is not None:
                out.append(q_error(estimates[id(operator)], om.rows_out))
        for child in operator.children():
            walk(child)

    walk(root)
    return out


def render_plan(
    root: Operator,
    metrics: Optional[QueryMetrics] = None,
    fanout: float = DEFAULT_FANOUT,
    edge_fanouts: Optional[Dict[int, float]] = None,
) -> str:
    """The indented plan tree, annotated ``(est=... [, rows=..., q=..., ...])``.

    Without a collector this is EXPLAIN (estimates only); with one it is
    the plan half of EXPLAIN ANALYZE (estimates next to actuals, and a
    q-error per join operator).  ``edge_fanouts`` feeds sampled per-edge
    fan-outs into the estimates (see :func:`estimate_rows`).
    """
    estimates = annotate_estimates(root, fanout, edge_fanouts)
    lines: List[str] = []

    def walk(operator: Operator, depth: int) -> None:
        notes = [f"est={estimates[id(operator)]:.0f}"]
        if metrics is not None:
            om = metrics.for_node(operator)
            if om is not None:
                notes.append(f"rows={om.rows_out}")
                if isinstance(operator, (MergeJoinOp, NestedLoopJoinOp)):
                    notes.append(
                        f"q={q_error(estimates[id(operator)], om.rows_out):.2f}"
                    )
                if om.rows_in:
                    notes.append(f"in={om.rows_in}")
                if om.prunes:
                    notes.append(f"prunes={om.prunes}")
                notes.append(f"time={om.wall_seconds * 1000.0:.2f}ms")
        lines.append("  " * depth + operator.describe() + "  (" + ", ".join(notes) + ")")
        for child in operator.children():
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def _partition_bounds(lower, upper) -> str:
    """Render a partition's half-open ``b(v)`` range, ``[lo, hi)``."""
    lo = "-inf" if lower is None else f"{lower:g}"
    hi = "+inf" if upper is None else f"{upper:g}"
    return f"[{lo}, {hi})"


def render_report(
    metrics: QueryMetrics,
    plan: Optional[Operator] = None,
    n_answers: Optional[int] = None,
    buffer_pages: Optional[int] = None,
    fanout: float = DEFAULT_FANOUT,
    edge_fanouts: Optional[Dict[int, float]] = None,
) -> str:
    """The full EXPLAIN ANALYZE text: header, plan tree, counter footers."""
    lines: List[str] = []
    if metrics.nesting_type is not None:
        lines.append(f"nesting type: {metrics.nesting_type}")
    if metrics.rewrite is not None:
        lines.append(f"rewrite: {metrics.rewrite}")
    if metrics.strategy is not None:
        lines.append(f"strategy: {metrics.strategy}")
    if metrics.plan_cache is not None:
        lines.append(f"plan cache: {metrics.plan_cache}")
    if metrics.parallel_workers > 1:
        lines.append(f"parallel_workers={metrics.parallel_workers}")
    if metrics.partitions:
        lines.append(f"partitions={len(metrics.partitions)}")
    if getattr(metrics, "requested_shards", 0) > 1:
        lines.append(f"requested_shards={metrics.requested_shards}")
    if getattr(metrics, "shards", None):
        lines.append(f"shards={len(metrics.shards)}")
    if getattr(metrics, "shard_failovers", 0):
        lines.append(f"shard failovers: {metrics.shard_failovers}")
    if metrics.degraded:
        reason = metrics.degraded_reason or "fallback strategy"
        lines.append(f"degraded=True ({reason})")
    if getattr(metrics, "adapted", False):
        reason = metrics.adapt_reason or "mid-query re-plan"
        lines.append(f"adapted=True ({reason})")
    if getattr(metrics, "replans", 0):
        lines.append(f"replans={metrics.replans}")
    if metrics.outcome != "ok":
        lines.append(f"outcome: {metrics.outcome}")
    if metrics.stats is not None and metrics.stats.total.io_retries:
        lines.append(f"io retries: {metrics.stats.total.io_retries}")

    if plan is not None:
        lines.append(render_plan(plan, metrics, fanout, edge_fanouts))
    elif metrics.operators:
        # Storage-level executors (grouped anti-join, JA pipeline) have no
        # operator tree; list their counters flat.  Executors that carry
        # their own coarse ``estimated_rows`` get the est/q-error columns.
        for node, om in metrics.iter_nodes():
            estimated = getattr(node, "estimated_rows", None)
            notes = []
            if estimated is not None:
                notes.append(f"est={estimated:.0f}")
            notes.append(f"rows={om.rows_out}")
            if estimated is not None:
                notes.append(f"q={q_error(estimated, om.rows_out):.2f}")
            if om.rows_in:
                notes.append(f"in={om.rows_in}")
            if om.prunes:
                notes.append(f"prunes={om.prunes}")
            notes.append(f"time={om.wall_seconds * 1000.0:.2f}ms")
            lines.append(f"{om.label}  (" + ", ".join(notes) + ")")

    for step in metrics.steps:
        lines.append(
            f"step {step.name}: rows={step.rows_out}, "
            f"time={step.wall_seconds * 1000.0:.2f}ms"
        )

    for part in metrics.partitions:
        bounds = _partition_bounds(part.lower, part.upper)
        notes = [
            f"rows={part.rows_out}",
            f"outer={part.outer_tuples}t/{part.outer_pages}p",
            f"inner={part.inner_tuples}t/{part.inner_pages}p",
        ]
        if part.stats is not None:
            from ..storage.costs import PAPER_1992

            notes.append(f"model={PAPER_1992.response_time(part.stats):.3f}s")
        lines.append(f"partition {part.index} {bounds}: " + ", ".join(notes))

    for shard in getattr(metrics, "shards", ()):
        bounds = _partition_bounds(shard.lower, shard.upper)
        notes = [
            f"rows={shard.rows_out}",
            f"outer={shard.outer_tuples}t/{shard.outer_pages}p",
            f"inner={shard.inner_tuples}t/{shard.inner_pages}p",
        ]
        if shard.stats is not None:
            from ..storage.costs import PAPER_1992

            notes.append(f"model={PAPER_1992.response_time(shard.stats):.3f}s")
        lines.append(f"shard {shard.index} {bounds}: " + ", ".join(notes))

    for sort in metrics.sorts:
        lines.append(
            f"sort {sort.source} on {sort.attribute}: {sort.tuples} tuples, "
            f"{sort.runs} runs, {sort.merge_passes} merge passes"
        )

    buffer = metrics.buffer
    if buffer.accesses:
        lines.append(
            f"buffer: hits={buffer.hits}, misses={buffer.misses}, "
            f"re-fetches={buffer.re_fetches}"
        )
    elif buffer_pages is not None and metrics.page_trace:
        replay = metrics.buffer_replay(buffer_pages)
        lines.append(
            f"buffer (LRU replay, {buffer_pages} frames): "
            f"hits={replay.hits}, misses={replay.misses}, "
            f"re-fetches={replay.re_fetches}"
        )

    if metrics.stats is not None:
        for name, counters in metrics.stats.items():
            line = (
                f"io[{name}]: reads={counters.page_reads}, "
                f"writes={counters.page_writes}, "
                f"crisp={counters.crisp_comparisons}, "
                f"fuzzy={counters.fuzzy_evaluations}"
            )
            # Columnar access-path overlays, shown only when the phase
            # actually used an index so row-path reports stay unchanged.
            if counters.index_pages_read:
                line += f", index pages read={counters.index_pages_read}"
            if counters.columns_scanned:
                line += f", columns scanned={counters.columns_scanned}"
            if counters.kernel_batches:
                line += f", kernel batches={counters.kernel_batches}"
            lines.append(line)

    for name, seconds in metrics.spans.items():
        lines.append(f"span {name}: {seconds * 1000.0:.2f}ms")

    if n_answers is not None:
        lines.append(f"answer: {n_answers} tuples")
    return "\n".join(lines)
