"""Threshold rules over workload rates: the ``ok / warn / critical`` surface.

The time series (:mod:`repro.observe.timeseries`) turns the registry into
window rates; this module turns those rates into an operational verdict.
Five rules, each deliberately shaped as the input signal the ROADMAP's
adaptive-optimization item will consume:

* **degraded-rate** — fraction of queries answered by a fallback
  strategy; any degradation warns, a majority is critical.
* **failover-rate** — replica failovers per query; any failover warns
  (a node is unhealthy), sustained failover on most queries is critical.
* **error-rate** — typed failures (errors, timeouts, cancellations) per
  query.
* **shard-skew** — max-over-mean per-shard page I/O; a hot shard warns,
  a pathological imbalance is critical.
* **q-error drift** — mean per-join q-error; estimates drifting far from
  measured fan-outs mean plans are being chosen on stale statistics
  (the re-planning trigger).
* **cache-hit floor** — the plan-cache hit rate falling through a floor
  (judged only once enough lookups happened to be meaningful).

Each rule yields a :class:`HealthSignal`; the report's level is the worst
signal.  Thresholds are plain data (:class:`HealthThresholds`) so a
deployment can tighten or relax them without touching the rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .timeseries import Window

#: Severity order used to fold signals into the report level.
LEVELS = ("ok", "warn", "critical")


@dataclass(frozen=True)
class HealthThresholds:
    """Rule thresholds; ``*_warn`` / ``*_critical`` are exclusive lower
    bounds (a value strictly above trips the level)."""

    degraded_warn: float = 0.0
    degraded_critical: float = 0.5
    failover_warn: float = 0.0
    failover_critical: float = 0.5
    error_warn: float = 0.0
    error_critical: float = 0.25
    shard_skew_warn: float = 2.0
    shard_skew_critical: float = 4.0
    q_error_warn: float = 4.0
    q_error_critical: float = 16.0
    #: Hit-rate floors (falling *below* trips the level) and the minimum
    #: lookup volume before the cache rule is judged at all.
    cache_hit_floor_warn: float = 0.5
    cache_hit_floor_critical: float = 0.1
    cache_min_lookups: int = 8


@dataclass(frozen=True)
class HealthSignal:
    """One rule's verdict."""

    name: str
    level: str
    value: float
    message: str


@dataclass(frozen=True)
class HealthReport:
    """The folded verdict over every rule, rendered for ``\\health``."""

    level: str
    signals: List[HealthSignal] = field(default_factory=list)
    queries: float = 0.0
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        """True when no rule tripped."""
        return self.level == "ok"

    def signal(self, name: str) -> Optional[HealthSignal]:
        """The named rule's signal, or ``None``."""
        for signal in self.signals:
            if signal.name == name:
                return signal
        return None

    def render(self) -> str:
        """The ``\\health`` text: overall level, then one line per rule."""
        header = f"health: {self.level} ({self.queries:g} queries"
        if self.duration > 0:
            header += f" over {self.duration:.1f}s"
        header += ")"
        lines = [header]
        for signal in self.signals:
            lines.append(f"  [{signal.level:>8}] {signal.name}: {signal.message}")
        return "\n".join(lines)


def _grade(value: float, warn: float, critical: float) -> str:
    if value > critical:
        return "critical"
    if value > warn:
        return "warn"
    return "ok"


def evaluate_health(
    window: Window, thresholds: Optional[HealthThresholds] = None
) -> HealthReport:
    """Apply every rule to one window's rates and fold the verdict."""
    t = thresholds if thresholds is not None else HealthThresholds()
    signals: List[HealthSignal] = []

    degraded = window.degraded_rate
    signals.append(HealthSignal(
        "degraded-rate",
        _grade(degraded, t.degraded_warn, t.degraded_critical),
        degraded,
        f"{degraded:.1%} of queries answered degraded",
    ))

    failover = window.failover_rate
    signals.append(HealthSignal(
        "failover-rate",
        _grade(failover, t.failover_warn, t.failover_critical),
        failover,
        f"{failover:.2f} replica failovers per query",
    ))

    errors = window.error_rate
    signals.append(HealthSignal(
        "error-rate",
        _grade(errors, t.error_warn, t.error_critical),
        errors,
        f"{errors:.1%} of queries failed, timed out, or were cancelled",
    ))

    skew = window.shard_skew
    signals.append(HealthSignal(
        "shard-skew",
        _grade(skew, t.shard_skew_warn, t.shard_skew_critical),
        skew,
        f"hottest shard at {skew:.2f}x the mean page I/O",
    ))

    q = window.mean_q_error
    if q is None:
        signals.append(HealthSignal(
            "q-error-drift", "ok", 1.0, "no q-error observations this window"
        ))
    else:
        signals.append(HealthSignal(
            "q-error-drift",
            _grade(q, t.q_error_warn, t.q_error_critical),
            q,
            f"mean join q-error {q:.2f} (1.00 = perfect estimates)",
        ))

    hit_rate = window.cache_hit_rate
    lookups = (
        window.delta("plan_cache_hits_total")
        + window.delta("plan_cache_misses_total")
    )
    if hit_rate is None or lookups < t.cache_min_lookups:
        signals.append(HealthSignal(
            "cache-hit-floor", "ok", 1.0,
            f"too few plan-cache lookups to judge ({lookups:g} < {t.cache_min_lookups})",
        ))
    else:
        if hit_rate < t.cache_hit_floor_critical:
            level = "critical"
        elif hit_rate < t.cache_hit_floor_warn:
            level = "warn"
        else:
            level = "ok"
        signals.append(HealthSignal(
            "cache-hit-floor", level, hit_rate,
            f"plan-cache hit rate {hit_rate:.1%} "
            f"(floors: warn <{t.cache_hit_floor_warn:.0%}, "
            f"critical <{t.cache_hit_floor_critical:.0%})",
        ))

    level = LEVELS[max(LEVELS.index(s.level) for s in signals)]
    return HealthReport(
        level=level,
        signals=signals,
        queries=window.queries,
        duration=window.duration,
    )


__all__ = [
    "HealthReport",
    "HealthSignal",
    "HealthThresholds",
    "LEVELS",
    "evaluate_health",
]
