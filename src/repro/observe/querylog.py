"""A bounded per-session query log with slow-query surfacing.

Every executed statement is recorded with its SQL text, nesting type,
fired rewrite, execution strategy, answer cardinality, page I/O, and wall
time.  Entries above a configurable slow-query threshold are flagged, and
:meth:`QueryLog.summarize` renders the workload view a production engine's
``pg_stat_statements``-style report would: totals per strategy and the
slowest statements, fuzzy joins first.

Attach one by assigning ``session.query_log`` (or ``db.query_log``); the
session records every query for you.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from .fingerprint import canonicalize_sql, fingerprint
from .metrics import QueryMetrics


@dataclass(frozen=True)
class QueryLogEntry:
    """One logged statement."""

    sql: str
    #: Stable statement-template id (same statement, different literal
    #: bindings → same fingerprint); see :mod:`repro.observe.fingerprint`.
    fingerprint: str
    nesting_type: str
    rewrite: str
    strategy: str
    rows: int
    wall_seconds: float
    page_reads: int
    page_writes: int
    fuzzy_evaluations: int
    #: How the query ended: "ok", "timeout", "cancelled", or "error".
    outcome: str = "ok"
    #: True when the answer came from a degraded fallback strategy.
    degraded: bool = False
    #: Page transfers re-issued after transient faults.
    io_retries: int = 0

    @property
    def page_ios(self) -> int:
        """Total page reads plus writes for the query."""
        return self.page_reads + self.page_writes


class QueryLog:
    """A ring buffer of :class:`QueryLogEntry` with slow-query accounting."""

    def __init__(self, slow_threshold_seconds: float = 0.1, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("query log capacity must be positive")
        self.slow_threshold_seconds = slow_threshold_seconds
        self.entries: Deque[QueryLogEntry] = deque(maxlen=capacity)
        #: Totals survive ring-buffer eviction.
        self.recorded_total = 0
        self.slow_total = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        sql: str,
        metrics: Optional[QueryMetrics] = None,
        wall_seconds: float = 0.0,
        rows: int = 0,
    ) -> QueryLogEntry:
        """Append one executed query, evicting the oldest beyond the capacity."""
        reads = writes = fuzzy = retries = 0
        nesting = rewrite = strategy = ""
        outcome, degraded = "ok", False
        if metrics is not None:
            nesting = metrics.nesting_type or ""
            rewrite = metrics.rewrite or ""
            strategy = metrics.strategy or ""
            outcome = getattr(metrics, "outcome", "ok")
            degraded = bool(getattr(metrics, "degraded", False))
            if metrics.stats is not None:
                total = metrics.stats.total
                reads, writes = total.page_reads, total.page_writes
                fuzzy = total.fuzzy_evaluations
                retries = total.io_retries
        canonical = canonicalize_sql(str(sql))
        entry = QueryLogEntry(
            sql=canonical,
            fingerprint=fingerprint(canonical).id,
            nesting_type=nesting,
            rewrite=rewrite,
            strategy=strategy,
            rows=rows,
            wall_seconds=wall_seconds,
            page_reads=reads,
            page_writes=writes,
            fuzzy_evaluations=fuzzy,
            outcome=outcome,
            degraded=degraded,
            io_retries=retries,
        )
        self.entries.append(entry)
        self.recorded_total += 1
        if entry.wall_seconds >= self.slow_threshold_seconds:
            self.slow_total += 1
        return entry

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def slow(self) -> List[QueryLogEntry]:
        """Retained entries at or above the slow-query threshold, slowest first."""
        return sorted(
            (e for e in self.entries if e.wall_seconds >= self.slow_threshold_seconds),
            key=lambda e: e.wall_seconds,
            reverse=True,
        )

    def by_fingerprint(self) -> Dict[str, List[QueryLogEntry]]:
        """Retained entries grouped by statement fingerprint.

        The grouping a ``pg_stat_statements`` view needs: the same
        statement with different literal bindings lands in one group.
        """
        out: Dict[str, List[QueryLogEntry]] = {}
        for entry in self.entries:
            out.setdefault(entry.fingerprint, []).append(entry)
        return out

    def summarize(self, top: int = 5) -> str:
        """A workload report: totals, per-strategy and per-fingerprint
        rollups, slowest queries."""
        lines = [
            f"query log: {self.recorded_total} recorded "
            f"({len(self.entries)} retained), {self.slow_total} slow "
            f"(>= {self.slow_threshold_seconds * 1000.0:.0f}ms)"
        ]
        by_strategy: Counter = Counter()
        wall_by_strategy: Counter = Counter()
        for entry in self.entries:
            key = entry.strategy or "(unknown)"
            by_strategy[key] += 1
            wall_by_strategy[key] += entry.wall_seconds
        for key, n in by_strategy.most_common():
            mean_ms = 1000.0 * wall_by_strategy[key] / n
            lines.append(f"  {key}: {n} queries, mean {mean_ms:.2f}ms")
        outcomes: Counter = Counter(e.outcome for e in self.entries)
        degraded = sum(1 for e in self.entries if e.degraded)
        retries = sum(e.io_retries for e in self.entries)
        if degraded or retries or set(outcomes) - {"ok"}:
            rollup = " ".join(f"{k}={outcomes[k]}" for k in sorted(outcomes))
            lines.append(
                f"outcomes: {rollup} (degraded={degraded}, io_retries={retries})"
            )
        groups = sorted(
            self.by_fingerprint().items(),
            key=lambda kv: (sum(e.wall_seconds for e in kv[1]), len(kv[1])),
            reverse=True,
        )[:top]
        if groups:
            lines.append(f"top {len(groups)} statements by total wall time:")
            for fp, entries in groups:
                total_ms = 1000.0 * sum(e.wall_seconds for e in entries)
                ios = sum(e.page_ios for e in entries)
                sql = entries[-1].sql
                sql = sql if len(sql) <= 60 else sql[:57] + "..."
                lines.append(
                    f"  {fp}  n={len(entries)}  total={total_ms:.2f}ms  "
                    f"ios={ios}  {sql}"
                )
        slowest = sorted(
            self.entries, key=lambda e: e.wall_seconds, reverse=True
        )[:top]
        if slowest:
            lines.append(f"slowest {len(slowest)}:")
            for entry in slowest:
                sql = entry.sql if len(entry.sql) <= 72 else entry.sql[:69] + "..."
                lines.append(
                    f"  {entry.wall_seconds * 1000.0:8.2f}ms  rows={entry.rows}  "
                    f"ios={entry.page_ios}  {sql}"
                )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
