"""Statement canonicalization and query fingerprinting.

One normalizer, three consumers: the plan cache keys entries on
:func:`canonicalize_sql` (whitespace collapsed, literals preserved —
``'very  tall'`` and ``'very tall'`` are different linguistic terms), the
query log stores the same canonical text, and workload analytics group on
:func:`fingerprint_sql` — a stable short id of the *statement template*,
where every literal and ``?`` placeholder collapses to ``?``.  Two
executions of the same statement shape with different constants (or
different prepared-statement bindings) therefore share a fingerprint,
which is what lets ``\\top``, the flight recorder, and the query log
aggregate a workload by statement identity instead of by raw text.

The split matters: the plan cache must *not* conflate different literals
(a grouped anti-join bakes its comparison values into the compiled
predicate), while workload analytics must.  Both behaviours share the
same scanner so they can never disagree about what counts as a literal.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Hex digits of the SHA-256 template digest kept as the fingerprint id.
FINGERPRINT_HEX_DIGITS = 12


def canonicalize_sql(text: str) -> str:
    """Collapse insignificant whitespace so equivalent texts share a key.

    Runs of whitespace *outside* string literals become single spaces and
    leading/trailing whitespace is dropped; quoted literals are copied
    verbatim.  Keyword case is left alone — the lexer is case-insensitive
    for keywords but identifiers and linguistic terms are data.
    """
    out = []
    pending_space = False
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            pending_space = True
            i += 1
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        if ch in "'\"":
            end = text.find(ch, i + 1)
            end = n - 1 if end == -1 else end
            out.append(text[i:end + 1])
            i = end + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def statement_template(text: str) -> str:
    """The canonical text with every literal replaced by ``?``.

    Quoted strings and numeric literals become ``?``; numbers embedded in
    identifiers (``R1.K``) are left alone, as are existing ``?``
    placeholders — so a prepared statement template and any statement
    executing it with inline constants render identically.
    """
    canonical = canonicalize_sql(text)
    out = []
    i, n = 0, len(canonical)
    while i < n:
        ch = canonical[i]
        if ch in "'\"":
            end = canonical.find(ch, i + 1)
            end = n - 1 if end == -1 else end
            out.append("?")
            i = end + 1
            continue
        if ch.isdigit() and not (out and (out[-1].isalnum() or out[-1] in "_?")):
            j = i
            while j < n and (canonical[j].isdigit() or canonical[j] == "."):
                j += 1
            # Exponent tail of scientific notation (1e-3, 2.5E+7).
            if j < n and canonical[j] in "eE":
                k = j + 1
                if k < n and canonical[k] in "+-":
                    k += 1
                if k < n and canonical[k].isdigit():
                    j = k
                    while j < n and canonical[j].isdigit():
                        j += 1
            out.append("?")
            i = j
            continue
        out.append(ch)
        i += 1
    return "".join(out)


@dataclass(frozen=True)
class Fingerprint:
    """A statement identity: the short id and the template it digests."""

    id: str
    template: str


def fingerprint(text: str) -> Fingerprint:
    """The :class:`Fingerprint` of one statement text."""
    template = statement_template(text)
    digest = hashlib.sha256(template.encode("utf-8")).hexdigest()
    return Fingerprint(digest[:FINGERPRINT_HEX_DIGITS], template)


def fingerprint_sql(text: str) -> str:
    """Just the fingerprint id of one statement text."""
    return fingerprint(text).id


__all__ = [
    "FINGERPRINT_HEX_DIGITS",
    "Fingerprint",
    "canonicalize_sql",
    "fingerprint",
    "fingerprint_sql",
    "statement_template",
]
