"""The :class:`QueryMetrics` collector.

One collector instance accompanies one query execution.  It gathers

* per-operator counters (rows in/out, degree-threshold prunes, inclusive
  wall time) keyed by operator identity;
* external-sort shape (initial runs, merge passes) per sort;
* buffer-pool hits and misses (reported by a
  :class:`~repro.storage.buffer.BufferPool` carrying the collector);
* a page-access trace from the simulated disk (via :meth:`watch_disk`),
  tagged with the :class:`~repro.storage.stats.OperationStats` phase that
  was active at access time — this is what lets tests assert the paper's
  locality claim ("a page of S is never re-read once the merge scan
  passes it") page by page;
* span-style wall-clock timings (:meth:`span`);
* which unnest rewrite fired and which execution strategy ran.

Everything is plain data; rendering lives in :mod:`repro.observe.explain`.
"""

from __future__ import annotations

import time
from collections import Counter, OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..storage.stats import OperationStats


@dataclass
class OperatorMetrics:
    """Counters for one plan operator (or one storage-level executor).

    ``wall_seconds`` is *inclusive*: time spent producing this operator's
    stream includes time spent pulling from its children.
    """

    label: str
    rows_in: int = 0
    rows_out: int = 0
    prunes: int = 0  # tuples dropped because their degree fell to/below the bar
    wall_seconds: float = 0.0


@dataclass
class SortMetrics:
    """Shape of one external sort: how many runs, how many merge passes."""

    source: str
    attribute: str
    tuples: int = 0
    runs: int = 0
    merge_passes: int = 0
    output: str = ""


@dataclass
class BufferMetrics:
    """Buffer-pool outcome counts.

    ``re_fetches`` counts misses for pages that had been fetched before —
    the locality violations the paper argues the merge join never incurs
    on the inner relation.
    """

    hits: int = 0
    misses: int = 0
    re_fetches: int = 0

    @property
    def accesses(self) -> int:
        """Total buffer lookups (hits plus misses)."""
        return self.hits + self.misses


@dataclass(frozen=True)
class PageAccess:
    """One traced page transfer."""

    kind: str  # "read" | "write"
    file: str
    index: int
    phase: str


@dataclass
class StepMetrics:
    """One pipeline step of an unnested plan (temp relation, final query)."""

    name: str
    rows_out: int = 0
    wall_seconds: float = 0.0


@dataclass
class PartitionMetrics:
    """One range partition of a parallel sort + merge-join.

    ``outer_tuples``/``inner_tuples`` count the partition's inputs *after*
    replication (the inner side's overlap band appears in every adjacent
    partition it reaches), so their sum across partitions can legitimately
    exceed the inner relation's cardinality.  ``stats`` is the worker's own
    :class:`~repro.storage.stats.OperationStats` ledger — the per-partition
    response times the parallel cost model takes its ``max`` over.
    """

    index: int
    lower: Optional[object] = None
    upper: Optional[object] = None
    outer_tuples: int = 0
    inner_tuples: int = 0
    outer_pages: int = 0
    inner_pages: int = 0
    rows_out: int = 0
    stats: Optional[OperationStats] = None
    #: Replica failovers this task performed (shard tasks only; range
    #: partitions have no replicas and leave it 0).
    failovers: int = 0


class QueryMetrics:
    """Collector threaded through one query execution (strictly opt-in)."""

    def __init__(self):
        self.operators: "OrderedDict[int, OperatorMetrics]" = OrderedDict()
        self._nodes: Dict[int, object] = {}
        self.sorts: List[SortMetrics] = []
        self.buffer = BufferMetrics()
        self._buffer_seen: set = set()
        self.spans: Dict[str, float] = {}
        self.steps: List[StepMetrics] = []
        self.page_trace: List[PageAccess] = []
        self.rewrite: Optional[str] = None
        self.nesting_type: Optional[str] = None
        self.strategy: Optional[str] = None
        #: Plan-cache outcome for this query: "hit", "miss",
        #: "invalidated", or None when no cache was consulted.
        self.plan_cache: Optional[str] = None
        #: True when this execution ran through a prepared statement.
        self.prepared: bool = False
        #: The :class:`OperationStats` of the run, attached by the session.
        self.stats: Optional[OperationStats] = None
        #: True when execution fell back to a degraded strategy (e.g. a
        #: merge-join spill hit :class:`~repro.errors.DiskFullError` and
        #: the nested loop produced the answer instead).
        self.degraded: bool = False
        #: Human-readable reason for the degradation, if any.
        self.degraded_reason: Optional[str] = None
        #: How the query ended: "ok", "timeout", "cancelled", or "error".
        self.outcome: str = "ok"
        #: Worker budget the query ran with (1 = serial; 0 = the executor
        #: never stamped a budget, e.g. a storage-level strategy).
        self.parallel_workers: int = 0
        #: Per-partition counters when the partitioned join path ran.
        self.partitions: List[PartitionMetrics] = []
        #: Shard budget the query ran with (0 = the session had no
        #: sharded storage or the executor never stamped one).
        self.requested_shards: int = 0
        #: Per-shard counters when the scatter-gather join path ran (the
        #: same shape as :attr:`partitions` — shards *are* durable
        #: partitions).
        self.shards: List[PartitionMetrics] = []
        #: Replica failovers performed by shard tasks during this query.
        self.shard_failovers: int = 0
        #: Per-join q-errors of the executed plan (estimate vs measured
        #: rows), stamped by the session when a flat plan ran under a
        #: collector.  Pure arithmetic over counters already gathered —
        #: no extra I/O — and the input of the registry's q-error drift
        #: signal.
        self.q_errors: List[float] = []
        #: True when mid-query re-planning changed how an edge executed
        #: (merge-join ↔ nested-loop, or a workers adjustment).
        self.adapted: bool = False
        #: Human-readable reason for the last adaptation, if any.
        self.adapt_reason: Optional[str] = None
        #: Join edges that re-costed themselves mid-query (each one past
        #: the q-error threshold, whether or not the plan changed).
        self.replans: int = 0

    # ------------------------------------------------------------------
    # Parallel / sharded execution
    # ------------------------------------------------------------------
    def record_partition(self, partition: "PartitionMetrics") -> None:
        """Attach one partition's counters (coordinator-side, in order)."""
        self.partitions.append(partition)

    def record_shard(self, shard: "PartitionMetrics") -> None:
        """Attach one shard task's counters (coordinator-side, in order)."""
        self.shards.append(shard)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------
    def op(self, operator: object, label: Optional[str] = None) -> OperatorMetrics:
        """The (created-on-first-use) counters for ``operator``.

        Keys are object identities; the operator itself is retained so a
        later render pass can match counters back to plan nodes.
        """
        key = id(operator)
        entry = self.operators.get(key)
        if entry is None:
            if label is None:
                describe = getattr(operator, "describe", None)
                label = describe() if callable(describe) else type(operator).__name__
            entry = OperatorMetrics(label)
            self.operators[key] = entry
            self._nodes[key] = operator
        return entry

    def for_node(self, operator: object) -> Optional[OperatorMetrics]:
        """The per-operator counters for ``operator``, or ``None`` if never touched."""
        return self.operators.get(id(operator))

    def iter_nodes(self) -> Iterator[Tuple[object, OperatorMetrics]]:
        """``(operator, counters)`` pairs in first-touch order."""
        for key, om in self.operators.items():
            yield self._nodes.get(key), om

    def stream(self, operator: object, iterator: Iterator) -> Iterator:
        """Wrap an operator's tuple stream, counting rows and wall time."""
        om = self.op(operator)
        clock = time.perf_counter
        while True:
            started = clock()
            try:
                item = next(iterator)
            except StopIteration:
                om.wall_seconds += clock() - started
                return
            om.wall_seconds += clock() - started
            om.rows_out += 1
            yield item

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str):
        """Time a region of the execution under ``name`` (re-entrant sum)."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - started
            self.spans[name] = self.spans.get(name, 0.0) + elapsed

    # ------------------------------------------------------------------
    # Storage-layer reporting
    # ------------------------------------------------------------------
    def record_sort(self, sort: SortMetrics) -> None:
        """Attach the metrics of one finished external sort."""
        self.sorts.append(sort)

    def record_buffer(self, hit: bool, file: str, index: int) -> None:
        """Called by a :class:`BufferPool` carrying this collector."""
        key = (file, index)
        if hit:
            self.buffer.hits += 1
        else:
            self.buffer.misses += 1
            if key in self._buffer_seen:
                self.buffer.re_fetches += 1
        self._buffer_seen.add(key)

    def record_page_access(self, kind: str, file: str, index: int, phase: str) -> None:
        """Append one page-granularity access to the locality trace."""
        self.page_trace.append(PageAccess(kind, file, index, phase))

    @contextmanager
    def watch_disk(self, disk):
        """Trace every page transfer of ``disk`` while the context is open.

        Accesses are tagged with the phase of the disk's *active* stats
        object, so the trace can be sliced per phase (sort/join/...).
        """

        def observer(kind: str, file: str, index: int) -> None:
            self.record_page_access(kind, file, index, disk.stats.current_phase)

        disk.add_observer(observer)
        try:
            yield self
        finally:
            disk.remove_observer(observer)

    # ------------------------------------------------------------------
    # Trace analysis
    # ------------------------------------------------------------------
    def page_reads(self, file: str, phase: Optional[str] = None) -> Counter:
        """Per-page read counts for ``file`` (optionally one phase only)."""
        counts: Counter = Counter()
        for access in self.page_trace:
            if access.kind != "read" or access.file != file:
                continue
            if phase is not None and access.phase != phase:
                continue
            counts[access.index] += 1
        return counts

    def reread_pages(self, file: str, phase: Optional[str] = None) -> List[int]:
        """Pages of ``file`` read more than once — locality violations."""
        return sorted(
            index for index, n in self.page_reads(file, phase).items() if n > 1
        )

    def buffer_replay(
        self, capacity: int, phase: Optional[str] = None
    ) -> BufferMetrics:
        """Replay the read trace through an LRU pool of ``capacity`` frames.

        The join algorithms read through the accounted simulated disk, not
        through a :class:`BufferPool`; replaying the recorded access
        sequence against an LRU model of the same budget yields the
        hit/miss/re-fetch profile a pool of that size *would* have had —
        which is exactly what the paper's buffer-locality claims are
        about.
        """
        metrics = BufferMetrics()
        frames: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        seen: set = set()
        for access in self.page_trace:
            if access.kind != "read":
                continue
            if phase is not None and access.phase != phase:
                continue
            key = (access.file, access.index)
            if key in frames:
                metrics.hits += 1
                frames.move_to_end(key)
            else:
                metrics.misses += 1
                if key in seen:
                    metrics.re_fetches += 1
                while len(frames) >= capacity:
                    frames.popitem(last=False)
                frames[key] = None
            seen.add(key)
        return metrics

    # ------------------------------------------------------------------
    # Pipeline steps
    # ------------------------------------------------------------------
    def record_step(self, name: str, rows_out: int, wall_seconds: float) -> None:
        """Record one pipeline step's output rows and wall time."""
        self.steps.append(StepMetrics(name, rows_out, wall_seconds))

    def __repr__(self) -> str:
        return (
            f"QueryMetrics(operators={len(self.operators)}, "
            f"sorts={len(self.sorts)}, buffer={self.buffer.accesses} accesses, "
            f"trace={len(self.page_trace)} transfers)"
        )
