"""The workload flight recorder: a bounded ring of per-query events.

Where :class:`~repro.observe.registry.MetricsRegistry` keeps cumulative
counters and :class:`~repro.observe.querylog.QueryLog` keeps a human
summary, the flight recorder keeps the *structured* record a fleet
operator replays after the fact: one :class:`QueryEvent` per executed
statement — fingerprint, strategy, plan-cache outcome, worker budget,
per-shard I/O and failovers, partition counts, degraded flag, join
q-errors, and the typed error name on failure — in a bounded ring,
exportable as JSON Lines.

Attach one by assigning ``session.recorder`` (or ``db.recorder``); the
session records every query for you, on the query boundary only, so the
zero-overhead-when-off contract is untouched: with no recorder attached
no event is ever built.

Per-fingerprint aggregation (:meth:`FlightRecorder.top`) answers the
fleet-level question the ROADMAP's adaptive-optimization item starts
from: *which statement shapes dominate cost* — count, total modelled
cost, page I/O, and p50/p95 latency per statement template, surfaced in
the shell as ``\\top``.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..storage.costs import CostModel, PAPER_1992
from .fingerprint import canonicalize_sql, fingerprint
from .metrics import QueryMetrics


@dataclass(frozen=True)
class ShardIO:
    """One shard task's contribution to a query, as recorded in the event."""

    index: int
    rows: int
    page_reads: int
    page_writes: int
    failovers: int


@dataclass(frozen=True)
class QueryEvent:
    """One executed statement, fully structured for machine consumption."""

    seq: int
    fingerprint: str
    template: str
    sql: str
    nesting: str
    rewrite: str
    strategy: str
    plan_cache: str
    prepared: bool
    outcome: str
    error: str
    degraded: bool
    degraded_reason: str
    workers: int
    partitions: int
    shards: Tuple[ShardIO, ...]
    shard_failovers: int
    q_errors: Tuple[float, ...]
    rows: int
    wall_seconds: float
    modelled_seconds: float
    page_reads: int
    page_writes: int
    crisp_comparisons: int
    fuzzy_evaluations: int
    tuple_moves: int
    io_retries: int

    def to_json(self) -> str:
        """The event as one JSON line (stable key order)."""
        payload = asdict(self)
        payload["shards"] = [asdict(sh) for sh in self.shards]
        payload["q_errors"] = list(self.q_errors)
        return json.dumps(payload, sort_keys=True)


@dataclass
class FingerprintSummary:
    """Per-statement-template aggregate over the retained events."""

    fingerprint: str
    template: str
    count: int = 0
    errors: int = 0
    degraded: int = 0
    rows: int = 0
    page_ios: int = 0
    total_modelled_seconds: float = 0.0
    total_wall_seconds: float = 0.0
    walls: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Nearest-rank latency percentile (seconds) over retained events."""
        if not self.walls:
            return 0.0
        ordered = sorted(self.walls)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]


class FlightRecorder:
    """A thread-safe bounded ring of :class:`QueryEvent`."""

    def __init__(self, capacity: int = 2048, cost_model: CostModel = PAPER_1992):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.cost_model = cost_model
        self._events: Deque[QueryEvent] = deque(maxlen=capacity)
        #: Totals survive ring eviction.
        self.recorded_total = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        sql: str,
        metrics: Optional[QueryMetrics] = None,
        wall_seconds: float = 0.0,
        rows: int = 0,
        error: str = "",
    ) -> QueryEvent:
        """Build and append one event from a finished collector.

        The collector is only read, never mutated — same discipline as
        the registry fold, so a caller-supplied ``QueryMetrics`` stays
        usable afterwards.
        """
        canonical = canonicalize_sql(str(sql))
        printed = fingerprint(canonical)
        reads = writes = crisp = fuzzy = moves = retries = 0
        nesting = rewrite = strategy = cache = ""
        outcome, prepared, degraded, reason = "ok", False, False, ""
        workers = partitions = failovers = 0
        shard_ios: Tuple[ShardIO, ...] = ()
        q_errors: Tuple[float, ...] = ()
        modelled = 0.0
        if metrics is not None:
            nesting = metrics.nesting_type or ""
            rewrite = metrics.rewrite or ""
            strategy = metrics.strategy or ""
            cache = metrics.plan_cache or ""
            prepared = bool(metrics.prepared)
            outcome = getattr(metrics, "outcome", "ok")
            degraded = bool(metrics.degraded)
            reason = metrics.degraded_reason or ""
            workers = getattr(metrics, "parallel_workers", 0)
            partitions = len(getattr(metrics, "partitions", ()))
            failovers = getattr(metrics, "shard_failovers", 0)
            q_errors = tuple(getattr(metrics, "q_errors", ()))
            shard_ios = tuple(
                ShardIO(
                    index=sh.index,
                    rows=sh.rows_out,
                    page_reads=sh.stats.total.page_reads if sh.stats is not None else 0,
                    page_writes=sh.stats.total.page_writes if sh.stats is not None else 0,
                    failovers=getattr(sh, "failovers", 0),
                )
                for sh in getattr(metrics, "shards", ())
            )
            if metrics.stats is not None:
                total = metrics.stats.total
                reads, writes = total.page_reads, total.page_writes
                crisp, fuzzy = total.crisp_comparisons, total.fuzzy_evaluations
                moves, retries = total.tuple_moves, total.io_retries
                modelled = self.cost_model.response_time(metrics.stats)
        with self._lock:
            self.recorded_total += 1
            event = QueryEvent(
                seq=self.recorded_total,
                fingerprint=printed.id,
                template=printed.template,
                sql=canonical,
                nesting=nesting,
                rewrite=rewrite,
                strategy=strategy,
                plan_cache=cache,
                prepared=prepared,
                outcome=outcome,
                error=error,
                degraded=degraded,
                degraded_reason=reason,
                workers=workers,
                partitions=partitions,
                shards=shard_ios,
                shard_failovers=failovers,
                q_errors=q_errors,
                rows=rows,
                wall_seconds=wall_seconds,
                modelled_seconds=modelled,
                page_reads=reads,
                page_writes=writes,
                crisp_comparisons=crisp,
                fuzzy_evaluations=fuzzy,
                tuple_moves=moves,
                io_retries=retries,
            )
            self._events.append(event)
        return event

    # ------------------------------------------------------------------
    # Views and export
    # ------------------------------------------------------------------
    def events(self, last: Optional[int] = None) -> List[QueryEvent]:
        """The retained events in arrival order (optionally the last N)."""
        with self._lock:
            out = list(self._events)
        return out if last is None else out[-max(0, last):]

    def to_jsonl(self, last: Optional[int] = None) -> str:
        """The retained events as JSON Lines text (one event per line)."""
        events = self.events(last)
        return "\n".join(event.to_json() for event in events) + ("\n" if events else "")

    def dump_jsonl(self, path) -> int:
        """Write every retained event to ``path``; returns the event count."""
        events = self.events()
        with open(path, "w") as handle:
            for event in events:
                handle.write(event.to_json())
                handle.write("\n")
        return len(events)

    # ------------------------------------------------------------------
    # Per-fingerprint aggregation
    # ------------------------------------------------------------------
    def by_fingerprint(self) -> Dict[str, FingerprintSummary]:
        """Aggregates per statement template over the retained events."""
        out: Dict[str, FingerprintSummary] = {}
        for event in self.events():
            summary = out.get(event.fingerprint)
            if summary is None:
                summary = FingerprintSummary(event.fingerprint, event.template)
                out[event.fingerprint] = summary
            summary.count += 1
            summary.errors += 1 if event.outcome != "ok" else 0
            summary.degraded += 1 if event.degraded else 0
            summary.rows += event.rows
            summary.page_ios += event.page_reads + event.page_writes
            summary.total_modelled_seconds += event.modelled_seconds
            summary.total_wall_seconds += event.wall_seconds
            summary.walls.append(event.wall_seconds)
        return out

    def top(self, k: int = 10) -> List[FingerprintSummary]:
        """The top-K statement templates by total modelled cost.

        Ties (e.g. a workload where every in-memory query models to zero)
        fall back to total wall time, then to count, so the ordering stays
        meaningful on every engine.
        """
        summaries = sorted(
            self.by_fingerprint().values(),
            key=lambda s: (
                s.total_modelled_seconds, s.total_wall_seconds, s.count
            ),
            reverse=True,
        )
        return summaries[:max(0, k)]

    def render_top(self, k: int = 10) -> str:
        """The ``\\top`` report: one line per statement template."""
        summaries = self.top(k)
        lines = [
            f"flight recorder: {self.recorded_total} recorded "
            f"({len(self)} retained), top {len(summaries)} by modelled cost"
        ]
        for s in summaries:
            template = s.template if len(s.template) <= 56 else s.template[:53] + "..."
            flags = ""
            if s.degraded:
                flags += f" degraded={s.degraded}"
            if s.errors:
                flags += f" errors={s.errors}"
            lines.append(
                f"  {s.fingerprint}  n={s.count}  model={s.total_modelled_seconds:.3f}s  "
                f"ios={s.page_ios}  p50={s.percentile(0.50) * 1000.0:.2f}ms  "
                f"p95={s.percentile(0.95) * 1000.0:.2f}ms{flags}  {template}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return (
            f"FlightRecorder(recorded={self.recorded_total}, "
            f"retained={len(self._events)}/{self.capacity})"
        )


__all__ = ["FingerprintSummary", "FlightRecorder", "QueryEvent", "ShardIO"]
