"""Hierarchical span tracing, exportable as Chrome ``trace_event`` JSON.

:class:`SpanTracer` records begin/end events for named regions of a query
execution (parse / bind / rewrite / compile / sort / merge / probe /
operator streams) as a *tree*: a span opened while another is open becomes
its child.  The tree can be rendered as indented text
(:meth:`SpanTracer.render_tree`) or exported in the Chrome ``trace_event``
format (:meth:`SpanTracer.to_chrome` / :meth:`SpanTracer.export`), which
``chrome://tracing`` and Perfetto load directly.

Like the :class:`~repro.observe.metrics.QueryMetrics` collector, tracing
is strictly opt-in: every emission point is guarded by an
``if tracer is not None`` check (or routed through :func:`maybe_span`,
which degrades to a no-op context), and with no tracer attached the
operators hand back their raw generators.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: ``ph`` value of a Chrome "complete" event (one event = one whole span).
CHROME_COMPLETE = "X"


class Span:
    """One traced region: a name, a start/end pair, and child spans."""

    __slots__ = ("name", "start", "end", "args", "children")

    def __init__(self, name: str, start: float, args: Optional[Dict] = None):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.args = args or {}
        self.children: List["Span"] = []

    @property
    def seconds(self) -> float:
        """Duration; an unfinished span extends to its last finished child."""
        return max(0.0, self._effective_end() - self.start)

    def _effective_end(self) -> float:
        if self.end is not None:
            return self.end
        ends = [c._effective_end() for c in self.children]
        return max(ends) if ends else self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) whose name contains ``name``."""
        for span in self.walk():
            if name in span.name:
                return span
        return None

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.seconds * 1000.0:.2f}ms, {len(self.children)} children)"


class SpanTracer:
    """Builds a span tree; spans nest by the open-span stack at begin time."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin(self, name: str, **args) -> Span:
        """Open a span as a child of the innermost open span and return it."""
        span = Span(name, self._clock(), args or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span``, closing anything opened after it as well."""
        span.end = self._clock()
        # Tolerate out-of-order ends (an abandoned generator, say): close
        # everything opened after ``span`` too, so the stack stays sane.
        if span in self._stack:
            while self._stack:
                top = self._stack.pop()
                if top.end is None:
                    top.end = span.end
                if top is span:
                    break

    @contextmanager
    def span(self, name: str, **args):
        """Context manager: open a span around a block of work."""
        span = self.begin(name, **args)
        try:
            yield span
        finally:
            self.end(span)

    def record(self, name: str, start: float, end: float, **args) -> Span:
        """Append an already-finished span under the innermost open span.

        The tracer's open-span stack is not thread-safe, so partition
        workers cannot call :meth:`begin`/:meth:`end` concurrently.
        Instead each worker timestamps its own task with the tracer's
        clock and the *coordinator* records the completed spans after the
        gather — one span per partition task, correctly parented under
        the coordinator's open join span.
        """
        span = Span(name, start, args or None)
        span.end = end
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    def now(self) -> float:
        """The tracer's clock, for worker threads timestamping their spans."""
        return self._clock()

    def stream(self, name: str, iterator: Iterator, **args) -> Iterator:
        """Wrap a tuple stream in a span opened at first pull.

        Operator streams are pulled strictly nested (a parent's generator
        body drives its children), so the begin/end order matches the plan
        tree.
        """
        with self.span(name, **args):
            yield from iterator

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Optional[Span]:
        """First span (depth first across roots) whose name contains ``name``."""
        for span in self.walk():
            if name in span.name:
                return span
        return None

    def render_tree(self) -> str:
        """The span tree as indented text with durations."""
        lines: List[str] = []

        def emit(span: Span, depth: int) -> None:
            lines.append("  " * depth + f"{span.name}  {span.seconds * 1000.0:.2f}ms")
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Chrome trace_event export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict:
        """The trace as a Chrome ``trace_event`` JSON object.

        Every span becomes one complete (``"ph": "X"``) event; nesting is
        implied by timestamp/duration containment on the shared track,
        which is how ``chrome://tracing`` and Perfetto stack them.
        """
        pid = os.getpid()
        events = []
        for span in self.walk():
            event = {
                "name": span.name,
                "cat": "fuzzy-sql",
                "ph": CHROME_COMPLETE,
                "ts": (span.start - self._origin) * 1e6,  # microseconds
                "dur": span.seconds * 1e6,
                "pid": pid,
                "tid": 1,
            }
            if span.args:
                event["args"] = dict(span.args)
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle, indent=1)


@contextmanager
def maybe_span(tracer: Optional[SpanTracer], name: str, **args):
    """``tracer.span(name)`` when a tracer is attached, else a no-op."""
    if tracer is None:
        yield None
    else:
        with tracer.span(name, **args) as span:
            yield span
