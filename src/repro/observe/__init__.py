"""Query observability: metrics collection and plan introspection.

The paper's whole argument is quantitative — merge-join vs nested-loop
I/O counts, buffer locality, intermediate-relation sizes — so the engine
must be able to *show its work*.  This package provides

* :class:`~repro.observe.metrics.QueryMetrics` — an opt-in collector that
  every layer (operators, joins, external sort, buffer pool, simulated
  disk) reports into when one is attached to the
  :class:`~repro.engine.operators.ExecutionContext`;
* :mod:`~repro.observe.explain` — cardinality estimation and rendering of
  physical plans as indented trees, with optimizer estimates next to the
  measured counters (``EXPLAIN`` / ``EXPLAIN ANALYZE``), including the
  per-join q-error against sampled fan-outs;
* :class:`~repro.observe.trace.SpanTracer` — a hierarchical span tracer
  (parse / bind / rewrite / sort / merge / probe) exportable as Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto;
* :class:`~repro.observe.registry.MetricsRegistry` — process-lifetime
  cumulative counters plus a latency histogram, rendered in the
  Prometheus text exposition format;
* :class:`~repro.observe.querylog.QueryLog` — a bounded query log with a
  slow-query threshold and a workload summary report.

Collection is strictly opt-in: with no collector, tracer, registry, or
query log attached the hot paths run the exact same code as before
(guarded by ``if ctx.metrics is not None`` / ``if tracer is not None``).
"""

from .explain import (
    annotate_estimates,
    estimate_rows,
    q_error,
    render_plan,
    render_report,
)
from .metrics import (
    BufferMetrics,
    OperatorMetrics,
    PageAccess,
    QueryMetrics,
    SortMetrics,
)
from .querylog import QueryLog, QueryLogEntry
from .registry import Histogram, MetricsRegistry
from .trace import Span, SpanTracer, maybe_span

__all__ = [
    "BufferMetrics",
    "Histogram",
    "MetricsRegistry",
    "OperatorMetrics",
    "PageAccess",
    "QueryLog",
    "QueryLogEntry",
    "QueryMetrics",
    "SortMetrics",
    "Span",
    "SpanTracer",
    "annotate_estimates",
    "estimate_rows",
    "maybe_span",
    "q_error",
    "render_plan",
    "render_report",
]
