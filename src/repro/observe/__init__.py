"""Query observability: metrics collection and plan introspection.

The paper's whole argument is quantitative — merge-join vs nested-loop
I/O counts, buffer locality, intermediate-relation sizes — so the engine
must be able to *show its work*.  This package provides

* :class:`~repro.observe.metrics.QueryMetrics` — an opt-in collector that
  every layer (operators, joins, external sort, buffer pool, simulated
  disk) reports into when one is attached to the
  :class:`~repro.engine.operators.ExecutionContext`;
* :mod:`~repro.observe.explain` — cardinality estimation and rendering of
  physical plans as indented trees, with optimizer estimates next to the
  measured counters (``EXPLAIN`` / ``EXPLAIN ANALYZE``).

Collection is strictly opt-in: with no collector attached the hot paths
run the exact same code as before (guarded by ``if ctx.metrics is not
None`` / ``if self.metrics is not None``).
"""

from .explain import annotate_estimates, estimate_rows, render_plan, render_report
from .metrics import (
    BufferMetrics,
    OperatorMetrics,
    PageAccess,
    QueryMetrics,
    SortMetrics,
)

__all__ = [
    "BufferMetrics",
    "OperatorMetrics",
    "PageAccess",
    "QueryMetrics",
    "SortMetrics",
    "annotate_estimates",
    "estimate_rows",
    "render_plan",
    "render_report",
]
