"""Query observability: metrics collection and plan introspection.

The paper's whole argument is quantitative — merge-join vs nested-loop
I/O counts, buffer locality, intermediate-relation sizes — so the engine
must be able to *show its work*.  This package provides

* :class:`~repro.observe.metrics.QueryMetrics` — an opt-in collector that
  every layer (operators, joins, external sort, buffer pool, simulated
  disk) reports into when one is attached to the
  :class:`~repro.engine.operators.ExecutionContext`;
* :mod:`~repro.observe.explain` — cardinality estimation and rendering of
  physical plans as indented trees, with optimizer estimates next to the
  measured counters (``EXPLAIN`` / ``EXPLAIN ANALYZE``), including the
  per-join q-error against sampled fan-outs;
* :class:`~repro.observe.trace.SpanTracer` — a hierarchical span tracer
  (parse / bind / rewrite / sort / merge / probe) exportable as Chrome
  ``trace_event`` JSON for ``chrome://tracing`` / Perfetto;
* :class:`~repro.observe.registry.MetricsRegistry` — process-lifetime
  cumulative counters plus a latency histogram, rendered in the
  Prometheus text exposition format;
* :class:`~repro.observe.querylog.QueryLog` — a bounded query log with a
  slow-query threshold and a workload summary report;
* :mod:`~repro.observe.fingerprint` — the shared statement canonicalizer
  and ``pg_stat_statements``-style fingerprinting (literals → ``?``) that
  the plan cache, query log, flight recorder, and shell analytics all key
  statement identity on;
* :class:`~repro.observe.recorder.FlightRecorder` — a bounded ring of
  structured per-query events (plan summary, cache outcome, per-shard
  I/O, q-errors, typed failures) exportable as JSONL, with per-fingerprint
  top-K aggregation;
* :class:`~repro.observe.timeseries.TimeSeries` — windowed snapshots of
  registry counter deltas exposing rates (queries/s, degraded rate,
  failover rate, cache hit rate, shard skew) over time;
* :mod:`~repro.observe.health` — threshold rules over those rates folding
  into an ``ok / warn / critical`` :class:`~repro.observe.health.HealthReport`.

Collection is strictly opt-in: with no collector, tracer, registry, query
log, or recorder attached the hot paths run the exact same code as before
(guarded by ``if ctx.metrics is not None`` / ``if tracer is not None``).
"""

from .explain import (
    annotate_estimates,
    estimate_rows,
    join_q_errors,
    q_error,
    render_plan,
    render_report,
)
from .fingerprint import (
    Fingerprint,
    canonicalize_sql,
    fingerprint,
    fingerprint_sql,
    statement_template,
)
from .health import (
    HealthReport,
    HealthSignal,
    HealthThresholds,
    evaluate_health,
)
from .metrics import (
    BufferMetrics,
    OperatorMetrics,
    PageAccess,
    QueryMetrics,
    SortMetrics,
)
from .querylog import QueryLog, QueryLogEntry
from .recorder import FingerprintSummary, FlightRecorder, QueryEvent, ShardIO
from .registry import Histogram, MetricsRegistry
from .timeseries import TimeSeries, Window, lifetime_window
from .trace import Span, SpanTracer, maybe_span

__all__ = [
    "BufferMetrics",
    "Fingerprint",
    "FingerprintSummary",
    "FlightRecorder",
    "HealthReport",
    "HealthSignal",
    "HealthThresholds",
    "Histogram",
    "MetricsRegistry",
    "OperatorMetrics",
    "PageAccess",
    "QueryEvent",
    "QueryLog",
    "QueryLogEntry",
    "QueryMetrics",
    "ShardIO",
    "SortMetrics",
    "Span",
    "SpanTracer",
    "TimeSeries",
    "Window",
    "annotate_estimates",
    "canonicalize_sql",
    "estimate_rows",
    "evaluate_health",
    "fingerprint",
    "fingerprint_sql",
    "join_q_errors",
    "lifetime_window",
    "maybe_span",
    "q_error",
    "render_plan",
    "render_report",
    "statement_template",
]
