"""The cost model translating event counts into response time.

The paper reports wall-clock seconds on a 1992 SPARC/IPC; we reproduce the
*shape* of those results by charging calibrated unit costs to the counted
events.  The defaults are back-fitted to the paper's own numbers:

* Table 1 / Table 4: the nested loop performs ``n_R x n_S`` fuzzy predicate
  evaluations and the paper measures 483 s of comparison CPU at
  8,000 x 8,000 (Table 4 text) and 30,879 s total at 64,000 x 64,000
  (Table 1) — both give ~7.5 us per fuzzy evaluation;
* Table 4 text puts the merge-join's comparison CPU at 15 s for 8,000
  tuples; spread over the ~0.8 M interval-endpoint comparisons of two
  external sorts that is ~18 us per crisp comparison (an Opt-Tech library
  call, not a bare CPU instruction);
* per-tuple record handling through the 1992 library (decode/copy during
  sort runs and merges) is charged at 100 us per move;
* one 8 KB page I/O costs 25 ms: nested loop at 8 MB adds 6,144 page
  transfers = 154 s, landing its total at ~30,900 s against 30,879 s.

The same constants are then applied, unchanged, to every experiment.  One
known divergence is documented in EXPERIMENTS.md: the paper's Table 3 CPU
share also absorbs OS memory-management effects ("the jump ... is caused
by the memory management of the operating system"), which an event-count
model deliberately does not simulate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .stats import Counters, OperationStats


@dataclass(frozen=True)
class CostModel:
    """Unit costs (seconds per event)."""

    io_time: float = 0.025            # one 8 KB page read or write
    fuzzy_eval_time: float = 7.5e-6   # one d(X theta Y) evaluation
    crisp_compare_time: float = 1.8e-5  # one interval-order comparison
    tuple_move_time: float = 1.0e-4   # one tuple copy through the library

    # ------------------------------------------------------------------
    # Time assembly
    # ------------------------------------------------------------------
    def io_seconds(self, counters: Counters) -> float:
        """Seconds of I/O implied by the page counters.

        Retried page transfers (transient-fault attempts that were
        re-issued) are charged at the full page-I/O rate: the device did
        the work even though the first attempt failed, so the retry path's
        overhead shows up in modelled response time.
        """
        return (counters.page_ios + counters.io_retries) * self.io_time

    def cpu_seconds(self, counters: Counters) -> float:
        """Seconds of CPU implied by the comparison and move counters."""
        return (
            counters.fuzzy_evaluations * self.fuzzy_eval_time
            + counters.crisp_comparisons * self.crisp_compare_time
            + counters.tuple_moves * self.tuple_move_time
        )

    def response_seconds(self, counters: Counters) -> float:
        """I/O plus CPU seconds for one counter set."""
        return self.io_seconds(counters) + self.cpu_seconds(counters)

    # ------------------------------------------------------------------
    # Report helpers (the quantities the paper's tables show)
    # ------------------------------------------------------------------
    def response_time(self, stats: OperationStats) -> float:
        """Modelled response time over all phases of ``stats``."""
        return self.response_seconds(stats.total)

    def cpu_fraction(self, stats: OperationStats) -> float:
        """Table 3 row 1: CPU time as a fraction of response time."""
        total = self.response_seconds(stats.total)
        if total == 0.0:
            return 0.0
        return self.cpu_seconds(stats.total) / total

    def phase_fraction(self, stats: OperationStats, phase: str) -> float:
        """Table 3 row 2: one phase's share (CPU + I/O) of response time."""
        total = self.response_seconds(stats.total)
        if total == 0.0:
            return 0.0
        if phase not in stats.phases:
            return 0.0
        return self.response_seconds(stats.phases[phase]) / total

    # ------------------------------------------------------------------
    # Access-path estimates (planner inputs, same unit costs)
    # ------------------------------------------------------------------
    def seq_scan_seconds(self, n_pages: int, n_tuples: int) -> float:
        """Estimated cost of a full scan with one pushed-down fuzzy filter."""
        return n_pages * self.io_time + n_tuples * self.fuzzy_eval_time

    def index_scan_seconds(self, index_pages: int, candidates: int, data_pages: int) -> float:
        """Estimated cost of an index range scan.

        ``index_pages`` come from the fence-key directory, ``candidates``
        is the posting count on those pages (each costs one crisp overlap
        test plus one kernel-computed fuzzy degree), and ``data_pages``
        bounds the row fetches for qualifying entries.
        """
        return (index_pages + data_pages) * self.io_time + candidates * (
            self.fuzzy_eval_time + self.crisp_compare_time
        )

    def sort_merge_join_seconds(
        self,
        left_pages: int,
        right_pages: int,
        left_tuples: int,
        right_tuples: int,
        fanout: float = 8.0,
    ) -> float:
        """Estimated cost of the sort-based extended merge-join.

        Both inputs pay an external sort (write + re-read of every page,
        ``n log n`` interval comparisons) before the window merge, which
        examines ``fanout`` window tuples per outer tuple.
        """
        from math import log2

        sort_io = 4.0 * (left_pages + right_pages) * self.io_time
        sort_cpu = sum(
            n * log2(max(n, 2)) for n in (left_tuples, right_tuples)
        ) * self.crisp_compare_time
        join_io = (left_pages + right_pages) * self.io_time
        join_cpu = (
            (left_tuples + right_tuples) * self.crisp_compare_time
            + left_tuples * fanout * self.fuzzy_eval_time
        )
        return sort_io + sort_cpu + join_io + join_cpu

    def nested_loop_join_seconds(
        self,
        left_pages: int,
        right_pages: int,
        left_tuples: int,
        right_tuples: int,
    ) -> float:
        """Estimated cost of the block nested-loop join.

        One pass over the outer plus one inner pass per outer page, and a
        fuzzy evaluation for every tuple pair.  No sorts — which is why
        the adaptive re-planner picks it when an input turns out far
        smaller than estimated: the sort-merge path's fixed sorting cost
        dominates tiny inputs.
        """
        io = (left_pages + max(1, left_pages) * right_pages) * self.io_time
        cpu = left_tuples * right_tuples * self.fuzzy_eval_time
        return io + cpu

    def index_merge_join_seconds(
        self,
        index_pages: int,
        entries: int,
        data_pages: int,
        fanout: float = 8.0,
    ) -> float:
        """Estimated cost of the index-assisted merge-join.

        The indexes already hold the interval order, so there is no sort:
        the window merge runs over ``entries`` postings from
        ``index_pages`` index pages, and only surviving pairs (``fanout``
        per outer entry, before threshold pruning) fetch ``data_pages``
        worth of rows and pay full pair-degree evaluations.
        """
        merge_cpu = 3.0 * entries * self.crisp_compare_time
        survivors = (entries / 2.0) * fanout
        return (
            (index_pages + data_pages) * self.io_time
            + merge_cpu
            + survivors * self.fuzzy_eval_time
        )

    # ------------------------------------------------------------------
    # Intra-query parallelism
    # ------------------------------------------------------------------
    def parallel_response_time(self, stats, partition_stats) -> float:
        """Modelled response time of a partitioned execution.

        ``stats`` is the coordinator's merged ledger (its own partitioning
        overhead *plus* every worker's counters, folded in after the
        gather); ``partition_stats`` are the workers' individual ledgers.
        Workers run concurrently, so their modelled time enters as the
        *maximum* over partitions rather than the sum:

            T_parallel = T(total) - sum_i T(worker_i) + max_i T(worker_i)

        i.e. the serial coordinator work (partitioning overhead, sampling,
        scans, splices) plus the slowest partition.  With an empty
        ``partition_stats`` this degrades to plain :meth:`response_time`.
        """
        total = self.response_time(stats)
        if not partition_stats:
            return total
        worker_times = [self.response_time(ws) for ws in partition_stats]
        return total - sum(worker_times) + max(worker_times)

    def sharded_response_time(self, stats, shard_stats) -> float:
        """Modelled response time of a scatter-gather sharded execution.

        Same shape as :meth:`parallel_response_time` — shard tasks run
        concurrently on independent disks, so the modelled time is the
        coordinator's serial share plus the slowest shard:

            T_sharded = T(total) - sum_i T(shard_i) + max_i T(shard_i)

        ``shard_stats`` are the per-shard worker ledgers (the ``stats``
        field of each shard's
        :class:`~repro.observe.metrics.PartitionMetrics`).  With no
        shards this degrades to plain :meth:`response_time`.
        """
        return self.parallel_response_time(stats, shard_stats)


#: The calibrated model used by all paper-reproduction benchmarks.
PAPER_1992 = CostModel()

#: A present-day reference point (NVMe-class I/O, lean comparisons) used by
#: the equality-indicator ablation: unlike the 1992 library — whose record
#: comparisons were as expensive as fuzzy evaluations — a modern system
#: gains from replacing a fuzzy evaluation with a crisp interval test.
MODERN = CostModel(
    io_time=1.0e-4,
    fuzzy_eval_time=2.0e-6,
    crisp_compare_time=5.0e-8,
    tuple_move_time=2.0e-7,
)
