"""An LRU buffer pool over the simulated disk.

The paper's experiments give both join methods a fixed buffer budget
(2 MB = 256 pages of 8 KB); the nested-loop join deliberately partitions it
as "one page for the inner relation, the rest for the outer".  The pool
provides pinning so join algorithms can hold working pages resident, and it
tracks hits/misses so tests can assert the paper's locality arguments
(e.g. a page of S never being re-read once the merge scan passes it).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Tuple

from ..errors import ResourceExhaustedError
from .disk import SimulatedDisk
from .page import Page

FrameKey = Tuple[str, int]


class BufferExhaustedError(ResourceExhaustedError):
    """All frames are pinned and a new page was requested."""


class BufferPool:
    """A page cache with LRU replacement and pin counts.

    All operations take the pool's internal lock, so one pool may be
    shared by concurrent sessions; under contention prefer a
    :class:`StripedBufferManager`, which shards frames across independent
    pools so unrelated pages never serialize on one lock.
    """

    def __init__(self, disk: SimulatedDisk, capacity: int, metrics=None):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[FrameKey, Page]" = OrderedDict()
        self._pins: Dict[FrameKey, int] = {}
        self.hits = 0
        self.misses = 0
        #: Optional :class:`~repro.observe.metrics.QueryMetrics` collector;
        #: hits and misses are reported per page so locality claims can be
        #: checked (a re-fetch = a page missed after having been resident).
        self.metrics = metrics
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_page(self, file: str, index: int, pin: bool = False) -> Page:
        """Pin and return a page, reading through the LRU pool on a miss."""
        key = (file, index)
        with self._lock:
            if key in self._frames:
                self.hits += 1
                if self.metrics is not None:
                    self.metrics.record_buffer(True, file, index)
                self._frames.move_to_end(key)
            else:
                self.misses += 1
                if self.metrics is not None:
                    self.metrics.record_buffer(False, file, index)
                self._evict_until_free()
                self._frames[key] = self.disk.read_page(file, index)
            if pin:
                self._pins[key] = self._pins.get(key, 0) + 1
            return self._frames[key]

    def unpin(self, file: str, index: int) -> None:
        """Release one pin on a buffered page."""
        key = (file, index)
        with self._lock:
            count = self._pins.get(key, 0)
            if count <= 1:
                self._pins.pop(key, None)
            else:
                self._pins[key] = count - 1

    def unpin_all(self) -> None:
        """Release every pin held on every frame."""
        with self._lock:
            self._pins.clear()

    def resident(self, file: str, index: int) -> bool:
        """Whether the page currently occupies a frame."""
        return (file, index) in self._frames

    def drop(self, file: str, index: int) -> None:
        """Release a frame without further use (the merge scan's page retire)."""
        key = (file, index)
        with self._lock:
            self._pins.pop(key, None)
            self._frames.pop(key, None)

    def flush(self) -> None:
        """Forget all cached frames (pages here are read-only images)."""
        with self._lock:
            self._frames.clear()
            self._pins.clear()

    @property
    def in_use(self) -> int:
        """Number of currently pinned frames."""
        with self._lock:
            return sum(1 for count in self._pins.values() if count > 0)

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _evict_until_free(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = None
            for key in self._frames:  # OrderedDict iterates LRU-first
                if self._pins.get(key, 0) == 0:
                    victim = key
                    break
            if victim is None:
                raise BufferExhaustedError(
                    f"all {self.capacity} frames pinned; cannot load a new page"
                )
            del self._frames[victim]


class StripedBufferManager:
    """A lock-striped buffer manager for concurrent sessions.

    Frames are sharded over ``stripes`` independent :class:`BufferPool`
    instances by page-key hash, so threads touching different pages
    contend on different locks.  The total frame budget is divided
    evenly; each stripe gets at least one frame.  The manager exposes the
    same read-side API as a single pool (``get_page``/``unpin``/
    ``resident``/``drop``/``flush``) plus aggregate hit/miss counters, so
    existing callers can swap one in unchanged.
    """

    def __init__(self, disk: SimulatedDisk, capacity: int, stripes: int = 8, metrics=None):
        if stripes < 1:
            raise ValueError("need at least one stripe")
        stripes = min(stripes, capacity)
        per_stripe = max(1, capacity // stripes)
        self.disk = disk
        self.capacity = capacity
        self.stripes: List[BufferPool] = [
            BufferPool(disk, per_stripe, metrics=metrics) for _ in range(stripes)
        ]

    def _stripe(self, file: str, index: int) -> BufferPool:
        return self.stripes[hash((file, index)) % len(self.stripes)]

    def get_page(self, file: str, index: int, pin: bool = False) -> Page:
        """Pin and return a page through its stripe's pool."""
        return self._stripe(file, index).get_page(file, index, pin=pin)

    def unpin(self, file: str, index: int) -> None:
        """Release one pin via the owning stripe."""
        self._stripe(file, index).unpin(file, index)

    def unpin_all(self) -> None:
        """Release every pin in every stripe."""
        for pool in self.stripes:
            pool.unpin_all()

    def resident(self, file: str, index: int) -> bool:
        """Whether the page is resident in its stripe."""
        return self._stripe(file, index).resident(file, index)

    def drop(self, file: str, index: int) -> None:
        """Retire one page's frame in its owning stripe."""
        self._stripe(file, index).drop(file, index)

    def flush(self) -> None:
        """Forget every stripe's cached frames."""
        for pool in self.stripes:
            pool.flush()

    @property
    def hits(self) -> int:
        """Aggregate buffer hits across all stripes."""
        return sum(pool.hits for pool in self.stripes)

    @property
    def misses(self) -> int:
        """Aggregate buffer misses across all stripes."""
        return sum(pool.misses for pool in self.stripes)

    @property
    def in_use(self) -> int:
        """Aggregate pinned-frame count across all stripes."""
        return sum(pool.in_use for pool in self.stripes)
