"""An LRU buffer pool over the simulated disk.

The paper's experiments give both join methods a fixed buffer budget
(2 MB = 256 pages of 8 KB); the nested-loop join deliberately partitions it
as "one page for the inner relation, the rest for the outer".  The pool
provides pinning so join algorithms can hold working pages resident, and it
tracks hits/misses so tests can assert the paper's locality arguments
(e.g. a page of S never being re-read once the merge scan passes it).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from .disk import SimulatedDisk
from .page import Page

FrameKey = Tuple[str, int]


class BufferExhaustedError(Exception):
    """All frames are pinned and a new page was requested."""


class BufferPool:
    """A page cache with LRU replacement and pin counts."""

    def __init__(self, disk: SimulatedDisk, capacity: int, metrics=None):
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self._frames: "OrderedDict[FrameKey, Page]" = OrderedDict()
        self._pins: Dict[FrameKey, int] = {}
        self.hits = 0
        self.misses = 0
        #: Optional :class:`~repro.observe.metrics.QueryMetrics` collector;
        #: hits and misses are reported per page so locality claims can be
        #: checked (a re-fetch = a page missed after having been resident).
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_page(self, file: str, index: int, pin: bool = False) -> Page:
        key = (file, index)
        if key in self._frames:
            self.hits += 1
            if self.metrics is not None:
                self.metrics.record_buffer(True, file, index)
            self._frames.move_to_end(key)
        else:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.record_buffer(False, file, index)
            self._evict_until_free()
            self._frames[key] = self.disk.read_page(file, index)
        if pin:
            self._pins[key] = self._pins.get(key, 0) + 1
        return self._frames[key]

    def unpin(self, file: str, index: int) -> None:
        key = (file, index)
        count = self._pins.get(key, 0)
        if count <= 1:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count - 1

    def unpin_all(self) -> None:
        self._pins.clear()

    def resident(self, file: str, index: int) -> bool:
        return (file, index) in self._frames

    def drop(self, file: str, index: int) -> None:
        """Release a frame without further use (the merge scan's page retire)."""
        key = (file, index)
        self._pins.pop(key, None)
        self._frames.pop(key, None)

    def flush(self) -> None:
        """Forget all cached frames (pages here are read-only images)."""
        self._frames.clear()
        self._pins.clear()

    @property
    def in_use(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------
    def _evict_until_free(self) -> None:
        while len(self._frames) >= self.capacity:
            victim = None
            for key in self._frames:  # OrderedDict iterates LRU-first
                if self._pins.get(key, 0) == 0:
                    victim = key
                    break
            if victim is None:
                raise BufferExhaustedError(
                    f"all {self.capacity} frames pinned; cannot load a new page"
                )
            del self._frames[victim]
