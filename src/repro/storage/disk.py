"""A simulated disk: named files of pages, with I/O counted per access.

The experiments only care about *how many* page transfers each algorithm
performs under a given buffer budget, so the "disk" is an in-memory store
that charges one read or write per page access into the active
:class:`~repro.storage.stats.OperationStats` phase.

Resilience hooks
----------------
Raw page transfers go through the :meth:`_fetch` / :meth:`_store` hooks,
which :class:`repro.faults.FaultyDisk` overrides to inject faults.  Around
them, :meth:`read_page` runs a bounded exponential-backoff
:class:`~repro.resilience.RetryPolicy` that absorbs short
:class:`~repro.errors.TransientIOError` bursts (counting each re-issued
transfer via ``stats.count_retry``), and both directions consult the
thread's active :class:`~repro.resilience.QueryGuard` — installed with
:meth:`use_guard` — so a cancelled or timed-out query stops within one
page access.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional

from ..errors import TransientIOError
from ..resilience import QueryGuard, RetryPolicy
from .page import DEFAULT_PAGE_SIZE, Page
from .stats import OperationStats


class SimulatedDisk:
    """Page-addressed storage with per-access accounting.

    All page accesses charge into :attr:`stats`; an operator measuring its
    own cost temporarily redirects accounting with :meth:`use_stats`::

        with disk.use_stats(my_stats):
            ...  # page reads/writes now count into my_stats

    Accounting, observation and guards are **thread-local**: each worker
    thread charges into its own active stats object and sees only its own
    observers and query guard, so concurrent queries on one disk never
    cross-charge I/O or cancel each other (the ``run_batch`` differential
    test relies on this).  The page store itself is shared; reads are
    wait-free and the dict/list operations it uses are atomic under
    CPython.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: Optional[OperationStats] = None):
        self.page_size = page_size
        self._default_stats = stats if stats is not None else OperationStats()
        self._files: Dict[str, List[bytes]] = {}
        self._local = threading.local()
        #: Retry policy applied to transient read faults; swap in a
        #: different :class:`~repro.resilience.RetryPolicy` to change the
        #: attempt budget or backoff shape.
        self.retry_policy = RetryPolicy()

    @property
    def stats(self) -> OperationStats:
        """The stats object page I/O currently charges into (per thread).

        Threads that never redirected accounting share the disk-lifetime
        default ledger, preserving the single-threaded behaviour.
        """
        return getattr(self._local, "stats", None) or self._default_stats

    @stats.setter
    def stats(self, stats: OperationStats) -> None:
        self._local.stats = stats

    @property
    def _observers(self) -> List:
        observers = getattr(self._local, "observers", None)
        if observers is None:
            observers = []
            self._local.observers = observers
        return observers

    @contextmanager
    def use_stats(self, stats: OperationStats):
        """Temporarily redirect this thread's I/O accounting to ``stats``."""
        previous = getattr(self._local, "stats", None)
        self._local.stats = stats
        try:
            yield stats
        finally:
            self._local.stats = previous

    # ------------------------------------------------------------------
    # Query guards (deadline / cancellation, checked per page access)
    # ------------------------------------------------------------------
    @property
    def guard(self) -> Optional[QueryGuard]:
        """This thread's active query guard, if any."""
        return getattr(self._local, "guard", None)

    @contextmanager
    def use_guard(self, guard: Optional[QueryGuard]):
        """Install ``guard`` as this thread's query guard for the block.

        Every charged page transfer inside the block calls
        ``guard.check()``, raising the typed timeout/cancellation error at
        the next I/O boundary after the limit trips.
        """
        previous = getattr(self._local, "guard", None)
        self._local.guard = guard
        try:
            yield guard
        finally:
            self._local.guard = previous

    def check_guard(self) -> None:
        """Raise this thread's guard error, if one is active and tripped."""
        guard = getattr(self._local, "guard", None)
        if guard is not None:
            guard.check()

    # ------------------------------------------------------------------
    # Observation (page-access tracing; free when no observer is attached)
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Register ``observer(kind, file, index)`` for every page transfer.

        Used by :meth:`repro.observe.metrics.QueryMetrics.watch_disk`; the
        hot path pays only a falsy check while no observer is attached.
        Observers are per-thread: a collector watching the disk from one
        worker never sees another worker's page traffic.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        """Detach a previously added page-access observer (this thread only)."""
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    # File management (not charged as I/O)
    # ------------------------------------------------------------------
    def create(self, name: str) -> None:
        """Create an empty file; raises ``FileExistsError`` on collision."""
        if name in self._files:
            raise FileExistsError(f"disk file {name!r} already exists")
        self._files[name] = []

    def exists(self, name: str) -> bool:
        """Whether a file of that name exists."""
        return name in self._files

    def delete(self, name: str) -> None:
        """Remove a file if present; not charged as I/O."""
        self._files.pop(name, None)

    def n_pages(self, name: str) -> int:
        """Number of pages currently in the file."""
        return len(self._files[name])

    def total_pages(self) -> int:
        """Pages currently stored across every file (capacity accounting)."""
        return sum(len(pages) for pages in self._files.values())

    def files(self) -> List[str]:
        """Names of every file on the disk."""
        return sorted(self._files)

    def splice(self, dest: str, sources: List[str]) -> None:
        """Concatenate ``sources`` into ``dest`` by relinking their pages.

        This is the catalog operation a real system performs when adjacent
        sorted partitions are stitched into one output file: the extents
        already sit on disk in the right order, so only file metadata
        changes hands.  No page is transferred, hence nothing is charged —
        the parallel sort pays for writing each partition, not for naming
        their concatenation.  ``sources`` are consumed (deleted).
        """
        pages: List[bytes] = []
        for name in sources:
            pages.extend(self._files[name])
        for name in sources:
            del self._files[name]
        self._files[dest] = pages

    # ------------------------------------------------------------------
    # Raw transfer hooks (fault injection overrides these)
    # ------------------------------------------------------------------
    def _fetch(self, name: str, index: int) -> bytes:
        """Return the raw bytes of one page (fault-injection hook)."""
        return self._files[name][index]

    def _store(self, name: str, index: int, data: bytes) -> None:
        """Persist the raw bytes of one page (fault-injection hook)."""
        pages = self._files[name]
        if index == len(pages):
            pages.append(data)
        else:
            pages[index] = data

    def _sync(self, name: str) -> None:
        """Durability barrier for one file (fault-injection hook).

        The in-memory disk is always "durable", so the base implementation
        is a no-op; :class:`repro.faults.FaultyDisk` overrides it to track
        which bytes would survive a crash (and to drop fsyncs on a
        schedule).
        """

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def sync(self, name: str) -> None:
        """Flush ``name`` through the durability barrier.

        Not charged as page I/O — the transfers being made durable were
        already charged when written.  The write-ahead log calls this
        after every group commit.
        """
        self._sync(name)

    # ------------------------------------------------------------------
    # Charged page I/O
    # ------------------------------------------------------------------
    def read_page(self, name: str, index: int) -> Page:
        """The page at ``(name, index)``, charging one page read.

        Transient fetch faults are retried under :attr:`retry_policy`;
        each re-issued transfer is charged as an ``io_retries`` event.
        The thread's query guard is checked before and after the
        transfer, so a latency spike cannot outlive a deadline by more
        than its own duration.
        """
        guard = getattr(self._local, "guard", None)
        if guard is not None:
            guard.check()
        stats = self.stats
        data = self.retry_policy.run(
            lambda: self._fetch(name, index),
            on_retry=lambda attempt, exc: stats.count_retry(),
            guard=guard,
        )
        stats.count_read()
        if self._observers:
            for observer in self._observers:
                observer("read", name, index)
        if guard is not None:
            guard.check()
        return Page.from_bytes(data, self.page_size)

    def write_page(self, name: str, index: int, page: Page) -> None:
        """Overwrite the page at ``(name, index)``, charging one page write."""
        guard = getattr(self._local, "guard", None)
        if guard is not None:
            guard.check()
        data = page.to_bytes()
        self._store(name, index, data)
        self.stats.count_write()
        if self._observers:
            for observer in self._observers:
                observer("write", name, index)

    def append_page(self, name: str, page: Page) -> int:
        """Write a new page at the end of the file; returns its index."""
        index = len(self._files[name])
        self.write_page(name, index, page)
        return index

    # ------------------------------------------------------------------
    # Charged blob I/O (variable-length entries, used by the WAL)
    # ------------------------------------------------------------------
    def _blob_transfers(self, data: bytes) -> int:
        """Page transfers charged for a blob of ``len(data)`` bytes."""
        return max(1, -(-len(data) // self.page_size))

    def append_blob(self, name: str, data: bytes) -> int:
        """Append a raw variable-length entry to ``name``; returns its index.

        Blobs share the file store with pages but are *not* page images —
        readers must use :meth:`read_blob`, not :meth:`read_page`.  The
        transfer is charged as one page write per started ``page_size``
        chunk and routes through :meth:`_store`, so fault injection (torn
        writes, scripted crash points, capacity limits) applies to the
        write-ahead log exactly as to data pages.
        """
        guard = getattr(self._local, "guard", None)
        if guard is not None:
            guard.check()
        index = len(self._files[name])
        self._store(name, index, data)
        stats = self.stats
        for _ in range(self._blob_transfers(data)):
            stats.count_write()
        if self._observers:
            for observer in self._observers:
                observer("write", name, index)
        return index

    def read_blob(self, name: str, index: int) -> bytes:
        """The raw bytes of blob ``index`` in ``name``, charged as page I/O.

        Shares the retry/guard machinery of :meth:`read_page` but skips the
        page-image parse: the caller (the WAL scanner) does its own CRC
        framing over the bytes.
        """
        guard = getattr(self._local, "guard", None)
        if guard is not None:
            guard.check()
        stats = self.stats
        data = self.retry_policy.run(
            lambda: self._fetch(name, index),
            on_retry=lambda attempt, exc: stats.count_retry(),
            guard=guard,
        )
        for _ in range(self._blob_transfers(data)):
            stats.count_read()
        if self._observers:
            for observer in self._observers:
                observer("read", name, index)
        return data
