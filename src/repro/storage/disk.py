"""A simulated disk: named files of pages, with I/O counted per access.

The experiments only care about *how many* page transfers each algorithm
performs under a given buffer budget, so the "disk" is an in-memory store
that charges one read or write per page access into the active
:class:`~repro.storage.stats.OperationStats` phase.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from .page import DEFAULT_PAGE_SIZE, Page
from .stats import OperationStats


class SimulatedDisk:
    """Page-addressed storage with per-access accounting.

    All page accesses charge into :attr:`stats`; an operator measuring its
    own cost temporarily redirects accounting with :meth:`use_stats`::

        with disk.use_stats(my_stats):
            ...  # page reads/writes now count into my_stats
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: Optional[OperationStats] = None):
        self.page_size = page_size
        self.stats = stats if stats is not None else OperationStats()
        self._files: Dict[str, List[bytes]] = {}
        self._observers: List = []

    @contextmanager
    def use_stats(self, stats: OperationStats):
        """Temporarily redirect I/O accounting to ``stats``."""
        previous, self.stats = self.stats, stats
        try:
            yield stats
        finally:
            self.stats = previous

    # ------------------------------------------------------------------
    # Observation (page-access tracing; free when no observer is attached)
    # ------------------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Register ``observer(kind, file, index)`` for every page transfer.

        Used by :meth:`repro.observe.metrics.QueryMetrics.watch_disk`; the
        hot path pays only a falsy check while no observer is attached.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    # File management (not charged as I/O)
    # ------------------------------------------------------------------
    def create(self, name: str) -> None:
        if name in self._files:
            raise FileExistsError(f"disk file {name!r} already exists")
        self._files[name] = []

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._files.pop(name, None)

    def n_pages(self, name: str) -> int:
        return len(self._files[name])

    def files(self) -> List[str]:
        return sorted(self._files)

    # ------------------------------------------------------------------
    # Charged page I/O
    # ------------------------------------------------------------------
    def read_page(self, name: str, index: int) -> Page:
        data = self._files[name][index]
        self.stats.count_read()
        if self._observers:
            for observer in self._observers:
                observer("read", name, index)
        return Page.from_bytes(data, self.page_size)

    def write_page(self, name: str, index: int, page: Page) -> None:
        pages = self._files[name]
        data = page.to_bytes()
        self.stats.count_write()
        if self._observers:
            for observer in self._observers:
                observer("write", name, index)
        if index == len(pages):
            pages.append(data)
        else:
            pages[index] = data

    def append_page(self, name: str, page: Page) -> int:
        """Write a new page at the end of the file; returns its index."""
        index = len(self._files[name])
        self.write_page(name, index, page)
        return index
