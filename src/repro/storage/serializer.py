"""Byte-exact tuple serialization.

The paper's motivation for unnesting stresses that "ill-known data needs
more storage space than crisp data does, [so] it takes more I/O time to
transfer".  We therefore serialize tuples to real bytes: a trapezoid costs
four doubles where a crisp number costs one, discrete distributions grow
with their element count, and the experiments that sweep *tuple size*
(Table 4) pad tuples to a declared fixed width exactly like the paper's
128-2048 byte records.

Record layout::

    [8-byte degree] [value]* [padding]
    value := tag(1) payload
      'N' f64                      crisp number
      'L' u16 utf8                 crisp label
      'T' f64 f64 f64 f64          trapezoid a,b,c,d
      'D' u16 (tag payload f64)*   discrete distribution
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from ..data.schema import Schema
from ..data.tuples import FuzzyTuple
from ..fuzzy.crisp import CrispLabel, CrispNumber
from ..fuzzy.discrete import DiscreteDistribution
from ..fuzzy.distribution import Distribution
from ..fuzzy.trapezoid import TrapezoidalNumber

_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")


class SerializationError(ValueError):
    """Raised for unencodable values or undersized fixed tuple widths."""


def encode_value(value: Distribution) -> bytes:
    """Serialize one distribution to its tagged byte form."""
    if isinstance(value, CrispNumber):
        return b"N" + _F64.pack(value.value)
    if isinstance(value, CrispLabel):
        raw = value.value.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise SerializationError("label longer than 65535 bytes")
        return b"L" + _U16.pack(len(raw)) + raw
    if isinstance(value, TrapezoidalNumber):
        return b"T" + _F64.pack(value.a) + _F64.pack(value.b) + _F64.pack(value.c) + _F64.pack(value.d)
    if isinstance(value, DiscreteDistribution):
        parts = [b"D", _U16.pack(len(value.items))]
        for element, degree in sorted(value.items.items(), key=lambda kv: repr(kv[0])):
            if isinstance(element, float):
                parts.append(b"N" + _F64.pack(element))
            else:
                raw = str(element).encode("utf-8")
                parts.append(b"L" + _U16.pack(len(raw)) + raw)
            parts.append(_F64.pack(degree))
        return b"".join(parts)
    raise SerializationError(f"cannot serialize {type(value).__name__}")


def decode_value(data: bytes, offset: int) -> Tuple[Distribution, int]:
    """Parse one tagged distribution at ``offset``; returns ``(value, next offset)``."""
    tag = data[offset:offset + 1]
    offset += 1
    if tag == b"N":
        (v,) = _F64.unpack_from(data, offset)
        return CrispNumber(v), offset + 8
    if tag == b"L":
        (n,) = _U16.unpack_from(data, offset)
        offset += 2
        return CrispLabel(data[offset:offset + n].decode("utf-8")), offset + n
    if tag == b"T":
        a, b, c, d = struct.unpack_from(">dddd", data, offset)
        return TrapezoidalNumber(a, b, c, d), offset + 32
    if tag == b"D":
        (count,) = _U16.unpack_from(data, offset)
        offset += 2
        items = {}
        for _ in range(count):
            element, offset = decode_value(data, offset)
            (degree,) = _F64.unpack_from(data, offset)
            offset += 8
            if isinstance(element, CrispNumber):
                items[element.value] = degree
            else:
                items[element.value] = degree
        return DiscreteDistribution(items), offset
    raise SerializationError(f"unknown value tag {tag!r} at offset {offset - 1}")


class TupleSerializer:
    """Encodes/decodes :class:`FuzzyTuple` records for one schema.

    ``fixed_size`` (bytes) pads every record to a constant width, modelling
    the paper's fixed-size tuples; records that don't fit raise
    :class:`SerializationError`.
    """

    def __init__(self, schema: Schema, fixed_size: Optional[int] = None):
        self.schema = schema
        self.fixed_size = fixed_size

    def encode(self, t: FuzzyTuple) -> bytes:
        """Serialize a tuple (degree then values), padding to the fixed size if set."""
        if len(t) != len(self.schema):
            raise SerializationError("tuple arity does not match serializer schema")
        body = _F64.pack(t.degree) + b"".join(encode_value(v) for v in t.values)
        if self.fixed_size is None:
            return body
        if len(body) > self.fixed_size:
            raise SerializationError(
                f"tuple needs {len(body)} bytes but fixed size is {self.fixed_size}"
            )
        return body + b"\x00" * (self.fixed_size - len(body))

    def decode(self, data: bytes) -> FuzzyTuple:
        """Parse one encoded tuple back into a :class:`FuzzyTuple`."""
        (degree,) = _F64.unpack_from(data, 0)
        offset = 8
        values = []
        for _ in range(len(self.schema)):
            value, offset = decode_value(data, offset)
            values.append(value)
        return FuzzyTuple(values, degree)

    def size_of(self, t: FuzzyTuple) -> int:
        """Encoded size in bytes (the fixed size when one is declared)."""
        return len(self.encode(t))
