"""Operation statistics: the events the paper's experiments measure.

The experiments of Section 9 report response time, its CPU/IO split, and
the fraction spent sorting (Table 3).  We therefore count the underlying
events — page reads/writes, crisp comparisons, fuzzy predicate evaluations,
tuple moves — per *phase* (sort / merge / join / scan), and let
:class:`repro.storage.costs.CostModel` turn them into time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional


@dataclass
class Counters:
    """Raw event counts for one phase of an operation."""

    page_reads: int = 0
    page_writes: int = 0
    crisp_comparisons: int = 0
    fuzzy_evaluations: int = 0
    tuple_moves: int = 0
    io_retries: int = 0
    #: Index pages read by the columnar access paths.  Every index page
    #: read *also* charges :attr:`page_reads` (the device did the same
    #: work), so the cost model is unchanged; this counter only splits
    #: out how much of the I/O was index traffic.
    index_pages_read: int = 0
    #: Column arrays processed by the vectorized kernel (4 abscissa
    #: columns per columnar page batch).
    columns_scanned: int = 0
    #: Vectorized kernel invocations (one per column batch).
    kernel_batches: int = 0

    def merge(self, other: "Counters") -> None:
        """Add another counter set into this one."""
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        self.crisp_comparisons += other.crisp_comparisons
        self.fuzzy_evaluations += other.fuzzy_evaluations
        self.tuple_moves += other.tuple_moves
        self.io_retries += other.io_retries
        self.index_pages_read += other.index_pages_read
        self.columns_scanned += other.columns_scanned
        self.kernel_batches += other.kernel_batches

    @property
    def page_ios(self) -> int:
        """Total page reads plus writes."""
        return self.page_reads + self.page_writes

    def copy(self) -> "Counters":
        """An independent copy of the counters."""
        return Counters(
            self.page_reads,
            self.page_writes,
            self.crisp_comparisons,
            self.fuzzy_evaluations,
            self.tuple_moves,
            self.io_retries,
            self.index_pages_read,
            self.columns_scanned,
            self.kernel_batches,
        )


class OperationStats:
    """Phase-structured counters for a whole query evaluation.

    ``stats.phase("sort")`` returns the :class:`Counters` for that phase,
    creating it on first use; :attr:`total` aggregates across phases.
    Operators record into whichever phase is *current* (set via
    :meth:`enter_phase`, typically through the context-manager form).
    """

    DEFAULT_PHASE = "work"

    def __init__(self):
        self.phases: Dict[str, Counters] = {}
        self._current = self.DEFAULT_PHASE

    # ------------------------------------------------------------------
    # Phase management
    # ------------------------------------------------------------------
    def phase(self, name: str) -> Counters:
        """The counter set for phase ``name``, created on first use."""
        if name not in self.phases:
            self.phases[name] = Counters()
        return self.phases[name]

    @property
    def current(self) -> Counters:
        """The counter set of the active phase."""
        return self.phase(self._current)

    @property
    def current_phase(self) -> str:
        """The name of the phase counts are currently routed to."""
        return self._current

    def enter_phase(self, name: str) -> "_PhaseContext":
        """Route subsequent counts to ``name`` (context manager)."""
        return _PhaseContext(self, name)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count_read(self, pages: int = 1) -> None:
        """Charge page read(s) to the active phase."""
        self.current.page_reads += pages

    def count_write(self, pages: int = 1) -> None:
        """Charge page write(s) to the active phase."""
        self.current.page_writes += pages

    def count_crisp(self, n: int = 1) -> None:
        """Charge crisp comparison(s) to the active phase."""
        self.current.crisp_comparisons += n

    def count_fuzzy(self, n: int = 1) -> None:
        """Charge fuzzy evaluation(s) to the active phase."""
        self.current.fuzzy_evaluations += n

    def count_move(self, n: int = 1) -> None:
        """Charge tuple move(s) to the active phase."""
        self.current.tuple_moves += n

    def count_retry(self, n: int = 1) -> None:
        """Charge retried page transfer(s) to the active phase."""
        self.current.io_retries += n

    def count_index_read(self, pages: int = 1) -> None:
        """Note index page read(s) — an overlay on :meth:`count_read`.

        Callers charge the plain read separately (the device transfers the
        same bytes either way); this counter only classifies the traffic.
        """
        self.current.index_pages_read += pages

    def count_columns(self, n: int = 1) -> None:
        """Charge column array(s) processed by a vectorized kernel batch."""
        self.current.columns_scanned += n

    def count_kernel_batch(self, n: int = 1) -> None:
        """Charge vectorized kernel batch invocation(s)."""
        self.current.kernel_batches += n

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @property
    def total(self) -> Counters:
        """All phases merged into one counter set."""
        agg = Counters()
        for counters in self.phases.values():
            agg.merge(counters)
        return agg

    def merge(self, other: "OperationStats") -> None:
        """Fold another stats object into this one, phase by phase."""
        for name, counters in other.phases.items():
            self.phase(name).merge(counters)

    def items(self) -> Iterator:
        """``(phase name, counters)`` pairs in creation order."""
        return iter(self.phases.items())

    def __repr__(self) -> str:
        t = self.total
        return (
            f"OperationStats(reads={t.page_reads}, writes={t.page_writes}, "
            f"crisp={t.crisp_comparisons}, fuzzy={t.fuzzy_evaluations})"
        )


class _PhaseContext:
    def __init__(self, stats: OperationStats, name: str):
        self._stats = stats
        self._name = name
        self._previous: Optional[str] = None

    def __enter__(self) -> OperationStats:
        self._previous = self._stats._current
        self._stats._current = self._name
        return self._stats

    def __exit__(self, *exc) -> None:
        self._stats._current = self._previous
