"""Paged storage engine with I/O accounting.

Substitutes for the Omron Fuzzy LUNA library's storage layer: slotted 8 KB
pages on a simulated disk, an LRU buffer pool with pinning, heap files, and
the cost model that converts counted events into the paper's "response
time" figures.
"""

from .buffer import BufferExhaustedError, BufferPool, StripedBufferManager
from .costs import MODERN, PAPER_1992, CostModel
from .disk import SimulatedDisk
from .heap import HeapFile
from .page import DEFAULT_PAGE_SIZE, Page, PageFullError
from .serializer import SerializationError, TupleSerializer
from .stats import Counters, OperationStats

__all__ = [
    "Page",
    "PageFullError",
    "DEFAULT_PAGE_SIZE",
    "SimulatedDisk",
    "BufferPool",
    "BufferExhaustedError",
    "StripedBufferManager",
    "HeapFile",
    "TupleSerializer",
    "SerializationError",
    "Counters",
    "OperationStats",
    "CostModel",
    "PAPER_1992",
    "MODERN",
]
