"""Fixed-size slotted pages of serialized tuple records.

Records are stored back-to-back with a 2-byte length prefix; a 6-byte
header holds the record count and a CRC-32 checksum of the page image.
The checksum is verified on every parse, so a torn write (a page whose
bytes were only partially persisted, as injected by
:class:`repro.faults.FaultyDisk`) surfaces as a typed
:class:`~repro.errors.PageCorruptionError` at read time rather than a
silently wrong query answer.  The default page size is the paper's 8 KB.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List

from ..errors import PageCorruptionError

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

DEFAULT_PAGE_SIZE = 8 * 1024


class PageFullError(Exception):
    """Raised when a record does not fit into the remaining page space."""


class Page:
    """An in-memory page image holding serialized records."""

    __slots__ = ("page_size", "_records", "_used")

    HEADER_SIZE = 6  # u16 record count + u32 CRC-32 of the page body
    RECORD_OVERHEAD = 2

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._records: List[bytes] = []
        self._used = self.HEADER_SIZE

    @property
    def free_space(self) -> int:
        """Bytes still available for records, after per-record overhead."""
        return self.page_size - self._used

    def __len__(self) -> int:
        return len(self._records)

    def fits(self, record: bytes) -> bool:
        """Whether ``record`` fits in the remaining free space."""
        return len(record) + self.RECORD_OVERHEAD <= self.free_space

    def append(self, record: bytes) -> None:
        """Add a record; raises :class:`PageFullError` when it does not fit."""
        if not self.fits(record):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit in {self.free_space} free bytes"
            )
        self._records.append(record)
        self._used += len(record) + self.RECORD_OVERHEAD

    def records(self) -> Iterator[bytes]:
        """Iterate the raw records in slot order."""
        return iter(self._records)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the page to its on-disk byte layout, checksummed."""
        parts = []
        for record in self._records:
            parts.append(_U16.pack(len(record)))
            parts.append(record)
        body = b"".join(parts)
        count = _U16.pack(len(self._records))
        body += b"\x00" * (self.page_size - self.HEADER_SIZE - len(body))
        checksum = zlib.crc32(body, zlib.crc32(count))
        return count + _U32.pack(checksum) + body

    @classmethod
    def from_bytes(cls, data: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> "Page":
        """Parse a page image, verifying its checksum.

        Raises :class:`~repro.errors.PageCorruptionError` when the stored
        CRC-32 does not match the page body or the slot directory is
        malformed — the read-time signature of a torn write.
        """
        if len(data) < cls.HEADER_SIZE:
            raise PageCorruptionError(
                f"page image of {len(data)} bytes is shorter than the {cls.HEADER_SIZE}-byte header"
            )
        (count,) = _U16.unpack_from(data, 0)
        (stored,) = _U32.unpack_from(data, 2)
        actual = zlib.crc32(data[cls.HEADER_SIZE:], zlib.crc32(data[:2]))
        if stored != actual:
            raise PageCorruptionError(
                f"page checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )
        page = cls(page_size)
        offset = cls.HEADER_SIZE
        try:
            for _ in range(count):
                (n,) = _U16.unpack_from(data, offset)
                offset += 2
                end = offset + n
                if end > len(data):
                    raise PageCorruptionError(
                        f"record slot overruns the page image ({end} > {len(data)})"
                    )
                page._records.append(data[offset:end])
                page._used += n + cls.RECORD_OVERHEAD
                offset = end
        except struct.error as exc:
            raise PageCorruptionError(f"malformed page slot directory: {exc}") from exc
        return page

    def __repr__(self) -> str:
        return f"Page({len(self._records)} records, {self.free_space} free)"
