"""Fixed-size slotted pages of serialized tuple records.

Records are stored back-to-back with a 2-byte length prefix; a 2-byte
header holds the record count.  The default page size is the paper's 8 KB.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

_U16 = struct.Struct(">H")

DEFAULT_PAGE_SIZE = 8 * 1024


class PageFullError(Exception):
    """Raised when a record does not fit into the remaining page space."""


class Page:
    """An in-memory page image holding serialized records."""

    __slots__ = ("page_size", "_records", "_used")

    HEADER_SIZE = 2
    RECORD_OVERHEAD = 2

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._records: List[bytes] = []
        self._used = self.HEADER_SIZE

    @property
    def free_space(self) -> int:
        """Bytes still available for records, after per-record overhead."""
        return self.page_size - self._used

    def __len__(self) -> int:
        return len(self._records)

    def fits(self, record: bytes) -> bool:
        """Whether ``record`` fits in the remaining free space."""
        return len(record) + self.RECORD_OVERHEAD <= self.free_space

    def append(self, record: bytes) -> None:
        """Add a record; raises :class:`PageFullError` when it does not fit."""
        if not self.fits(record):
            raise PageFullError(
                f"record of {len(record)} bytes does not fit in {self.free_space} free bytes"
            )
        self._records.append(record)
        self._used += len(record) + self.RECORD_OVERHEAD

    def records(self) -> Iterator[bytes]:
        """Iterate the raw records in slot order."""
        return iter(self._records)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the page to its on-disk byte layout."""
        parts = [_U16.pack(len(self._records))]
        for record in self._records:
            parts.append(_U16.pack(len(record)))
            parts.append(record)
        body = b"".join(parts)
        return body + b"\x00" * (self.page_size - len(body))

    @classmethod
    def from_bytes(cls, data: bytes, page_size: int = DEFAULT_PAGE_SIZE) -> "Page":
        """Parse a page back from its on-disk byte layout."""
        page = cls(page_size)
        (count,) = _U16.unpack_from(data, 0)
        offset = cls.HEADER_SIZE
        for _ in range(count):
            (n,) = _U16.unpack_from(data, offset)
            offset += 2
            page._records.append(data[offset:offset + n])
            page._used += n + cls.RECORD_OVERHEAD
            offset += n
        return page

    def __repr__(self) -> str:
        return f"Page({len(self._records)} records, {self.free_space} free)"
