"""Heap files: relations stored as sequences of slotted pages.

A :class:`HeapFile` is the storage-backed counterpart of
:class:`~repro.data.relation.FuzzyRelation`: the physical operators scan it
page by page through a :class:`~repro.storage.buffer.BufferPool`, which is
what makes the experiments' I/O counts meaningful.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..data.relation import FuzzyRelation
from ..data.schema import Schema
from ..data.tuples import FuzzyTuple
from .buffer import BufferPool
from .disk import SimulatedDisk
from .page import Page, PageFullError
from .serializer import TupleSerializer


class HeapFile:
    """A relation materialized on the simulated disk."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        disk: SimulatedDisk,
        fixed_tuple_size: Optional[int] = None,
    ):
        self.name = name
        self.schema = schema
        self.disk = disk
        self.serializer = TupleSerializer(schema, fixed_tuple_size)
        self.n_tuples = 0
        if not disk.exists(name):
            disk.create(name)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(
        self,
        tuples: Iterable[FuzzyTuple],
        placements: Optional[List[Tuple[int, int]]] = None,
    ) -> "HeapFile":
        """Append tuples, packing pages greedily; returns self for chaining.

        Pass a list as ``placements`` to receive one ``(page, slot)`` row
        id per loaded tuple, in load order — index maintenance uses this
        to rebuild postings from in-memory rows without re-scanning the
        freshly written pages.
        """
        page = Page(self.disk.page_size)
        page_index = self.n_pages
        for t in tuples:
            record = self.serializer.encode(t)
            if not page.fits(record):
                if len(page) == 0:
                    raise PageFullError(
                        f"a single record of {len(record)} bytes exceeds the page size"
                    )
                self.disk.append_page(self.name, page)
                page = Page(self.disk.page_size)
                page_index += 1
            if placements is not None:
                placements.append((page_index, len(page)))
            page.append(record)
            self.n_tuples += 1
        if len(page):
            self.disk.append_page(self.name, page)
        return self

    @classmethod
    def from_relation(
        cls,
        name: str,
        relation: FuzzyRelation,
        disk: SimulatedDisk,
        fixed_tuple_size: Optional[int] = None,
    ) -> "HeapFile":
        """Build a heap file on ``disk`` holding ``relation``'s tuples."""
        return cls(name, relation.schema, disk, fixed_tuple_size).load(relation)

    @classmethod
    def attach(
        cls,
        name: str,
        schema: Schema,
        disk: SimulatedDisk,
        fixed_tuple_size: Optional[int] = None,
    ) -> "HeapFile":
        """Adopt an *existing* file (crash recovery), recounting its tuples.

        The counting scan charges page reads into the active stats
        context; recovery wraps it in a scratch ledger.  Raises
        ``FileNotFoundError`` if the file does not exist — attach never
        silently creates an empty table where data was expected.
        """
        if not disk.exists(name):
            raise FileNotFoundError(f"no heap file {name!r} on the disk")
        heap = cls(name, schema, disk, fixed_tuple_size)
        heap.n_tuples = sum(
            len(list(disk.read_page(name, index).records()))
            for index in range(disk.n_pages(name))
        )
        return heap

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        """Number of disk pages the file occupies."""
        return self.disk.n_pages(self.name)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self, pool: BufferPool) -> Iterator[FuzzyTuple]:
        """Tuple-at-a-time scan through the buffer pool."""
        for _, tuples in self.scan_pages(pool):
            for t in tuples:
                yield t

    def scan_pages(self, pool: BufferPool) -> Iterator[Tuple[int, List[FuzzyTuple]]]:
        """Page-at-a-time scan: yields ``(page_index, tuples)``."""
        for index in range(self.n_pages):
            page = pool.get_page(self.name, index)
            yield index, [self.serializer.decode(r) for r in page.records()]

    def page_tuples(self, pool: BufferPool, index: int, pin: bool = False) -> List[FuzzyTuple]:
        """Decode one page's tuples (optionally pinning the frame)."""
        page = pool.get_page(self.name, index, pin=pin)
        return [self.serializer.decode(r) for r in page.records()]

    def to_relation(self, pool: BufferPool) -> FuzzyRelation:
        """Materialize into an in-memory fuzzy relation (max-merges dups)."""
        return FuzzyRelation(self.schema, self.scan(pool))

    def __repr__(self) -> str:
        return f"HeapFile({self.name!r}, {self.n_tuples} tuples, {self.n_pages} pages)"
