"""Range partitioning on the ``b(v)`` left endpoints of the interval order.

A boundary list ``[c_1 < c_2 < ... < c_{k-1}]`` splits a relation into
``k`` half-open slices ``{t : c_i <= b(t.X) < c_{i+1}}`` (the first slice
is unbounded below, the last unbounded above).  Because every ``b`` in
slice ``i`` is strictly below every ``b`` in slice ``i+1``, the slices
are *order-disjoint* under Definition 3.1's ``(b, e)`` lexicographic
order: sorting each slice independently and concatenating them yields
exactly the globally sorted file, with no merge across slices.

Boundaries are chosen as quantiles of sampled ``b`` values
(:func:`repro.engine.statistics.sample_tuples` — page-level sampling, so
the partitioner's cost is a handful of charged page reads).  When the
sample is too small, collapses to fewer than two distinct slices, or the
attribute's endpoints are not mutually comparable, :meth:`from_sample`
returns ``None`` and the caller degrades to the serial path.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Optional

from ..fuzzy.interval_order import sort_key
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .executor import DEFAULT_SAMPLE_SIZE


@dataclass(frozen=True)
class PartitionSpec:
    """One half-open slice ``[lower, upper)`` of the ``b(v)`` axis.

    ``lower is None`` means unbounded below; ``upper is None`` unbounded
    above.  Bounds are compared with the tuple's *left* endpoint only —
    the right endpoint never affects which slice a tuple lands in.
    """

    index: int
    lower: Optional[object]
    upper: Optional[object]

    def contains(self, b) -> bool:
        """Whether a left endpoint ``b`` falls inside this slice."""
        if self.lower is not None and b < self.lower:
            return False
        if self.upper is not None and b >= self.upper:
            return False
        return True


class RangePartitioner:
    """Maps left endpoints to partition indices via sampled boundaries."""

    def __init__(self, boundaries: List):
        if not boundaries:
            raise ValueError("a range partitioner needs at least one boundary")
        self.boundaries = list(boundaries)

    @property
    def n_partitions(self) -> int:
        """Number of slices (one more than the boundary count)."""
        return len(self.boundaries) + 1

    def partition_index(self, value) -> int:
        """The slice the distribution ``value`` sorts into (by ``b(value)``)."""
        b, _ = sort_key(value)
        return bisect.bisect_right(self.boundaries, b)

    def specs(self) -> List[PartitionSpec]:
        """The slices as explicit ``[lower, upper)`` specs, in order."""
        bounds = [None] + self.boundaries + [None]
        return [
            PartitionSpec(i, bounds[i], bounds[i + 1])
            for i in range(self.n_partitions)
        ]

    @classmethod
    def from_sample(
        cls,
        heap: HeapFile,
        attribute: str,
        workers: int,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = 0,
        stats: Optional[OperationStats] = None,
    ) -> Optional["RangePartitioner"]:
        """Pick up to ``workers - 1`` boundaries from a page sample of ``heap``.

        Boundaries are the ``i/workers`` quantiles of the sampled left
        endpoints, deduplicated, so the slices come out roughly equal in
        tuples (hence pages, under the fixed-size serializer).  Returns
        ``None`` — degrade to serial — when ``workers < 2``, the sample is
        empty, every sampled endpoint is equal (no usable boundary), or
        the endpoints are not mutually comparable (a mixed
        numeric/symbolic domain).
        """
        if workers < 2:
            return None
        rng = random.Random(seed)
        from ..engine.statistics import sample_tuples

        sample = sample_tuples(heap, sample_size, rng, stats)
        if len(sample) < 2:
            return None
        index = heap.schema.index_of(attribute)
        try:
            endpoints = sorted(sort_key(t[index])[0] for t in sample)
        except TypeError:
            return None  # mixed domains: b values not mutually comparable
        boundaries: List = []
        for i in range(1, workers):
            cut = endpoints[min(len(endpoints) - 1, i * len(endpoints) // workers)]
            if not boundaries or cut > boundaries[-1]:
                boundaries.append(cut)
        # A boundary equal to the global minimum would make the first
        # slice empty by construction; drop it.
        if boundaries and boundaries[0] <= endpoints[0]:
            boundaries = boundaries[1:]
        if not boundaries:
            return None
        return cls(boundaries)
