"""Worker-pool plumbing shared by every parallel code path.

Two fan-out shapes live here:

* :func:`run_ordered` — the *inter*-query helper behind both engines'
  ``run_batch``: independent jobs, results in input order, serial loop
  when ``workers <= 1``.  Extracted so the worker/cancellation behaviour
  of :class:`repro.session.StorageSession` and
  :class:`repro.db.FuzzyDatabase` cannot drift apart.
* :func:`gather_partitions` — the *intra*-query helper behind the
  partitioned sort + merge-join: partition tasks share a
  :class:`LinkedCancelToken`, a fault in any worker cancels the siblings
  at their next page access, and exactly one typed error surfaces to the
  caller (preferring the root-cause fault over the sibling
  cancellations it triggered).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..errors import QueryCancelledError
from ..resilience import CancelToken

T = TypeVar("T")

#: Default page-sample size for boundary selection (matches the fan-out
#: sampler in :mod:`repro.engine.statistics`).
DEFAULT_SAMPLE_SIZE = 64


def run_ordered(
    jobs: Sequence[T],
    fn: Callable[[T], object],
    workers: int = 1,
) -> List[object]:
    """Apply ``fn`` to every job, optionally across worker threads.

    Results come back in input order regardless of completion order; with
    ``workers <= 1`` this is a plain serial loop (the differential tests
    assert both modes produce bit-identical results).  The first exception
    in input order propagates, exactly like the serial loop's would.
    """
    jobs = list(jobs)
    if workers <= 1:
        return [fn(job) for job in jobs]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, jobs))


class LinkedCancelToken(CancelToken):
    """A cancel token that also honours an optional outer token.

    Partition workers run under one shared linked token: the coordinator
    (or a failing sibling) cancels it to stop every worker, while a
    cancellation of the user's *outer* token is observed through the link
    without the coordinator having to forward it.
    """

    def __init__(self, outer: Optional[CancelToken] = None):
        super().__init__()
        self.outer = outer

    @property
    def cancelled(self) -> bool:
        """Set when either this token or the linked outer token fired."""
        if self.outer is not None and self.outer.cancelled:
            return True
        return self._event.is_set()


def gather_partitions(
    tasks: Sequence[Callable[[CancelToken], T]],
    workers: int,
    cancel: Optional[CancelToken] = None,
) -> List[T]:
    """Run partition tasks concurrently with linked sibling cancellation.

    Each task receives the shared :class:`LinkedCancelToken`; it must
    install a guard over it so the disk's per-page checks observe the
    cancellation.  When a task fails, the linked token is cancelled —
    siblings stop at their next page access — and the *root cause*
    surfaces: the first non-cancellation error in partition order, or the
    first :class:`~repro.errors.QueryCancelledError` when the outer token
    itself fired.  On success the results come back in partition order.
    """
    linked = LinkedCancelToken(cancel)

    def run(task: Callable[[CancelToken], T]) -> T:
        try:
            return task(linked)
        except BaseException:
            linked.cancel()
            raise

    outcomes: List[object] = []
    with ThreadPoolExecutor(max_workers=max(1, workers)) as pool:
        futures = [pool.submit(run, task) for task in tasks]
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:  # gathered below, one error surfaces
                outcomes.append(exc)
    errors = [o for o in outcomes if isinstance(o, BaseException)]
    if errors:
        for error in errors:
            if not isinstance(error, QueryCancelledError):
                raise error
        raise errors[0]
    return outcomes
