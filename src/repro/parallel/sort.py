"""Range-partitioned parallel external sort.

The driver behind :meth:`repro.sort.external.ExternalSorter.sort_parallel`:

1. **Partition** (coordinator): one scan of the source routes every tuple
   into its ``b(v)`` slice's scratch file — this write pass is the
   partitioning overhead the parallel cost model charges.
2. **Sort** (workers): each slice is sorted independently by a plain
   :class:`~repro.sort.external.ExternalSorter` on its own pool thread,
   charging into its own :class:`~repro.storage.stats.OperationStats`
   ledger and guarded by a :class:`~repro.parallel.executor.LinkedCancelToken`
   so one failing slice cancels its siblings.
3. **Splice** (coordinator): the sorted slices are concatenated with
   :meth:`~repro.storage.disk.SimulatedDisk.splice` — *no merge pass*.
   Slices are order-disjoint on ``b``, and within a slice the sort
   already ordered ties on ``e``, so the concatenation is exactly the
   ``(b, e)``-lexicographic order Definition 3.1 asks for.

Note the asymmetry with the partitioned *join*: a standalone sort needs
no replication because every tuple belongs to exactly one slice.  The
``Rng(r)`` overlap band only matters when a second relation is probed
against the slices — see :mod:`repro.parallel.join`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ..resilience import CancelToken, QueryGuard
from ..sort.runs import RunWriter
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .executor import gather_partitions
from .partitioner import RangePartitioner

#: Stats phase charged for the coordinator's partitioning write pass.
PARTITION_PHASE = "partition"

_partition_counter = itertools.count(1)


def partition_heap(
    disk: SimulatedDisk,
    source: HeapFile,
    attribute: str,
    partitioner: RangePartitioner,
    stats: OperationStats,
) -> List[HeapFile]:
    """Route ``source`` into one scratch heap per ``b(v)`` slice.

    One charged read pass over the source plus the writes of the slice
    files, all under the ``partition`` phase.  Returns the slice heaps in
    partition order (empty slices included, as zero-page heaps).
    """
    key_index = source.schema.index_of(attribute)
    tag = next(_partition_counter)
    names = [
        f"__part_{source.name}_{tag}_{i}" for i in range(partitioner.n_partitions)
    ]
    writers = [RunWriter(disk, name, source.serializer) for name in names]
    counts = [0] * partitioner.n_partitions
    ok = False
    try:
        with disk.use_stats(stats), stats.enter_phase(PARTITION_PHASE):
            for page_index in range(source.n_pages):
                page = disk.read_page(source.name, page_index)
                for record in page.records():
                    t = source.serializer.decode(record)
                    i = partitioner.partition_index(t[key_index])
                    stats.count_move()
                    writers[i].append(t)
                    counts[i] += 1
            for writer in writers:
                writer.close()
        ok = True
    finally:
        if not ok:
            for writer in writers:
                writer.discard()
            for name in names:
                disk.delete(name)
    heaps = []
    for name, count in zip(names, counts):
        heap = HeapFile(name, source.schema, disk, source.serializer.fixed_size)
        heap.n_tuples = count
        heaps.append(heap)
    return heaps


def parallel_sort(
    disk: SimulatedDisk,
    buffer_pages: int,
    stats: OperationStats,
    source: HeapFile,
    attribute: str,
    partitioner: RangePartitioner,
    workers: int,
    out_name: Optional[str] = None,
    metrics=None,
    guard: Optional[QueryGuard] = None,
    cancel: Optional[CancelToken] = None,
) -> Tuple[HeapFile, List[OperationStats]]:
    """Partition, sort each slice concurrently, splice; returns the output
    heap plus one per-slice :class:`~repro.storage.stats.OperationStats`.

    Worker ledgers are merged into ``stats`` in partition order (so the
    coordinator's totals cover all the work done on its behalf) and also
    returned separately — the parallel cost model takes its ``max`` over
    them.  Any worker fault cancels the siblings through the shared
    linked token and surfaces as one typed error; every scratch slice and
    any partial output is deleted on the way out.
    """
    from ..sort.external import ExternalSorter

    if out_name is None:
        out_name = f"{source.name}__psorted_{attribute}"
    parts = partition_heap(disk, source, attribute, partitioner, stats)
    sorted_names: List[Optional[str]] = [None] * len(parts)
    deadline = guard.deadline if guard is not None else None

    def make_task(i: int, part: HeapFile):
        def task(linked: CancelToken):
            worker_stats = OperationStats()
            worker_guard = QueryGuard(deadline=deadline, token=linked)
            with disk.use_guard(worker_guard):
                sorter = ExternalSorter(disk, buffer_pages, worker_stats)
                out = sorter.sort(part, attribute, out_name=f"{out_name}__p{i}")
            return i, out, worker_stats

        return task

    try:
        tasks = [make_task(i, part) for i, part in enumerate(parts)]
        results = gather_partitions(tasks, workers, cancel)
        partition_stats: List[OperationStats] = []
        total_tuples = 0
        for i, out, worker_stats in results:
            sorted_names[i] = out.name
            partition_stats.append(worker_stats)
            total_tuples += out.n_tuples
            stats.merge(worker_stats)
        disk.delete(out_name)
        disk.splice(out_name, [name for name in sorted_names if name is not None])
        sorted_names = [None] * len(parts)  # consumed by the splice
        merged = HeapFile(out_name, source.schema, disk, source.serializer.fixed_size)
        merged.n_tuples = total_tuples
        if metrics is not None:
            from ..observe.metrics import SortMetrics

            record = SortMetrics(
                source=source.name,
                attribute=attribute,
                tuples=total_tuples,
                runs=len(parts),
                output=out_name,
            )
            metrics.record_sort(record)
        return merged, partition_stats
    except BaseException:
        disk.delete(out_name)
        raise
    finally:
        for part in parts:
            disk.delete(part.name)
        for name in sorted_names:
            if name is not None:
                disk.delete(name)
