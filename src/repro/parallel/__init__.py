"""Intra-query parallelism over the interval order.

The interval order ``(b(v), e(v))`` of Definition 3.1 is not only the key
the extended merge-join sorts on — it is a perfect *partitioning* key:
ranges of ``b(v)`` split a relation into slices that are order-disjoint,
so each slice can be sorted (and merge-joined against its counterpart)
independently on its own worker thread, and the sorted slices concatenate
into a globally sorted file with no final merge.

Package layout:

* :mod:`repro.parallel.partitioner` — picks ``b(v)`` boundary values from
  page samples so partitions come out roughly equal in pages;
* :mod:`repro.parallel.executor` — the shared worker-pool helpers
  (ordered fan-out, linked cancellation, single-typed-error gather) used
  by both the partitioned join and the engines' ``run_batch``;
* :mod:`repro.parallel.sort` — the range-partitioned parallel external
  sort (partition, sort each slice concurrently, splice);
* :mod:`repro.parallel.join` — the partitioned merge-join, including the
  inner-side overlap-band replication that keeps results bit-identical
  to the serial path.
"""

from .executor import LinkedCancelToken, gather_partitions, run_ordered
from .join import PartitionedMergeJoin, replicate_inner
from .partitioner import PartitionSpec, RangePartitioner
from .sort import parallel_sort

__all__ = [
    "LinkedCancelToken",
    "PartitionSpec",
    "PartitionedMergeJoin",
    "RangePartitioner",
    "gather_partitions",
    "parallel_sort",
    "replicate_inner",
    "run_ordered",
]
