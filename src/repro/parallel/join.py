"""The range-partitioned parallel merge-join.

Correctness argument (the invariant :mod:`tests.test_parallel_property`
checks exhaustively):

* The outer relation R is partitioned **disjointly** on ``b(r.X)``, so
  every R-tuple — hence every joining pair ``(r, s)`` — belongs to
  exactly one partition.  No pair is produced twice.
* The inner relation S is **replicated** into every partition its
  support interval can reach: slice ``i`` receives ``s`` iff
  ``e(s.Y) >= min b(r.X)`` and ``b(s.Y) <= max e(r.X)`` over the slice's
  R-tuples.  This is the ``Rng(r)`` overlap band of Section 3 — an
  S-tuple straddling a boundary lands in *both* adjacent slices, because
  R-tuples on either side can reach it.  Omitting the band would silently
  drop exactly the pairs whose supports cross a boundary, which is why
  bit-identical results require it.
* The band makes each slice's S a *superset* of what its R-tuples can
  join: the extra tuples are harmless because a pair with disjoint
  supports has equality degree 0 and is never emitted.
* Each worker runs the unmodified serial
  :class:`~repro.join.merge_join.MergeJoin` on its slice pair, and the
  coordinator concatenates the per-slice pair lists in partition order —
  which *is* the serial output order, since serial R-sorted order is the
  concatenation of the slices' sorted orders.  Duplicate answers (same
  projected tuple from different pairs) are then ``max``-merged by
  :class:`~repro.data.relation.FuzzyRelation` exactly as in the serial
  path.

The join degrades to the serial path — returning ``None`` rather than
raising — when statistics yield no usable boundaries, fewer than two
slices are non-empty, one slice holds nearly everything (skew), the
partition writes hit :class:`~repro.errors.DiskFullError`, or a slice's
merge window overflows the buffer pool
(:class:`~repro.join.merge_join.WindowOverflowError` — slice page
alignment can need one more frame than the serial window).  Genuine
execution faults inside a worker cancel the sibling workers through the
shared :class:`~repro.parallel.executor.LinkedCancelToken` and surface
as one typed error.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..data.tuples import FuzzyTuple
from ..errors import DiskFullError
from ..fuzzy.compare import ComparisonKernel
from ..fuzzy.interval_order import sort_key
from ..join.merge_join import MergeJoin, WindowOverflowError
from ..join.predicates import PairDegree
from ..resilience import CancelToken, QueryGuard
from ..sort.runs import RunWriter
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .executor import gather_partitions
from .partitioner import RangePartitioner
from .sort import PARTITION_PHASE, _partition_counter

Pair = Tuple[FuzzyTuple, FuzzyTuple, float]


def replicate_inner(
    disk: SimulatedDisk,
    inner: HeapFile,
    inner_attr: str,
    bands: List[Optional[Tuple[object, object]]],
    stats: OperationStats,
) -> List[Optional[HeapFile]]:
    """Write the inner relation's slice files, replicating the overlap band.

    ``bands[i]`` is the ``(min_b, max_e)`` reach of slice ``i``'s R-tuples
    (``None`` for an empty slice).  An S-tuple is routed into every slice
    whose band its support ``[b, e]`` intersects — one tuple near a
    boundary is written into both adjacent slices.  One charged read pass
    plus the replicated writes, under the ``partition`` phase.
    """
    key_index = inner.schema.index_of(inner_attr)
    tag = next(_partition_counter)
    names = [
        None if band is None else f"__part_{inner.name}_{tag}_{i}"
        for i, band in enumerate(bands)
    ]
    writers = [
        None if name is None else RunWriter(disk, name, inner.serializer)
        for name in names
    ]
    counts = [0] * len(bands)
    ok = False
    try:
        with disk.use_stats(stats), stats.enter_phase(PARTITION_PHASE):
            for page_index in range(inner.n_pages):
                page = disk.read_page(inner.name, page_index)
                for record in page.records():
                    s = inner.serializer.decode(record)
                    b, e = sort_key(s[key_index])
                    for i, band in enumerate(bands):
                        if band is None:
                            continue
                        low, high = band
                        stats.count_crisp()
                        if e >= low and b <= high:
                            stats.count_move()
                            writers[i].append(s)
                            counts[i] += 1
            for writer in writers:
                if writer is not None:
                    writer.close()
        ok = True
    finally:
        if not ok:
            for writer in writers:
                if writer is not None:
                    writer.discard()
            for name in names:
                if name is not None:
                    disk.delete(name)
    heaps: List[Optional[HeapFile]] = []
    for name, count in zip(names, counts):
        if name is None:
            heaps.append(None)
            continue
        heap = HeapFile(name, inner.schema, disk, inner.serializer.fixed_size)
        heap.n_tuples = count
        heaps.append(heap)
    return heaps


class PartitionedMergeJoin:
    """Coordinator for the partitioned sort + merge-join of one equi-band."""

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer_pages: int,
        stats: OperationStats,
        workers: int,
        metrics=None,
        tracer=None,
        guard: Optional[QueryGuard] = None,
        cancel: Optional[CancelToken] = None,
        kernel: Optional[ComparisonKernel] = None,
        skew_limit: float = 0.8,
        sample_seed: int = 0,
        partitioner: Optional[RangePartitioner] = None,
    ):
        self.disk = disk
        self.buffer_pages = buffer_pages
        self.stats = stats
        self.workers = workers
        self.metrics = metrics
        self.tracer = tracer
        self.guard = guard
        self.cancel = cancel
        self.kernel = kernel
        self.skew_limit = skew_limit
        self.sample_seed = sample_seed
        #: An explicit partitioner overrides boundary sampling — the
        #: property tests use this to drive *arbitrary* partition counts.
        self.partitioner = partitioner
        #: Why the last :meth:`run` degraded to serial (``None`` = it ran).
        self.fallback_reason: Optional[str] = None

    def run(
        self,
        outer: HeapFile,
        outer_attr: str,
        inner: HeapFile,
        inner_attr: str,
        pair_degree: PairDegree,
    ) -> Optional[List[Pair]]:
        """All joining pairs, or ``None`` to degrade to the serial path.

        The pair list is in the exact order the serial merge-join would
        stream them; nothing is returned until every partition worker has
        finished, so a fault can never surface after pairs were consumed.
        """
        self.fallback_reason = None
        if self.workers < 2:
            return self._fallback("workers < 2")
        partitioner = self.partitioner
        if partitioner is None:
            partitioner = RangePartitioner.from_sample(
                outer, outer_attr, self.workers, seed=self.sample_seed, stats=self.stats
            )
        if partitioner is None:
            return self._fallback("no usable boundary statistics")
        try:
            return self._run_partitioned(
                partitioner, outer, outer_attr, inner, inner_attr, pair_degree
            )
        except DiskFullError:
            return self._fallback("partition spill hit DiskFullError")
        except WindowOverflowError:
            # Slice files round tuple counts up to whole pages, so a
            # slice's S window can span one page more than the serial
            # window on the same data.  Parallelism must never *fail*
            # where serial would succeed — hand the join back.
            return self._fallback("merge window exceeded the buffer in a partition")

    def _fallback(self, reason: str) -> Optional[List[Pair]]:
        self.fallback_reason = reason
        return None

    def _run_partitioned(
        self,
        partitioner: RangePartitioner,
        outer: HeapFile,
        outer_attr: str,
        inner: HeapFile,
        inner_attr: str,
        pair_degree: PairDegree,
    ) -> Optional[List[Pair]]:
        from .sort import partition_heap

        outer_parts = partition_heap(
            self.disk, outer, outer_attr, partitioner, self.stats
        )
        inner_parts: List[Optional[HeapFile]] = []
        try:
            non_empty = [p for p in outer_parts if p.n_tuples > 0]
            if len(non_empty) < 2:
                return self._fallback("fewer than two non-empty partitions")
            largest = max(p.n_tuples for p in outer_parts)
            if largest > self.skew_limit * max(1, outer.n_tuples):
                return self._fallback(
                    f"skewed partitioning (largest slice holds {largest} of "
                    f"{outer.n_tuples} tuples)"
                )
            bands = self._reach_bands(outer_parts, outer_attr)
            inner_parts = replicate_inner(
                self.disk, inner, inner_attr, bands, self.stats
            )
            return self._join_partitions(
                partitioner, outer_parts, outer_attr, inner_parts, inner_attr,
                pair_degree,
            )
        finally:
            for part in outer_parts:
                self.disk.delete(part.name)
            for part in inner_parts:
                if part is not None:
                    self.disk.delete(part.name)

    def _reach_bands(
        self, outer_parts: List[HeapFile], outer_attr: str
    ) -> List[Optional[Tuple[object, object]]]:
        """Per-slice ``(min b, max e)`` reach of the R-tuples, one read pass."""
        bands: List[Optional[Tuple[object, object]]] = []
        with self.disk.use_stats(self.stats), self.stats.enter_phase(PARTITION_PHASE):
            for part in outer_parts:
                if part.n_tuples == 0:
                    bands.append(None)
                    continue
                key_index = part.schema.index_of(outer_attr)
                low = high = None
                for page_index in range(part.n_pages):
                    page = self.disk.read_page(part.name, page_index)
                    for record in page.records():
                        b, e = sort_key(part.serializer.decode(record)[key_index])
                        self.stats.count_crisp(2)
                        low = b if low is None or b < low else low
                        high = e if high is None or e > high else high
                bands.append((low, high))
        return bands

    def _join_partitions(
        self,
        partitioner: RangePartitioner,
        outer_parts: List[HeapFile],
        outer_attr: str,
        inner_parts: List[Optional[HeapFile]],
        inner_attr: str,
        pair_degree: PairDegree,
    ) -> List[Pair]:
        deadline = self.guard.deadline if self.guard is not None else None
        clock = self.tracer.now if self.tracer is not None else None
        tasks = []
        live = [
            (i, outer_parts[i], inner_parts[i])
            for i in range(len(outer_parts))
            if outer_parts[i].n_tuples > 0 and inner_parts[i] is not None
        ]

        def make_task(i: int, r_part: HeapFile, s_part: HeapFile):
            def task(linked: CancelToken):
                started = clock() if clock is not None else 0.0
                worker_stats = OperationStats()
                worker_guard = QueryGuard(deadline=deadline, token=linked)
                with self.disk.use_guard(worker_guard):
                    join = MergeJoin(
                        self.disk, self.buffer_pages, worker_stats,
                        kernel=self.kernel,
                    )
                    pairs = list(
                        join.pairs(r_part, outer_attr, s_part, inner_attr, pair_degree)
                    )
                ended = clock() if clock is not None else 0.0
                return i, pairs, worker_stats, started, ended

            return task

        for i, r_part, s_part in live:
            tasks.append(make_task(i, r_part, s_part))
        results = gather_partitions(tasks, self.workers, self.cancel)
        results.sort(key=lambda item: item[0])

        out: List[Pair] = []
        specs = partitioner.specs()
        for i, pairs, worker_stats, started, ended in results:
            self.stats.merge(worker_stats)
            out.extend(pairs)
            if self.metrics is not None:
                from ..observe.metrics import PartitionMetrics

                self.metrics.record_partition(PartitionMetrics(
                    index=i,
                    lower=specs[i].lower,
                    upper=specs[i].upper,
                    outer_tuples=outer_parts[i].n_tuples,
                    inner_tuples=inner_parts[i].n_tuples,
                    outer_pages=outer_parts[i].n_pages,
                    inner_pages=inner_parts[i].n_pages,
                    rows_out=len(pairs),
                    stats=worker_stats,
                ))
            if self.tracer is not None:
                self.tracer.record(
                    f"partition {i}", started, ended, rows=len(pairs),
                )
        return out
