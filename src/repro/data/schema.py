"""Relation schemas.

A fuzzy relation with schema ``A1, ..., An`` is a fuzzy subset of
``P(A1) x ... x P(An)`` — every attribute holds a possibility distribution
over its domain, and the system-supplied membership-degree attribute ``D``
is carried on the tuple itself (see :mod:`repro.data.tuples`), not in the
schema.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .types import AttributeType


class Attribute:
    """A named attribute with a typed domain.

    ``domain`` optionally names the vocabulary scope for linguistic terms
    (e.g. both ``M.AGE`` and ``F.AGE`` share the ``AGE`` domain).
    """

    __slots__ = ("name", "type", "domain")

    def __init__(self, name: str, type: AttributeType = AttributeType.NUMERIC,
                 domain: Optional[str] = None):
        self.name = name
        self.type = type
        self.domain = domain if domain is not None else name

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.type.value}, domain={self.domain!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return (self.name, self.type, self.domain) == (other.name, other.type, other.domain)

    def __hash__(self) -> int:
        return hash((self.name, self.type, self.domain))


AttributeSpec = Union[Attribute, str, Tuple[str, AttributeType]]


class Schema:
    """An ordered list of attributes with name-based lookup.

    Attribute specs may be full :class:`Attribute` objects, bare names
    (defaulting to numeric), or ``(name, type)`` pairs.
    """

    __slots__ = ("attributes", "_index")

    def __init__(self, attributes: Iterable[AttributeSpec]):
        attrs: List[Attribute] = []
        for spec in attributes:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            elif isinstance(spec, str):
                attrs.append(Attribute(spec))
            else:
                name, atype = spec
                attrs.append(Attribute(name, atype))
        self.attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._index = {a.name: i for i, a in enumerate(self.attributes)}
        if len(self._index) != len(self.attributes):
            raise ValueError("duplicate attribute names in schema")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def index_of(self, name: str) -> int:
        """Position of the attribute named ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no attribute {name!r} in schema {self.names()}") from None

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` called ``name``; raises ``KeyError`` if absent."""
        return self.attributes[self.index_of(name)]

    def names(self) -> List[str]:
        """Attribute names in schema order."""
        return [a.name for a in self.attributes]

    def project(self, names: Sequence[str]) -> "Schema":
        """The schema of a projection onto ``names`` (order preserved)."""
        return Schema([self.attribute(n) for n in names])

    def concat(self, other: "Schema", prefix_self: str = "", prefix_other: str = "") -> "Schema":
        """Schema of a cross product; optional prefixes disambiguate clashes."""
        attrs: List[Attribute] = []
        for a in self.attributes:
            attrs.append(Attribute(prefix_self + a.name, a.type, a.domain))
        for a in other.attributes:
            attrs.append(Attribute(prefix_other + a.name, a.type, a.domain))
        return Schema(attrs)

    def __repr__(self) -> str:
        return f"Schema({self.names()})"
