"""The fuzzy relational data model: schemas, tuples, relations, catalogs,
composable algebra, and CSV/JSON loaders."""

from . import algebra
from .catalog import Catalog, UnknownRelationError
from .io import LoadError, dump_json, load_csv, load_json, parse_value
from .relation import FuzzyRelation
from .schema import Attribute, Schema
from .tuples import FuzzyTuple
from .types import AttributeType

__all__ = [
    "AttributeType",
    "Attribute",
    "Schema",
    "FuzzyTuple",
    "FuzzyRelation",
    "Catalog",
    "UnknownRelationError",
    "algebra",
    "load_csv",
    "load_json",
    "dump_json",
    "parse_value",
    "LoadError",
]
