"""Loading fuzzy relations from CSV and JSON.

Textual value syntax (shared by both formats):

* ``42`` / ``42.5``             — crisp numbers
* ``medium young``              — linguistic terms (resolved against the
  vocabulary in the attribute's domain) or, failing that, crisp labels
* ``[a, b, c, d]``              — trapezoid abscissae
* ``[a, d]``                    — a rectangular (interval) distribution
* ``{"x": 1.0, "y": 0.8}``      — discrete possibility distributions
  (JSON objects; in CSV, embedded as a JSON string)

Each row may carry a ``D`` column with the tuple's membership degree
(default 1.0).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Optional, Union

from ..fuzzy.crisp import CrispLabel, CrispNumber
from ..fuzzy.discrete import DiscreteDistribution
from ..fuzzy.distribution import Distribution
from ..fuzzy.linguistic import Vocabulary, lift
from ..fuzzy.trapezoid import TrapezoidalNumber
from .relation import FuzzyRelation
from .schema import Schema
from .tuples import FuzzyTuple


class LoadError(ValueError):
    """A row or value could not be interpreted."""


def parse_value(
    raw: Union[str, int, float, list, dict],
    vocabulary: Optional[Vocabulary] = None,
    domain: Optional[str] = None,
) -> Distribution:
    """Interpret one textual/JSON value as a possibility distribution."""
    if isinstance(raw, Distribution):
        return raw
    if isinstance(raw, bool):
        raise LoadError("boolean values are not supported")
    if isinstance(raw, (int, float)):
        return CrispNumber(raw)
    if isinstance(raw, list):
        return _from_list(raw)
    if isinstance(raw, dict):
        return _from_dict(raw)
    if not isinstance(raw, str):
        raise LoadError(f"cannot interpret {raw!r}")
    text = raw.strip()
    if not text:
        raise LoadError("empty value")
    if text[0] in "[{":
        try:
            return parse_value(json.loads(text), vocabulary, domain)
        except json.JSONDecodeError as exc:
            raise LoadError(f"malformed structured value {text!r}: {exc}") from exc
    try:
        return CrispNumber(float(text))
    except ValueError:
        pass
    return lift(text, vocabulary, domain)


def _from_dict(items: dict) -> DiscreteDistribution:
    """JSON object -> discrete distribution; numeric-looking keys become
    numbers so a dump/load round trip preserves the domain type."""
    def convert(key):
        if isinstance(key, str):
            try:
                return float(key)
            except ValueError:
                return key
        return key

    converted = {convert(k): v for k, v in items.items()}
    kinds = {isinstance(k, float) for k in converted}
    if len(kinds) > 1:
        # Mixed numeric/symbolic keys: keep everything symbolic.
        converted = {str(k): v for k, v in items.items()}
    return DiscreteDistribution(converted)


def _from_list(values: list) -> Distribution:
    numbers = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise LoadError(f"trapezoid abscissae must be numbers, got {v!r}")
        numbers.append(float(v))
    if len(numbers) == 4:
        return TrapezoidalNumber(*numbers)
    if len(numbers) == 2:
        return TrapezoidalNumber.rectangular(*numbers)
    if len(numbers) == 3:
        return TrapezoidalNumber.triangular(*numbers)
    raise LoadError(f"expected 2, 3, or 4 abscissae, got {len(numbers)}")


def relation_from_records(
    schema: Schema,
    records: Iterable[dict],
    vocabulary: Optional[Vocabulary] = None,
) -> FuzzyRelation:
    """Build a relation from dict records keyed by attribute name."""
    out = FuzzyRelation(schema)
    for i, record in enumerate(records):
        values: List[Distribution] = []
        for attr in schema:
            if attr.name not in record:
                raise LoadError(f"record {i} is missing attribute {attr.name!r}")
            values.append(parse_value(record[attr.name], vocabulary, attr.domain))
        degree = float(record.get("D", 1.0))
        out.add(FuzzyTuple(values, degree))
    return out


def load_csv(
    source: Union[str, io.TextIOBase],
    schema: Schema,
    vocabulary: Optional[Vocabulary] = None,
) -> FuzzyRelation:
    """Load a relation from CSV text or a file-like object.

    The header must name every schema attribute (extra columns besides
    ``D`` are rejected to catch typos).
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    reader = csv.DictReader(source)
    if reader.fieldnames is None:
        raise LoadError("CSV input has no header row")
    expected = set(schema.names()) | {"D"}
    unknown = [f for f in reader.fieldnames if f not in expected]
    if unknown:
        raise LoadError(f"unknown CSV columns: {unknown}")
    return relation_from_records(schema, reader, vocabulary)


def load_json(
    source: Union[str, io.TextIOBase],
    schema: Schema,
    vocabulary: Optional[Vocabulary] = None,
) -> FuzzyRelation:
    """Load a relation from a JSON array of objects."""
    if not isinstance(source, str):
        source = source.read()
    records = json.loads(source)
    if not isinstance(records, list):
        raise LoadError("JSON input must be an array of objects")
    return relation_from_records(schema, records, vocabulary)


def dump_json(relation: FuzzyRelation) -> str:
    """Serialize a relation to the JSON record format (round-trippable)."""
    records = []
    for t in relation:
        record = {}
        for attr, value in zip(relation.schema, t.values):
            record[attr.name] = _value_to_json(value)
        record["D"] = t.degree
        records.append(record)
    return json.dumps(records, indent=2, sort_keys=True)


def _value_to_json(value: Distribution):
    if isinstance(value, CrispNumber):
        return value.value
    if isinstance(value, CrispLabel):
        return value.value
    if isinstance(value, TrapezoidalNumber):
        return [value.a, value.b, value.c, value.d]
    if isinstance(value, DiscreteDistribution):
        return {str(k) if not isinstance(k, float) else k: v for k, v in value.items.items()}
    raise LoadError(f"cannot serialize {type(value).__name__}")
