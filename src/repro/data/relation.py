"""In-memory fuzzy relations: fuzzy sets of fuzzy tuples.

This is the logical representation the correctness oracle
(:mod:`repro.engine.semantics`) computes over; the storage-backed
counterpart used by the cost experiments is :class:`repro.storage.heap.HeapFile`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence

from ..fuzzy.distribution import Distribution
from ..fuzzy.linguistic import Vocabulary, lift
from ..fuzzy.logic import meets_threshold
from .schema import Schema
from .tuples import FuzzyTuple


class FuzzyRelation:
    """An ordinary container for a fuzzy set of tuples.

    Tuples with identical values are merged under fuzzy OR: the stored
    degree is the maximum of the inserted degrees.  Tuples whose degree is 0
    are never members (``mu_R(r) > 0`` defines membership).
    """

    def __init__(self, schema: Schema, tuples: Iterable[FuzzyTuple] = ()):
        self.schema = schema
        self._tuples: Dict[Hashable, FuzzyTuple] = {}
        for t in tuples:
            self.add(t)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence],
        vocabulary: Optional[Vocabulary] = None,
        degrees: Optional[Sequence[float]] = None,
    ) -> "FuzzyRelation":
        """Build a relation from plain Python rows.

        Each row supplies one value per schema attribute; an optional extra
        trailing element is the membership degree (defaults to 1).  Strings
        are resolved against the vocabulary within the attribute's domain.
        """
        relation = cls(schema)
        rows = list(rows)
        if degrees is not None and len(degrees) != len(rows):
            raise ValueError("degrees must align with rows")
        for i, row in enumerate(rows):
            row = list(row)
            if degrees is not None:
                degree = degrees[i]
            elif len(row) == len(schema) + 1:
                degree = float(row.pop())
            else:
                degree = 1.0
            if len(row) != len(schema):
                raise ValueError(
                    f"row has {len(row)} values but schema has {len(schema)} attributes"
                )
            values = [
                lift(value, vocabulary, attr.domain)
                for value, attr in zip(row, schema.attributes)
            ]
            relation.add(FuzzyTuple(values, degree))
        return relation

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, t: FuzzyTuple) -> None:
        """Insert a tuple, merging duplicates by max degree (fuzzy OR)."""
        if len(t) != len(self.schema):
            raise ValueError(
                f"tuple arity {len(t)} does not match schema arity {len(self.schema)}"
            )
        if t.degree <= 0.0:
            return
        key = t.value_key()
        existing = self._tuples.get(key)
        if existing is None or t.degree > existing.degree:
            self._tuples[key] = t

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FuzzyTuple]:
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)

    def __bool__(self) -> bool:
        return bool(self._tuples)

    def tuples(self) -> List[FuzzyTuple]:
        """The tuples as a list, in insertion order."""
        return list(self._tuples.values())

    def degree_of(self, values: Sequence[Distribution]) -> float:
        """Membership degree of the tuple with these values (0 if absent)."""
        probe = FuzzyTuple(values, 1.0)
        existing = self._tuples.get(probe.value_key())
        return existing.degree if existing is not None else 0.0

    def column(self, name: str) -> List[Distribution]:
        """Every value of attribute ``name``, in tuple order."""
        idx = self.schema.index_of(name)
        return [t[idx] for t in self]

    # ------------------------------------------------------------------
    # Relational helpers
    # ------------------------------------------------------------------
    def with_threshold(self, threshold: float) -> "FuzzyRelation":
        """Apply a WITH clause: keep tuples meeting the degree threshold."""
        out = FuzzyRelation(self.schema)
        for t in self:
            if meets_threshold(t.degree, threshold):
                out.add(t)
        return out

    def project(self, names: Sequence[str]) -> "FuzzyRelation":
        """Projection with duplicate elimination under fuzzy OR."""
        indices = [self.schema.index_of(n) for n in names]
        out = FuzzyRelation(self.schema.project(names))
        for t in self:
            out.add(t.project(indices))
        return out

    def same_as(self, other: "FuzzyRelation", tolerance: float = 1e-9) -> bool:
        """Fuzzy-relation equality: same tuples with (near-)equal degrees.

        The paper's notion of query equivalence requires "not only the
        answers contain the same set of tuples but also the corresponding
        tuples have the same membership degree".
        """
        if len(self) != len(other):
            return False
        for key, t in self._tuples.items():
            o = other._tuples.get(key)
            if o is None or abs(o.degree - t.degree) > tolerance:
                return False
        return True

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def pretty(self, value_format=repr, sort: bool = True) -> str:
        """A fixed-width text rendering (for examples and debugging)."""
        header = self.schema.names() + ["D"]
        rows = []
        for t in self:
            rows.append([value_format(v) for v in t.values] + [f"{t.degree:.4g}"])
        if sort:
            rows.sort()
        widths = [len(h) for h in header]
        for row in rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells):
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        sep = "-+-".join("-" * w for w in widths)
        return "\n".join([line(header), sep] + [line(r) for r in rows])

    def __repr__(self) -> str:
        return f"FuzzyRelation({self.schema.names()}, {len(self)} tuples)"
