"""Composable fuzzy relational algebra over in-memory relations.

Section 2 of the paper argues that measuring satisfaction by possibility
*alone* is what keeps the algebra composable ("it is guaranteed that
algebraic operations can be composed and nested query becomes practical")
— unlike the possibility/necessity double-measure system, where every
operation yields two relations and composition breaks down.

These operators close over :class:`~repro.data.relation.FuzzyRelation`:
each takes fuzzy relations and returns one, threading membership degrees
by ``min`` through conjunction/join and ``max`` through duplicate
elimination and union, exactly as the query engine does.  They are the
algebraic backbone the SQL semantics is defined against, and they are
also handy on their own for programmatic use.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..fuzzy.compare import Op, possibility
from ..fuzzy.distribution import Distribution
from .relation import FuzzyRelation
from .schema import Schema
from .tuples import FuzzyTuple

Predicate = Callable[[FuzzyTuple], float]


def select(relation: FuzzyRelation, predicate: Predicate) -> FuzzyRelation:
    """Fuzzy selection: each tuple's degree becomes ``min(mu, d(p))``."""
    out = FuzzyRelation(relation.schema)
    for t in relation:
        degree = min(t.degree, predicate(t))
        if degree > 0.0:
            out.add(t.with_degree(degree))
    return out


def select_compare(
    relation: FuzzyRelation,
    attribute: str,
    op: Op,
    value: Distribution,
) -> FuzzyRelation:
    """Selection by a fuzzy comparison against a constant distribution."""
    index = relation.schema.index_of(attribute)
    return select(relation, lambda t: possibility(t[index], op, value))


def project(relation: FuzzyRelation, attributes: Sequence[str]) -> FuzzyRelation:
    """Projection with fuzzy-OR duplicate elimination."""
    return relation.project(attributes)


def cross(left: FuzzyRelation, right: FuzzyRelation) -> FuzzyRelation:
    """Cross product; degrees combine by min."""
    from ..engine.operators import concat_schemas

    out = FuzzyRelation(concat_schemas(left.schema, right.schema))
    for r in left:
        for s in right:
            out.add(r.concat(s, min(r.degree, s.degree)))
    return out


def join(
    left: FuzzyRelation,
    left_attr: str,
    op: Op,
    right: FuzzyRelation,
    right_attr: str,
) -> FuzzyRelation:
    """Fuzzy theta-join: pair degree ``min(mu_r, mu_s, d(r.A op s.B))``."""
    from ..engine.operators import concat_schemas

    li = left.schema.index_of(left_attr)
    ri = right.schema.index_of(right_attr)
    out = FuzzyRelation(concat_schemas(left.schema, right.schema))
    for r in left:
        for s in right:
            degree = min(r.degree, s.degree)
            if degree == 0.0:
                continue
            degree = min(degree, possibility(r[li], op, s[ri]))
            if degree > 0.0:
                out.add(r.concat(s, degree))
    return out


def union(left: FuzzyRelation, right: FuzzyRelation) -> FuzzyRelation:
    """Fuzzy union: degrees combine by max (Zadeh OR)."""
    _check_compatible(left, right)
    out = FuzzyRelation(left.schema)
    for t in left:
        out.add(t)
    for t in right:
        out.add(t)
    return out


def intersect(left: FuzzyRelation, right: FuzzyRelation) -> FuzzyRelation:
    """Fuzzy intersection: degrees combine by min (Zadeh AND)."""
    _check_compatible(left, right)
    out = FuzzyRelation(left.schema)
    for t in left:
        other = right.degree_of(t.values)
        degree = min(t.degree, other)
        if degree > 0.0:
            out.add(t.with_degree(degree))
    return out


def difference(left: FuzzyRelation, right: FuzzyRelation) -> FuzzyRelation:
    """Fuzzy difference: ``min(mu_L(t), 1 - mu_R(t))``."""
    _check_compatible(left, right)
    out = FuzzyRelation(left.schema)
    for t in left:
        degree = min(t.degree, 1.0 - right.degree_of(t.values))
        if degree > 0.0:
            out.add(t.with_degree(degree))
    return out


def rename(relation: FuzzyRelation, mapping: dict) -> FuzzyRelation:
    """Rename attributes (schema-level only; tuples are shared)."""
    from .schema import Attribute

    attrs = [
        Attribute(mapping.get(a.name, a.name), a.type, a.domain)
        for a in relation.schema
    ]
    out = FuzzyRelation(Schema(attrs))
    for t in relation:
        out.add(t)
    return out


def alpha_cut(relation: FuzzyRelation, alpha: float) -> FuzzyRelation:
    """The crisp-membership core: keep tuples with degree >= alpha at 1.0.

    Useful for presenting "sure enough" answers; note this is a *relation*
    alpha-cut (on membership degrees), not a distribution alpha-cut.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    out = FuzzyRelation(relation.schema)
    for t in relation:
        if t.degree >= alpha:
            out.add(t.with_degree(1.0))
    return out


def _check_compatible(left: FuzzyRelation, right: FuzzyRelation) -> None:
    if len(left.schema) != len(right.schema):
        raise ValueError(
            f"incompatible schemas: {left.schema.names()} vs {right.schema.names()}"
        )
