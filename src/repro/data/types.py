"""Attribute domain types for the fuzzy relational model."""

from __future__ import annotations

import enum


class AttributeType(enum.Enum):
    """The crisp universe of discourse underlying an attribute.

    ``NUMERIC`` domains support the interval order, fuzzy arithmetic, and
    order comparisons; ``LABEL`` domains are symbolic (names, categories)
    and compare by equality or an explicit similarity table.
    """

    NUMERIC = "numeric"
    LABEL = "label"
