"""A catalog of named fuzzy relations plus the session vocabulary."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..fuzzy.linguistic import Vocabulary
from .relation import FuzzyRelation


class UnknownRelationError(KeyError):
    """Raised when a query references a relation not in the catalog."""


class Catalog:
    """Name -> relation mapping used by binders and evaluators."""

    def __init__(self, vocabulary: Optional[Vocabulary] = None):
        self._relations: Dict[str, FuzzyRelation] = {}
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()

    @staticmethod
    def _norm(name: str) -> str:
        return name.upper()

    def register(self, name: str, relation: FuzzyRelation) -> None:
        """Bind ``name`` (case-insensitive) to ``relation``, replacing any prior
        binding.
        """
        self._relations[self._norm(name)] = relation

    def remove(self, name: str) -> None:
        """Forget a relation; raises for unknown names."""
        try:
            del self._relations[self._norm(name)]
        except KeyError:
            raise UnknownRelationError(name) from None

    def get(self, name: str) -> FuzzyRelation:
        """The relation bound to ``name``; raises :class:`UnknownRelationError`."""
        try:
            return self._relations[self._norm(name)]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return self._norm(name) in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def names(self):
        """Sorted names of all registered relations."""
        return sorted(self._relations)

    def copy(self) -> "Catalog":
        """A shallow copy: same relations and vocabulary, separate namespace.

        Used by unnesting pipelines to register temporary relations without
        polluting the caller's catalog.
        """
        clone = Catalog(self.vocabulary)
        clone._relations.update(self._relations)
        return clone
