"""Fuzzy tuples: attribute distributions plus a membership degree.

A tuple ``r`` belongs to its relation with degree ``mu_R(r) = r.D in (0, 1]``;
the degree states to what extent the tuple belongs to the concept the
relation represents (for answer relations: to what extent the underlying
data satisfies the query condition).
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from ..fuzzy.distribution import Distribution


class FuzzyTuple:
    """An immutable tuple of distributions with membership degree ``D``.

    Identity (hash/equality) is over the *values only* — two tuples with the
    same values but different degrees are duplicates in the fuzzy-set sense
    and merge under fuzzy OR (max degree) during duplicate elimination.
    """

    __slots__ = ("values", "degree")

    def __init__(self, values: Sequence[Distribution], degree: float = 1.0):
        degree = float(degree)
        if not 0.0 <= degree <= 1.0:
            raise ValueError(f"membership degree must be in [0, 1], got {degree}")
        for v in values:
            if not isinstance(v, Distribution):
                raise TypeError(f"tuple values must be Distributions, got {type(v).__name__}")
        self.values: Tuple[Distribution, ...] = tuple(values)
        self.degree = degree

    def __getitem__(self, index: int) -> Distribution:
        return self.values[index]

    def __len__(self) -> int:
        return len(self.values)

    def value_key(self) -> Hashable:
        """Canonical key of the values (ignores the degree)."""
        return tuple(v.key() for v in self.values)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FuzzyTuple):
            return NotImplemented
        return self.value_key() == other.value_key()

    def __hash__(self) -> int:
        return hash(self.value_key())

    def with_degree(self, degree: float) -> "FuzzyTuple":
        """A copy of this tuple carrying a different membership degree."""
        return FuzzyTuple(self.values, degree)

    def project(self, indices: Sequence[int]) -> "FuzzyTuple":
        """Project onto the given value positions, keeping the degree."""
        return FuzzyTuple(tuple(self.values[i] for i in indices), self.degree)

    def concat(self, other: "FuzzyTuple", degree: float) -> "FuzzyTuple":
        """Concatenate values for a join result with the supplied degree."""
        return FuzzyTuple(self.values + other.values, degree)

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"FuzzyTuple(({inner}), D={self.degree:g})"
