"""The user-facing facade: a fuzzy database session.

:class:`FuzzyDatabase` bundles a catalog, a vocabulary, and the query
machinery behind one ``execute()`` method that accepts both DDL/DML and
queries::

    db = FuzzyDatabase()
    db.execute("CREATE TABLE M (ID NUMERIC, NAME LABEL, AGE NUMERIC ON 'AGE')")
    db.execute("DEFINE 'medium young' ON 'AGE' AS '[20, 25, 30, 35]'")
    db.execute("INSERT INTO M VALUES (201, 'Allen', 24)")
    answer = db.execute("SELECT M.NAME FROM M WHERE M.AGE = 'medium young'")

Queries are unnested automatically when a rewrite applies (the point of
the paper); ``db.explain(sql)`` shows what the optimizer would do.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .data.catalog import Catalog
from .data.io import parse_value
from .data.relation import FuzzyRelation
from .data.schema import Attribute, Schema
from .data.tuples import FuzzyTuple
from .data.types import AttributeType
from .engine.aggregates import DegreePolicy
from .engine.semantics import NaiveEvaluator
from .fuzzy.linguistic import Vocabulary
from .service.plancache import PlanCache, normalize_sql
from .service.prepared import PlanArtifact, PreparedQuery
from .sql.ast import SelectQuery
from .sql.classify import classify
from .sql.params import (
    ParameterError,
    bind_parameters,
    count_parameters,
    referenced_tables,
)
from .sql.statements import (
    CreateTable,
    DefineTerm,
    DeleteFrom,
    DropTable,
    InsertInto,
    Statement,
    Update,
    parse_statement,
)
from .unnest.common import UnnestError
from .unnest.rewriter import unnest


class DatabaseError(Exception):
    """A statement could not be executed (unknown table, arity, ...)."""


class FuzzyDatabase:
    """An in-memory fuzzy relational database session."""

    def __init__(
        self,
        vocabulary: Optional[Vocabulary] = None,
        aggregate_policy: DegreePolicy = DegreePolicy.ONE,
        similarity=None,
        auto_unnest: bool = True,
    ):
        self.catalog = Catalog(vocabulary)
        self.aggregate_policy = aggregate_policy
        self.similarity = similarity
        self.auto_unnest = auto_unnest
        #: Workload-level sinks (see :mod:`repro.observe`): assign a
        #: :class:`~repro.observe.registry.MetricsRegistry`, a
        #: :class:`~repro.observe.querylog.QueryLog`, and/or a
        #: :class:`~repro.observe.recorder.FlightRecorder` and every query
        #: is folded in / logged / recorded automatically.
        self.registry = None
        self.query_log = None
        self.recorder = None
        #: LRU cache of prepared plans for textual ``query()`` calls;
        #: entries validate against tuple counts and the schema epoch.
        #: Assign ``None`` to disable caching.
        self.plan_cache: Optional[PlanCache] = PlanCache()
        # Bumped by DDL (CREATE/DROP/DEFINE/register): any schema or
        # vocabulary change invalidates every cached plan.
        self._schema_epoch = 0

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Union[FuzzyRelation, str]:
        """Run one statement; queries return relations, DDL returns messages."""
        statement = parse_statement(sql)
        return self.execute_statement(statement, sql_text=sql)

    def execute_statement(
        self, statement: Statement, sql_text: Optional[str] = None
    ) -> Union[FuzzyRelation, str]:
        """Execute a parsed statement: queries return a relation, DDL/DML a status
        string.
        """
        if isinstance(statement, SelectQuery):
            return self.query(statement, sql_text=sql_text)
        if isinstance(statement, CreateTable):
            return self._create(statement)
        if isinstance(statement, InsertInto):
            return self._insert(statement)
        if isinstance(statement, DefineTerm):
            return self._define(statement)
        if isinstance(statement, DropTable):
            return self._drop(statement)
        if isinstance(statement, Update):
            return self._update(statement)
        if isinstance(statement, DeleteFrom):
            return self._delete(statement)
        raise DatabaseError(f"unsupported statement {statement!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        query: Union[str, SelectQuery],
        metrics=None,
        sql_text: Optional[str] = None,
        shards: Optional[int] = None,
        shard_on: Optional[str] = None,
    ) -> FuzzyRelation:
        """Run one SELECT; textual queries go through the plan cache.

        With ``shards=N`` (N >= 2) the catalog is materialized into a
        scratch *sharded* :class:`~repro.session.StorageSession` — each
        relation placed across N simulated disks on ``shard_on`` — and
        the query executes there via scatter-gather, bypassing this
        database's in-memory plan cache.  Results are bit-identical to
        the in-memory engine.
        """
        if sql_text is None and isinstance(query, str):
            sql_text = query
        if shards is not None and shards > 1:
            session = self._storage_session(shards=shards, shard_on=shard_on)
            statement = parse_statement(query) if isinstance(query, str) else query
            if not isinstance(statement, SelectQuery):
                raise DatabaseError("query() expects a SELECT statement")
            return session.query(statement, metrics=metrics)
        if isinstance(query, str):
            if self.plan_cache is not None:
                return self._query_cached(query, metrics)
            statement = parse_statement(query)
            if not isinstance(statement, SelectQuery):
                raise DatabaseError("query() expects a SELECT statement")
            query = statement
        elif sql_text is not None and self.plan_cache is not None:
            # execute()/execute_statement() arrive here with the statement
            # already parsed; the cache still keys on the SQL text.
            return self._query_cached(sql_text, metrics, statement=query)
        if (
            self.registry is not None
            or self.query_log is not None
            or self.recorder is not None
        ):
            import time

            from .observe.metrics import QueryMetrics

            collector = metrics if metrics is not None else QueryMetrics()
            started = time.perf_counter()
            result = self._query(query, collector)
            wall = time.perf_counter() - started
            self._observe_query(
                sql_text if sql_text is not None else repr(query),
                collector,
                wall,
                len(result),
            )
            return result
        return self._query(query, metrics)

    def _observe_query(self, sql_text, collector, wall, rows) -> None:
        """Fold one finished query into every attached workload sink."""
        if self.registry is not None:
            self.registry.observe(collector, wall_seconds=wall, rows=rows)
        if self.query_log is not None:
            self.query_log.record(sql_text, collector, wall_seconds=wall, rows=rows)
        if self.recorder is not None:
            self.recorder.record(sql_text, collector, wall_seconds=wall, rows=rows)

    def health(self, thresholds=None):
        """Evaluate the health rules over this database's lifetime registry.

        See :meth:`repro.session.StorageSession.health`; the in-memory
        engine has no time series, so the report always covers the
        :attr:`registry`'s totals.
        """
        from .observe.health import evaluate_health
        from .observe.timeseries import lifetime_window

        if self.registry is None:
            raise DatabaseError(
                "health() needs a registry attached "
                "(assign db.registry = MetricsRegistry())"
            )
        return evaluate_health(lifetime_window(self.registry), thresholds)

    def _query(self, query: SelectQuery, metrics) -> FuzzyRelation:
        if metrics is not None:
            metrics.nesting_type = classify(query, self.catalog).value
        if self.auto_unnest:
            try:
                plan = unnest(query, self.catalog)
                result = plan.execute(
                    self.catalog, self._make_evaluator, metrics=metrics
                )
                if metrics is not None and metrics.strategy is None:
                    metrics.strategy = "memory/unnest: rewritten in-memory plan"
                return result
            except UnnestError:
                pass
        if metrics is not None and metrics.rewrite is None:
            metrics.rewrite = "none (naive fallback)"
        if metrics is not None and metrics.strategy is None:
            metrics.strategy = "memory/naive: nested-loop evaluation"
        return self._make_evaluator(self.catalog).evaluate(query)

    # ------------------------------------------------------------------
    # Prepared statements and the plan cache
    # ------------------------------------------------------------------
    def prepare(self, sql: Union[str, SelectQuery]) -> PreparedQuery:
        """Parse, classify, and rewrite a SELECT once; execute many times.

        Statements may contain ``?`` placeholders (bound per execution,
        the ``WITH D >= ?`` threshold included).  Placeholder-free
        statements cache their :class:`~repro.unnest.pipeline.UnnestedPlan`
        so repeated executions skip the Theorem 4.1–8.1 rewrite work.
        """
        prepared = self._prepare(sql)
        if self.registry is not None:
            self.registry.count_prepared()
        return prepared

    def _prepare(
        self, sql: Union[str, SelectQuery], text: Optional[str] = None
    ) -> PreparedQuery:
        template = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(template, SelectQuery):
            raise DatabaseError("prepare() expects a SELECT statement")
        nesting = classify(template, self.catalog)
        n_params = count_parameters(template)
        if not self.auto_unnest:
            artifact = PlanArtifact("naive")
        elif n_params:
            # Rewrites are structural, but the in-memory pipeline embeds
            # the query values; bind first, dispatch per execution.
            artifact = PlanArtifact("dispatch")
        else:
            try:
                plan = unnest(template, self.catalog)
                artifact = PlanArtifact(
                    "memory", plan=plan, rule=plan.rule or plan.nesting_type
                )
            except UnnestError:
                artifact = PlanArtifact("naive")
        if text is None:
            text = sql if isinstance(sql, str) else str(sql)
        return PreparedQuery(self, text, template, nesting, n_params, artifact)

    def _query_cached(
        self, sql: str, metrics, statement: Optional[SelectQuery] = None
    ) -> FuzzyRelation:
        """The plan-cache lookup behind textual ``query()`` calls.

        ``statement`` carries an already-parsed AST (the ``execute()``
        path) so a cache miss does not re-parse the text.
        """
        key = normalize_sql(sql)
        prepared, outcome = self.plan_cache.lookup(key, self._stats_tokens)
        if prepared is None:
            prepared = self._prepare(sql if statement is None else statement, text=sql)
            if prepared.param_count:
                raise ParameterError(
                    "query() cannot run a statement with ? placeholders; "
                    "use prepare() and bind values per execution"
                )
            keys = sorted(referenced_tables(prepared.template)) + ["__SCHEMA__"]
            self.plan_cache.store(key, prepared, self._stats_tokens(keys))
        return self._execute_prepared(
            prepared, (), metrics=metrics, plan_cache_outcome=outcome
        )

    def _stats_tokens(self, keys) -> dict:
        """Current validity tokens: tuple counts plus the schema epoch."""
        tokens = {}
        for key in keys:
            if key == "__SCHEMA__":
                tokens[key] = self._schema_epoch
            else:
                try:
                    tokens[key] = len(self.catalog.get(key))
                except KeyError:
                    tokens[key] = -1
        return tokens

    def _execute_prepared(
        self,
        prepared: PreparedQuery,
        params: tuple = (),
        metrics=None,
        tracer=None,
        plan_cache_outcome: Optional[str] = None,
    ) -> FuzzyRelation:
        """Run a prepared statement (the back end of ``PreparedQuery.execute``).

        ``tracer`` is accepted for signature parity with
        :class:`~repro.session.StorageSession` but the in-memory engine
        records no spans; use :meth:`trace` for a span tree.
        """
        del tracer  # the in-memory engine has no span instrumentation
        need_collector = (
            metrics is not None
            or self.registry is not None
            or self.query_log is not None
            or self.recorder is not None
        )
        if not need_collector:
            result = self._run_prepared(prepared, params, None)
            prepared.executions += 1
            return result
        import time

        from .observe.metrics import QueryMetrics

        collector = metrics if metrics is not None else QueryMetrics()
        # query() calls served from the plan cache are not "prepared
        # executions" — only explicit PreparedQuery.execute calls are.
        collector.prepared = plan_cache_outcome is None
        collector.plan_cache = plan_cache_outcome
        collector.nesting_type = prepared.nesting.value
        started = time.perf_counter()
        result = self._run_prepared(prepared, params, collector)
        wall = time.perf_counter() - started
        self._observe_query(prepared.sql_text, collector, wall, len(result))
        prepared.executions += 1
        return result

    def _run_prepared(
        self, prepared: PreparedQuery, params: tuple, collector
    ) -> FuzzyRelation:
        artifact = prepared.artifact
        if artifact.kind == "memory":
            result = artifact.plan.execute(
                self.catalog, self._make_evaluator, metrics=collector
            )
            if collector is not None and collector.strategy is None:
                collector.strategy = "memory/unnest: rewritten in-memory plan"
            return result
        bound = prepared.bind(params)
        if artifact.kind == "dispatch":
            return self._query(bound, collector)
        if collector is not None:
            if collector.rewrite is None:
                collector.rewrite = "none (naive fallback)"
            if collector.strategy is None:
                collector.strategy = "memory/naive: nested-loop evaluation"
        return self._make_evaluator(self.catalog).evaluate(bound)

    def run_batch(self, queries, workers: int = 1) -> List[FuzzyRelation]:
        """Execute read-only SELECTs, optionally across worker threads.

        Results come back in input order regardless of completion order;
        ``workers <= 1`` degenerates to a serial loop.  Parallel and
        serial runs return bit-identical relations (asserted by the
        differential sweep) because each query is independent and the
        shared registry/log/plan-cache are internally locked.
        """
        from .parallel.executor import run_ordered

        return run_ordered(queries, self.query, workers)

    def explain(self, sql: Union[str, SelectQuery]) -> str:
        """Describe how a query would be executed."""
        query = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(query, SelectQuery):
            return str(query)
        nesting = classify(query, self.catalog)
        try:
            plan = unnest(query, self.catalog)
        except UnnestError:
            return f"nesting type: {nesting.value}\nnaive nested-loop evaluation"
        return f"nesting type: {nesting.value}\n{plan.explain()}"

    def explain_analyze(
        self,
        sql: Union[str, SelectQuery],
        shards: Optional[int] = None,
        shard_on: Optional[str] = None,
    ) -> str:
        """Run a query fully instrumented on the storage engine.

        The catalog's tables are materialized into a scratch
        :class:`~repro.session.StorageSession` (heap files on a simulated
        disk), the query runs there with a
        :class:`~repro.observe.metrics.QueryMetrics` collector attached,
        and the report shows the fired rewrite, the physical plan with
        estimated vs. measured cardinalities, sort shapes, buffer
        behaviour, and per-phase I/O counts.  With ``shards=N`` the
        scratch session is sharded (placement on ``shard_on``) and the
        report gains the ``shard i [lo, hi)`` table and failover counts.
        """
        query = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(query, SelectQuery):
            raise DatabaseError("explain_analyze() expects a SELECT statement")
        session = self._storage_session(shards=shards, shard_on=shard_on)
        return session.explain_analyze(query)

    def _storage_session(
        self, shards: Optional[int] = None, shard_on: Optional[str] = None
    ):
        """A scratch storage session over the catalog's current contents."""
        from .session import StorageSession

        session = StorageSession(
            vocabulary=self.catalog.vocabulary,
            aggregate_policy=self.aggregate_policy,
            shards=shards if shards is not None else 1,
            shard_on=shard_on,
        )
        for name in self.catalog.names():
            session.register(name, self.catalog.get(name))
        return session

    def trace(self, sql: Union[str, SelectQuery]):
        """Run a query on the storage engine with a span tracer attached.

        Like :meth:`explain_analyze`, the catalog is materialized into a
        scratch :class:`~repro.session.StorageSession`; the returned
        :class:`~repro.observe.trace.SpanTracer` holds the span tree
        (``render_tree()``) and exports Chrome ``trace_event`` JSON
        (``export(path)``).
        """
        from .session import StorageSession

        query = parse_statement(sql) if isinstance(sql, str) else sql
        if not isinstance(query, SelectQuery):
            raise DatabaseError("trace() expects a SELECT statement")
        session = StorageSession(
            vocabulary=self.catalog.vocabulary,
            aggregate_policy=self.aggregate_policy,
        )
        for name in self.catalog.names():
            session.register(name, self.catalog.get(name))
        return session.trace(query)

    def _make_evaluator(self, catalog: Catalog) -> NaiveEvaluator:
        return NaiveEvaluator(
            catalog,
            aggregate_policy=self.aggregate_policy,
            similarity=self.similarity,
        )

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _create(self, statement: CreateTable) -> str:
        if statement.name in self.catalog:
            raise DatabaseError(f"table {statement.name!r} already exists")
        attrs = []
        for column in statement.columns:
            attr_type = (
                AttributeType.LABEL if column.type_name == "LABEL" else AttributeType.NUMERIC
            )
            attrs.append(Attribute(column.name, attr_type, column.domain))
        self.catalog.register(statement.name, FuzzyRelation(Schema(attrs)))
        self._schema_epoch += 1
        return f"table {statement.name} created"

    def _insert(self, statement: InsertInto) -> str:
        relation = self._table(statement.table)
        degree = statement.degree if statement.degree is not None else 1.0
        for row in statement.rows:
            if len(row) != len(relation.schema):
                raise DatabaseError(
                    f"row has {len(row)} values but {statement.table} has "
                    f"{len(relation.schema)} attributes"
                )
            values = [
                parse_value(raw, self.catalog.vocabulary, attr.domain)
                for raw, attr in zip(row, relation.schema.attributes)
            ]
            relation.add(FuzzyTuple(values, degree))
        n = len(statement.rows)
        return f"{n} tuple{'s' if n != 1 else ''} inserted into {statement.table}"

    def _update(self, statement: Update) -> str:
        """Rewrite matching rows in place; a DML counts as an epoch bump.

        A row matches when ``min(degree, mu(WHERE))`` clears the ``WITH
        D >= z`` threshold (any positive match without one).  Updated
        rows keep their membership degree.
        """
        relation = self._table(statement.table)
        schema = relation.schema
        match = self._dml_match(statement.table, relation, statement.where)
        threshold = statement.threshold
        fresh = FuzzyRelation(schema)
        changed = 0
        for t in relation:
            d = min(t.degree, match(t))
            hit = (d >= threshold) if threshold is not None else (d > 0.0)
            if not hit:
                fresh.add(t)
                continue
            values = list(t.values)
            for column, raw in statement.assignments:
                try:
                    at = schema.index_of(column)
                except KeyError as exc:
                    raise DatabaseError(str(exc)) from None
                values[at] = parse_value(
                    raw, self.catalog.vocabulary, schema.attributes[at].domain
                )
            fresh.add(FuzzyTuple(values, t.degree))
            changed += 1
        self.catalog.register(statement.table, fresh)
        self._schema_epoch += 1
        return f"{changed} tuple{'s' if changed != 1 else ''} updated in {statement.table}"

    def _delete(self, statement: DeleteFrom) -> str:
        """Remove matching rows; a DML counts as an epoch bump."""
        relation = self._table(statement.table)
        match = self._dml_match(statement.table, relation, statement.where)
        threshold = statement.threshold
        fresh = FuzzyRelation(relation.schema)
        removed = 0
        for t in relation:
            d = min(t.degree, match(t))
            hit = (d >= threshold) if threshold is not None else (d > 0.0)
            if hit:
                removed += 1
            else:
                fresh.add(t)
        self.catalog.register(statement.table, fresh)
        self._schema_epoch += 1
        return f"{removed} tuple{'s' if removed != 1 else ''} deleted from {statement.table}"

    def _dml_match(self, table_as_typed: str, relation: FuzzyRelation, where):
        """Compile the WHERE conjunction of an UPDATE / DELETE.

        Mirrors :meth:`repro.session.StorageSession._dml_match`: only
        flat comparisons, columns unqualified or qualified by the table
        name.
        """
        if not where:
            return lambda t: 1.0
        from .engine.executor import CompileError, DmlColumns, compile_comparison
        from .sql.ast import Comparison

        columns = DmlColumns(
            {None, table_as_typed, table_as_typed.upper()}, relation.schema
        )
        compiled = []
        for predicate in where:
            if not isinstance(predicate, Comparison):
                raise DatabaseError(
                    "UPDATE/DELETE WHERE accepts only flat comparisons, "
                    f"not {predicate!r}"
                )
            try:
                compiled.append(
                    compile_comparison(
                        predicate, columns, columns, self.catalog.vocabulary
                    )
                )
            except CompileError as exc:
                raise DatabaseError(str(exc)) from None

        def degree(t: FuzzyTuple) -> float:
            d = 1.0
            for predicate in compiled:
                if d == 0.0:
                    return 0.0
                d = min(d, predicate(t, None))
            return d

        return degree

    def _define(self, statement: DefineTerm) -> str:
        value = parse_value(statement.shape, self.catalog.vocabulary, statement.domain)
        self.catalog.vocabulary.define(statement.term, value, statement.domain)
        # Redefining a term changes what cached plans would compute.
        self._schema_epoch += 1
        where = f" on {statement.domain}" if statement.domain else ""
        return f"term '{statement.term}' defined{where}"

    def _drop(self, statement: DropTable) -> str:
        self._table(statement.name)  # raises if absent
        self.catalog.remove(statement.name)
        self._schema_epoch += 1
        return f"table {statement.name} dropped"

    # ------------------------------------------------------------------
    # Programmatic access
    # ------------------------------------------------------------------
    def _table(self, name: str) -> FuzzyRelation:
        try:
            return self.catalog.get(name)
        except KeyError:
            raise DatabaseError(f"no table {name!r}") from None

    def register(self, name: str, relation: FuzzyRelation) -> None:
        """Register a programmatically built relation."""
        self.catalog.register(name, relation)
        self._schema_epoch += 1

    def table(self, name: str) -> FuzzyRelation:
        """The relation stored under ``name``."""
        return self._table(name)

    def tables(self) -> List[str]:
        """Sorted names of every stored table."""
        return self.catalog.names()

    def __contains__(self, name: str) -> bool:
        return name in self.catalog

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist tables and vocabulary as JSON under ``path``."""
        from .persist import save_database

        save_database(self, path)

    @classmethod
    def load(cls, path, **kwargs) -> "FuzzyDatabase":
        """Reconstruct a database saved with :meth:`save`."""
        from .persist import load_database

        return load_database(path, **kwargs)
