"""Sorted-run bookkeeping for the external merge sort."""

from __future__ import annotations

import itertools
from typing import Iterator, List

from ..data.tuples import FuzzyTuple
from ..storage.disk import SimulatedDisk
from ..storage.page import Page
from ..storage.serializer import TupleSerializer

_run_counter = itertools.count()


def fresh_run_name(base: str) -> str:
    """A unique scratch-file name for one sorted run."""
    return f"__run_{base}_{next(_run_counter)}"


class RunWriter:
    """Writes a sorted run of tuples to a scratch disk file, page by page."""

    def __init__(self, disk: SimulatedDisk, name: str, serializer: TupleSerializer):
        self.disk = disk
        self.name = name
        self.serializer = serializer
        self.n_tuples = 0
        self._page = Page(disk.page_size)
        if not disk.exists(name):
            disk.create(name)

    def append(self, t: FuzzyTuple) -> None:
        """Serialize one tuple into the run, spilling the page when it fills."""
        record = self.serializer.encode(t)
        if not self._page.fits(record):
            self.disk.append_page(self.name, self._page)
            self._page = Page(self.disk.page_size)
        self._page.append(record)
        self.n_tuples += 1

    def close(self) -> None:
        """Flush the final partial page to disk."""
        if len(self._page):
            self.disk.append_page(self.name, self._page)
            self._page = Page(self.disk.page_size)

    def discard(self) -> None:
        """Drop the buffered page without flushing (error-path close)."""
        self._page = Page(self.disk.page_size)


class RunReader:
    """Reads a run back sequentially, charging one read per page."""

    def __init__(self, disk: SimulatedDisk, name: str, serializer: TupleSerializer):
        self.disk = disk
        self.name = name
        self.serializer = serializer

    def __iter__(self) -> Iterator[FuzzyTuple]:
        for index in range(self.disk.n_pages(self.name)):
            page = self.disk.read_page(self.name, index)
            for record in page.records():
                yield self.serializer.decode(record)


def drop_runs(disk: SimulatedDisk, names: List[str]) -> None:
    """Delete intermediate run files from the simulated disk."""
    for name in names:
        disk.delete(name)
