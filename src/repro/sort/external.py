"""External merge sort on the interval order of Definition 3.1.

Stands in for the Opt-Tech external sort the paper used: run generation
fills the available buffer, runs merge ``K`` ways per pass, and every page
transfer is charged to the "sort" phase so Table 3's sorting-share rows can
be reproduced.  Comparisons follow the paper's two-step rule — left
endpoints first, right endpoints on ties — and each endpoint comparison is
charged as one crisp comparison.
"""

from __future__ import annotations

import heapq
import threading
from typing import Iterator, List, Optional

from ..data.tuples import FuzzyTuple
from ..fuzzy.interval_order import sort_key
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .runs import RunReader, RunWriter, drop_runs, fresh_run_name

SORT_PHASE = "sort"


class _CountingKey:
    """Sort key that charges interval comparisons to the stats object.

    Comparing two keys costs one crisp comparison for the left endpoints
    and, only on a tie, a second one for the right endpoints — exactly the
    "two comparisons may be needed" accounting in Section 3.
    """

    __slots__ = ("b", "e", "stats")

    def __init__(self, value, stats: OperationStats):
        self.b, self.e = sort_key(value)
        self.stats = stats

    def __lt__(self, other: "_CountingKey") -> bool:
        self.stats.count_crisp()
        if self.b != other.b:
            return self.b < other.b
        self.stats.count_crisp()
        return self.e < other.e

    def __eq__(self, other) -> bool:
        self.stats.count_crisp(2)
        return (self.b, self.e) == (other.b, other.e)


class ExternalSorter:
    """Sorts a heap file by the interval order of one attribute.

    When a :class:`~repro.observe.metrics.QueryMetrics` collector is
    attached, every sort reports its shape (initial run count, merge
    passes) — the raw material for Table 3's sorting-share rows.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer_pages: int,
        stats: OperationStats,
        metrics=None,
        tracer=None,
    ):
        if buffer_pages < 3:
            raise ValueError("external sort needs at least 3 buffer pages")
        self.disk = disk
        self.buffer_pages = buffer_pages
        self.stats = stats
        self.metrics = metrics
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def sort(self, source: HeapFile, attribute: str, out_name: Optional[str] = None) -> HeapFile:
        """Produce a new heap file sorted on ``attribute``.

        The default output name is ``{source}__sorted_{attribute}``; worker
        threads get a thread-id suffix so two sessions concurrently sorting
        the same relation never overwrite each other's output file.
        """
        if out_name is None:
            out_name = f"{source.name}__sorted_{attribute}"
            if threading.current_thread() is not threading.main_thread():
                out_name = f"{out_name}__t{threading.get_ident()}"
        key_index = source.schema.index_of(attribute)
        record = None
        if self.metrics is not None:
            from ..observe.metrics import SortMetrics

            record = SortMetrics(
                source=source.name, attribute=attribute, tuples=source.n_tuples
            )
            self.metrics.record_sort(record)
        from ..observe.trace import maybe_span

        # Every scratch run created by this sort is tracked in ``live`` so
        # that a fault mid-sort (torn page, disk full, timeout) never
        # leaks half-written runs onto the shared disk: the except path
        # deletes them all, plus any partial output file, and re-raises.
        live: List[str] = []
        try:
            with maybe_span(self.tracer, f"sort {source.name}", attribute=attribute):
                with self.disk.use_stats(self.stats), self.stats.enter_phase(SORT_PHASE):
                    with maybe_span(self.tracer, "runs"):
                        runs = self._generate_runs(source, key_index, live)
                    if record is not None:
                        record.runs = len(runs)
                    with maybe_span(self.tracer, "merge"):
                        runs = self._merge_until_few(source, runs, key_index, record, live)
                        if record is not None:
                            record.merge_passes += 1  # the final merge that writes the output
                            record.output = out_name
                        return self._final_merge(source, runs, key_index, out_name)
        except BaseException:
            drop_runs(self.disk, live)
            self.disk.delete(out_name)
            raise

    def sort_parallel(
        self,
        source: HeapFile,
        attribute: str,
        workers: int,
        out_name: Optional[str] = None,
        partitioner=None,
        seed: int = 0,
        guard=None,
        cancel=None,
    ) -> HeapFile:
        """Range-partitioned parallel sort; falls back to :meth:`sort`.

        Boundaries come from ``partitioner`` or, by default, from a page
        sample of the source (see
        :class:`~repro.parallel.partitioner.RangePartitioner`).  Each
        slice is sorted by its own worker and the sorted slices are
        *spliced* — never merged: slices are disjoint ranges of ``b(v)``,
        so their concatenation is already in ``(b, e)`` order.  When no
        usable boundaries exist (tiny or constant samples, mixed domains)
        or ``workers < 2``, this is exactly the serial :meth:`sort`.
        """
        from ..parallel.partitioner import RangePartitioner
        from ..parallel.sort import parallel_sort

        if workers >= 2 and partitioner is None:
            partitioner = RangePartitioner.from_sample(
                source, attribute, workers, seed=seed, stats=self.stats
            )
        if workers < 2 or partitioner is None:
            return self.sort(source, attribute, out_name=out_name)
        merged, _ = parallel_sort(
            self.disk, self.buffer_pages, self.stats, source, attribute,
            partitioner, workers, out_name=out_name, metrics=self.metrics,
            guard=guard, cancel=cancel,
        )
        return merged

    # ------------------------------------------------------------------
    # Pass 1: run generation
    # ------------------------------------------------------------------
    def _generate_runs(self, source: HeapFile, key_index: int, live: List[str]) -> List[str]:
        runs: List[str] = []
        batch: List[FuzzyTuple] = []
        batch_pages = 0
        for page_index in range(source.n_pages):
            page = self.disk.read_page(source.name, page_index)
            for record in page.records():
                batch.append(source.serializer.decode(record))
            batch_pages += 1
            if batch_pages >= self.buffer_pages:
                runs.append(self._write_run(source, batch, key_index, live))
                batch, batch_pages = [], 0
        if batch:
            runs.append(self._write_run(source, batch, key_index, live))
        return runs

    def _write_run(
        self, source: HeapFile, batch: List[FuzzyTuple], key_index: int, live: List[str]
    ) -> str:
        batch.sort(key=lambda t: _CountingKey(t[key_index], self.stats))
        name = fresh_run_name(source.name)
        live.append(name)
        writer = RunWriter(self.disk, name, source.serializer)
        ok = False
        try:
            for t in batch:
                self.stats.count_move()
                writer.append(t)
            ok = True
        finally:
            if ok:
                writer.close()
            else:
                # Flushing after a failed append could raise again (e.g. a
                # second DiskFullError) and mask the original fault; drop
                # the buffered page and let the sort-level handler delete
                # the partial run file.
                writer.discard()
        return name

    # ------------------------------------------------------------------
    # Pass 2+: K-way merges
    # ------------------------------------------------------------------
    def _merge_until_few(
        self, source: HeapFile, runs: List[str], key_index: int, record=None,
        live: Optional[List[str]] = None,
    ) -> List[str]:
        fan_in = self.buffer_pages - 1
        if live is None:
            live = []
        while len(runs) > fan_in:
            if record is not None:
                record.merge_passes += 1
            next_runs: List[str] = []
            for i in range(0, len(runs), fan_in):
                group = runs[i:i + fan_in]
                if len(group) == 1:
                    next_runs.append(group[0])
                    continue
                name = fresh_run_name(source.name)
                live.append(name)
                writer = RunWriter(self.disk, name, source.serializer)
                ok = False
                try:
                    for t in self._merged(source, group, key_index):
                        writer.append(t)
                    ok = True
                finally:
                    if ok:
                        writer.close()
                    else:
                        writer.discard()
                drop_runs(self.disk, group)
                next_runs.append(name)
            runs = next_runs
        return runs

    def _final_merge(
        self, source: HeapFile, runs: List[str], key_index: int, out_name: str
    ) -> HeapFile:
        self.disk.delete(out_name)
        out = HeapFile(out_name, source.schema, self.disk, source.serializer.fixed_size)
        out.load(self._merged(source, runs, key_index))
        drop_runs(self.disk, runs)
        return out

    def _merged(self, source: HeapFile, runs: List[str], key_index: int) -> Iterator[FuzzyTuple]:
        readers = [iter(RunReader(self.disk, name, source.serializer)) for name in runs]
        heap = []
        for i, reader in enumerate(readers):
            first = next(reader, None)
            if first is not None:
                heap.append((_CountingKey(first[key_index], self.stats), i, first))
        heapq.heapify(heap)
        while heap:
            key, i, t = heapq.heappop(heap)
            self.stats.count_move()
            yield t
            successor = next(readers[i], None)
            if successor is not None:
                heapq.heappush(
                    heap, (_CountingKey(successor[key_index], self.stats), i, successor)
                )
