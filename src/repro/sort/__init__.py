"""External sorting on the interval order (the merge-join's sort phase)."""

from .external import SORT_PHASE, ExternalSorter

__all__ = ["ExternalSorter", "SORT_PHASE"]
