"""Sampling-based statistics for fuzzy join planning.

The paper leaves sampling as future work ("More research is needed to
decide the optimal join method (and the way to conduct sampling in fuzzy
databases)").  This module implements the obvious instantiation: sample
tuples from both relations, count support-interval overlaps, and scale up
to estimate the average join fan-out C — the quantity both the cost model
and the Section 8 join-order DP depend on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..fuzzy.interval_order import overlaps
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats


@dataclass(frozen=True)
class FanoutEstimate:
    """Result of a sampled fan-out estimation."""

    fanout: float          # expected joining S-tuples per R-tuple
    outer_sampled: int
    inner_sampled: int
    pairs_checked: int

    def edge_fanout(self, minimum: float = 1.0) -> float:
        """A conservative value for :class:`repro.engine.optimizer.JoinEdge`."""
        return max(minimum, self.fanout)


def sample_tuples(heap: HeapFile, k: int, rng: random.Random, stats: Optional[OperationStats] = None):
    """Page-level sampling: draw ``k`` tuples by sampling pages uniformly.

    Charges one page read per distinct sampled page (cheaper and more
    realistic than row-level sampling on a paged store).
    """
    if heap.n_pages == 0 or k <= 0:
        return []
    out = []
    pages = list(range(heap.n_pages))
    rng.shuffle(pages)
    scratch = OperationStats()
    with heap.disk.use_stats(stats if stats is not None else scratch):
        for page_index in pages:
            page = heap.disk.read_page(heap.name, page_index)
            for record in page.records():
                out.append(heap.serializer.decode(record))
            if len(out) >= k:
                break
    rng.shuffle(out)
    return out[:k]


def estimate_fanout(
    outer: HeapFile,
    inner: HeapFile,
    attribute: str = "X",
    sample_size: int = 64,
    seed: int = 0,
    stats: Optional[OperationStats] = None,
    inner_attribute: Optional[str] = None,
) -> FanoutEstimate:
    """Estimate the average number of inner tuples joining each outer tuple.

    Overlap of support intervals is the (necessary) join criterion the
    merge-join itself uses, and checking it costs a crisp comparison, not
    a fuzzy evaluation.  ``inner_attribute`` names the inner side's join
    column when it differs from the outer's (the usual case for the
    unnested queries, which join ``R.U`` against ``S.V``).
    """
    rng = random.Random(seed)
    outer_index = outer.schema.index_of(attribute)
    inner_index = inner.schema.index_of(
        attribute if inner_attribute is None else inner_attribute
    )
    outer_sample = sample_tuples(outer, sample_size, rng, stats)
    inner_sample = sample_tuples(inner, sample_size, rng, stats)
    if not outer_sample or not inner_sample:
        return FanoutEstimate(0.0, len(outer_sample), len(inner_sample), 0)
    hits = 0
    checked = 0
    for r in outer_sample:
        for s in inner_sample:
            checked += 1
            if stats is not None:
                stats.count_crisp()
            if overlaps(r[outer_index], s[inner_index]):
                hits += 1
    per_pair = hits / checked
    fanout = per_pair * inner.n_tuples
    return FanoutEstimate(fanout, len(outer_sample), len(inner_sample), checked)
