"""Sampling-based statistics for fuzzy join planning.

The paper leaves sampling as future work ("More research is needed to
decide the optimal join method (and the way to conduct sampling in fuzzy
databases)").  This module implements the obvious instantiation: sample
tuples from both relations, count support-interval overlaps, and scale up
to estimate the average join fan-out C — the quantity both the cost model
and the Section 8 join-order DP depend on.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..fuzzy.interval_order import overlaps
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats


@dataclass(frozen=True)
class FanoutEstimate:
    """Result of a sampled fan-out estimation."""

    fanout: float          # expected joining S-tuples per R-tuple
    outer_sampled: int
    inner_sampled: int
    pairs_checked: int

    def edge_fanout(self, minimum: float = 1.0) -> float:
        """A conservative value for :class:`repro.engine.optimizer.JoinEdge`."""
        return max(minimum, self.fanout)


class StatisticsVersions:
    """Monotonic per-relation version tokens for plan-cache invalidation.

    A compiled plan is only as good as the statistics it was chosen under:
    the Section 8 join-order DP and the grouped/pipelined strategy picks
    depend on relation cardinalities and sampled fan-outs.  This class
    assigns each relation an integer version that moves whenever either
    input changes, so a :class:`~repro.service.plancache.PlanCache` entry
    can record the versions it was built against and detect staleness with
    one dict comparison.

    Version bumps come from two sources:

    * :meth:`observe_cardinality` — the relation's tuple count changed
      (data was loaded, re-registered, or mutated);
    * :meth:`record_fanout` — a sampled join fan-out for one of the
      relation's attributes drifted by more than ``tolerance`` (relative),
      meaning join-order and window-size decisions made under the old
      estimate may no longer hold.

    All methods are thread-safe; concurrent sessions share one instance.
    """

    def __init__(self, fanout_tolerance: float = 0.25):
        self.fanout_tolerance = fanout_tolerance
        self._versions: Dict[str, int] = {}
        self._cardinalities: Dict[str, int] = {}
        self._fanouts: Dict[Tuple[str, str], float] = {}
        self._lock = threading.Lock()

    def bump(self, name: str) -> int:
        """Unconditionally advance ``name``'s version; returns the new one."""
        name = name.upper()
        with self._lock:
            self._versions[name] = self._versions.get(name, 0) + 1
            return self._versions[name]

    def version(self, name: str) -> int:
        """The current version of ``name`` (0 when never observed)."""
        return self._versions.get(name.upper(), 0)

    def snapshot(self, names: Iterable[str]) -> Dict[str, int]:
        """``{name: version}`` for ``names`` — a plan-cache validity token."""
        return {n.upper(): self.version(n) for n in names}

    def observe_cardinality(self, name: str, n_tuples: int) -> bool:
        """Record a tuple count; bump and return True when it changed."""
        name = name.upper()
        with self._lock:
            known = self._cardinalities.get(name)
            self._cardinalities[name] = n_tuples
            if known is not None and known == n_tuples:
                return False
            self._versions[name] = self._versions.get(name, 0) + 1
            return True

    def note_cardinality(self, name: str, n_tuples: int) -> None:
        """Record a tuple count *without* bumping the version.

        The adaptive write path uses this for benign ingest: when the
        histogram drift check says cached plans are still good, the
        cardinality book-keeping must not evict them as a side effect —
        statistics drift, not every version bump, is the invalidation
        rule there.
        """
        with self._lock:
            self._cardinalities[name.upper()] = n_tuples

    def record_fanout(self, name: str, attribute: str, fanout: float) -> bool:
        """Record a sampled fan-out; bump and return True on real drift.

        Drift is relative: a change beyond ``fanout_tolerance`` of the
        previously recorded value (or any change from/to zero) counts.
        """
        key = (name.upper(), attribute)
        with self._lock:
            known = self._fanouts.get(key)
            self._fanouts[key] = fanout
            if known is None:
                return False  # first observation defines the baseline
            reference = max(abs(known), 1e-9)
            if abs(fanout - known) / reference <= self.fanout_tolerance:
                return False
            self._versions[key[0]] = self._versions.get(key[0], 0) + 1
            return True


def sample_tuples(heap: HeapFile, k: int, rng: random.Random, stats: Optional[OperationStats] = None):
    """Page-level sampling: draw ``k`` tuples by sampling pages uniformly.

    Charges one page read per distinct sampled page (cheaper and more
    realistic than row-level sampling on a paged store).
    """
    if heap.n_pages == 0 or k <= 0:
        return []
    out = []
    pages = list(range(heap.n_pages))
    rng.shuffle(pages)
    scratch = OperationStats()
    with heap.disk.use_stats(stats if stats is not None else scratch):
        for page_index in pages:
            page = heap.disk.read_page(heap.name, page_index)
            for record in page.records():
                out.append(heap.serializer.decode(record))
            if len(out) >= k:
                break
    rng.shuffle(out)
    return out[:k]


def estimate_fanout(
    outer: HeapFile,
    inner: HeapFile,
    attribute: str = "X",
    sample_size: int = 64,
    seed: int = 0,
    stats: Optional[OperationStats] = None,
    inner_attribute: Optional[str] = None,
) -> FanoutEstimate:
    """Estimate the average number of inner tuples joining each outer tuple.

    Overlap of support intervals is the (necessary) join criterion the
    merge-join itself uses, and checking it costs a crisp comparison, not
    a fuzzy evaluation.  ``inner_attribute`` names the inner side's join
    column when it differs from the outer's (the usual case for the
    unnested queries, which join ``R.U`` against ``S.V``).
    """
    rng = random.Random(seed)
    outer_index = outer.schema.index_of(attribute)
    inner_index = inner.schema.index_of(
        attribute if inner_attribute is None else inner_attribute
    )
    outer_sample = sample_tuples(outer, sample_size, rng, stats)
    inner_sample = sample_tuples(inner, sample_size, rng, stats)
    if not outer_sample or not inner_sample:
        return FanoutEstimate(0.0, len(outer_sample), len(inner_sample), 0)
    hits = 0
    checked = 0
    for r in outer_sample:
        for s in inner_sample:
            checked += 1
            if stats is not None:
                stats.count_crisp()
            if overlaps(r[outer_index], s[inner_index]):
                hits += 1
    per_pair = hits / checked
    fanout = per_pair * inner.n_tuples
    return FanoutEstimate(fanout, len(outer_sample), len(inner_sample), checked)
