"""Query evaluation: the naive nested-semantics engine, fuzzy aggregates,
and the physical executor for unnested flat queries over heap files."""

from .aggregates import AGGREGATE_FUNCS, DegreePolicy, aggregate_degrees, apply_aggregate
from .executor import CompileError, FlatCompiler, execute_unnested_storage
from .operators import ExecutionContext
from .optimizer import JoinEdge, JoinPlan, TableEstimate, optimize_join_order
from .statistics import FanoutEstimate, estimate_fanout, sample_tuples
from .semantics import NaiveEvaluator

__all__ = [
    "NaiveEvaluator",
    "DegreePolicy",
    "apply_aggregate",
    "aggregate_degrees",
    "AGGREGATE_FUNCS",
    "FlatCompiler",
    "CompileError",
    "ExecutionContext",
    "execute_unnested_storage",
    "optimize_join_order",
    "JoinEdge",
    "JoinPlan",
    "TableEstimate",
    "estimate_fanout",
    "sample_tuples",
    "FanoutEstimate",
]
