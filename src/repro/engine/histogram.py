"""Equi-depth histograms over support intervals ``(b(v), e(v))``.

The Section 8 join-order DP and the access-path costing both ran on a
single constant fan-out ``C`` per edge; the ``q=`` column of EXPLAIN
ANALYZE (PR 2) shows how often that constant is wrong.  This module
supplies the missing statistics: one :class:`AttributeHistogram` per
``(table, attribute)``, built at registration time from the attribute's
support intervals and kept current by the WAL apply path.

The histogram is equi-depth on the support *begin* ``b(v)`` — the same
key the interval order, the external sorts, the range partitioner, and
the shard placement all use — and each bucket additionally records the
largest support *end* seen, so two histograms can estimate how many
tuple pairs have overlapping supports: exactly the necessary join
criterion of the extended merge-join.  That estimate replaces the
constant ``C`` in :class:`~repro.engine.optimizer.JoinEdge` when a
session runs with ``adaptive=True``.

Two derived quantities drive the adaptive layer:

* :meth:`AttributeHistogram.drift` — how far the *live* bucket counts
  (maintained by WAL installs) have moved from the *base* distribution
  the histogram was built on: the total-variation distance between the
  normalized count vectors plus the relative cardinality change.  Small
  ingests leave the drift near zero; a skew shift or bulk load pushes it
  past the session's drift threshold, which triggers a rebuild.
* :attr:`AttributeHistogram.fingerprint` — a CRC32 over the bucket
  boundaries and base counts.  The fingerprint changes **only on
  rebuild**, never on a live-count refresh, so plan-cache entries can
  record the fingerprints they were costed against and stay valid across
  benign ingest while drift-triggered rebuilds evict them.
"""

from __future__ import annotations

import threading
import zlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def _intervals_of(values) -> Optional[List[Tuple[float, float]]]:
    """The support intervals of ``values``, or None when any lacks one.

    Only numeric crisp and trapezoidal values carry the single-interval
    support the ``(b(v), e(v))`` order needs; labels and discrete
    distributions make the whole attribute un-histogrammable (exactly the
    values :class:`~repro.columnar.UnsupportedIndexError` rejects).
    """
    out: List[Tuple[float, float]] = []
    for value in values:
        interval = getattr(value, "interval", None)
        if interval is None:
            return None
        try:
            begin, end = interval()
        except (TypeError, ValueError):
            return None
        if not isinstance(begin, (int, float)) or not isinstance(end, (int, float)):
            return None
        out.append((float(begin), float(end)))
    return out


class AttributeHistogram:
    """Equi-depth buckets of one attribute's support intervals.

    ``bounds[i]`` is the lower edge of bucket ``i`` on ``b(v)`` (the last
    bucket is open above); ``base_counts`` / ``base_max_d`` describe the
    distribution at build time and never change until :meth:`rebuild`,
    while ``live_counts`` track the table's current contents through
    :meth:`refresh`.
    """

    def __init__(self, bounds: List[float], counts: List[int], max_ds: List[float]):
        self.bounds = bounds
        self.base_counts = counts
        self.base_max_d = max_ds
        self.live_counts = list(counts)
        self.fingerprint = self._fingerprint()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, intervals: Sequence[Tuple[float, float]], buckets: int = 8) -> "AttributeHistogram":
        """Equi-depth histogram of ``intervals`` with at most ``buckets`` buckets."""
        ordered = sorted(intervals)
        n = len(ordered)
        if n == 0:
            return cls([], [], [])
        k = max(1, min(buckets, n))
        bounds: List[float] = []
        counts: List[int] = []
        max_ds: List[float] = []
        start = 0
        for i in range(k):
            stop = ((i + 1) * n) // k
            if stop <= start:
                continue
            chunk = ordered[start:stop]
            # Equal begins must share a bucket, or refresh-time bucketing
            # (which only sees the begin) would be ambiguous.
            while stop < n and ordered[stop][0] == chunk[-1][0]:
                chunk.append(ordered[stop])
                stop += 1
            bounds.append(chunk[0][0])
            counts.append(len(chunk))
            max_ds.append(max(d for _a, d in chunk))
            start = stop
        return cls(bounds, counts, max_ds)

    def _fingerprint(self) -> int:
        payload = repr((self.bounds, self.base_counts, self.base_max_d)).encode()
        return zlib.crc32(payload)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _bucket_of(self, begin: float) -> int:
        """The bucket whose range covers a support beginning at ``begin``."""
        return max(0, bisect_right(self.bounds, begin) - 1)

    def refresh(self, intervals: Sequence[Tuple[float, float]]) -> None:
        """Recount the live distribution against the *fixed* base buckets.

        Pure CPU over in-memory intervals; the fingerprint (and hence
        every plan-cache token) is untouched.
        """
        counts = [0] * len(self.bounds)
        for begin, _end in intervals:
            if counts:
                counts[self._bucket_of(begin)] += 1
        self.live_counts = counts

    def rebuild(self, intervals: Sequence[Tuple[float, float]], buckets: int = 8) -> "AttributeHistogram":
        """A fresh histogram of the live data (new fingerprint)."""
        return AttributeHistogram.build(intervals, buckets)

    def drift(self) -> float:
        """Distance of the live distribution from the base distribution.

        Total-variation distance between the normalized bucket vectors,
        plus the relative cardinality change — so both a *reshaped* table
        (same size, new skew) and a *regrown* table (same shape, new
        size) register as drift.
        """
        base_total = sum(self.base_counts)
        live_total = sum(self.live_counts)
        if base_total == 0:
            return 1.0 if live_total else 0.0
        tv = 0.5 * sum(
            abs(live / max(1, live_total) - base / base_total)
            for live, base in zip(self.live_counts, self.base_counts)
        )
        growth = abs(live_total - base_total) / base_total
        return tv + growth

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    @property
    def n_base(self) -> int:
        """Tuples the base distribution was built from."""
        return sum(self.base_counts)

    def bucket_ranges(self) -> List[Tuple[float, float, int]]:
        """``(lo, max_d, count)`` per base bucket — the overlap summary."""
        return [
            (lo, max_d, count)
            for lo, max_d, count in zip(self.bounds, self.base_max_d, self.base_counts)
        ]

    def overlap_count(self, begin: float, end: float) -> float:
        """Estimated tuples whose support intersects ``[begin, end]``.

        A bucket's tuples all begin in ``[lo_i, lo_{i+1})`` and end at or
        below ``max_d_i``; the bucket can only contribute when that
        envelope intersects the probe interval.
        """
        total = 0.0
        for i, (lo, max_d, count) in enumerate(self.bucket_ranges()):
            hi = self.bounds[i + 1] if i + 1 < len(self.bounds) else max_d
            if lo > end or max_d < begin:
                continue
            # A tuple overlaps iff its begin is at or below ``end`` (its
            # end may reach up to max_d >= begin).  Begins are uniform in
            # [lo, hi) within a bucket, so scale by the share below end.
            width = hi - lo
            if width > 0.0 and end < hi:
                total += count * min(1.0, max(0.0, (end - lo) / width))
            else:
                total += count
        return total

    def join_fanout(self, other: "AttributeHistogram") -> float:
        """Expected ``other``-tuples with overlapping support per tuple of self.

        The necessary join criterion of the extended merge-join is
        support overlap; averaging :meth:`overlap_count` over this
        histogram's buckets estimates the paper's per-edge constant ``C``
        from data instead of assumption.
        """
        mine = self.n_base
        if mine == 0 or other.n_base == 0:
            return 0.0
        expected = 0.0
        for i, (lo, max_d, count) in enumerate(self.bucket_ranges()):
            expected += count * other.overlap_count(lo, max_d)
        return expected / mine


class HistogramStore:
    """All of a session's attribute histograms, keyed ``(TABLE, attribute)``.

    Built by :meth:`~repro.session.StorageSession.register`, refreshed by
    the WAL apply path, read by the join-order DP and the drift check.
    All methods are thread-safe.
    """

    def __init__(self, buckets: int = 8, drift_threshold: float = 0.25):
        self.buckets = buckets
        #: Past this drift the table's histograms are rebuilt and the new
        #: fingerprints evict every dependent plan-cache entry.
        self.drift_threshold = drift_threshold
        self._tables: Dict[str, Dict[str, AttributeHistogram]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Build / refresh
    # ------------------------------------------------------------------
    def _columns_of(self, schema, tuples) -> Dict[str, List[Tuple[float, float]]]:
        rows = list(tuples)
        columns: Dict[str, List[Tuple[float, float]]] = {}
        for position, attribute in enumerate(schema):
            intervals = _intervals_of(t.values[position] for t in rows)
            if intervals is not None:
                columns[attribute.name] = intervals
        return columns

    def build_table(self, name: str, schema, tuples: Iterable) -> int:
        """(Re)build histograms for every interval-supported attribute.

        Returns the number of histograms built; attributes whose values
        lack single-interval supports are skipped silently (they cannot
        drive interval-overlap estimates anyway).
        """
        name = name.upper()
        columns = self._columns_of(schema, tuples)
        built = {
            attribute: AttributeHistogram.build(intervals, self.buckets)
            for attribute, intervals in columns.items()
        }
        with self._lock:
            if built:
                self._tables[name] = built
            else:
                self._tables.pop(name, None)
        return len(built)

    def refresh_table(self, name: str, schema, tuples: Iterable) -> int:
        """Recount live buckets after a write; fingerprints unchanged.

        Returns the number of histograms refreshed (0 when the table has
        none — e.g. label-only schemas).
        """
        name = name.upper()
        with self._lock:
            table = self._tables.get(name)
        if not table:
            return 0
        columns = self._columns_of(schema, tuples)
        refreshed = 0
        for attribute, histogram in table.items():
            intervals = columns.get(attribute)
            if intervals is not None:
                histogram.refresh(intervals)
                refreshed += 1
        return refreshed

    def forget(self, name: str) -> None:
        """Drop a table's histograms (DROP TABLE)."""
        with self._lock:
            self._tables.pop(name.upper(), None)

    # ------------------------------------------------------------------
    # Drift
    # ------------------------------------------------------------------
    def drift(self, name: str) -> float:
        """The largest per-attribute drift of ``name`` (0.0 when unknown)."""
        with self._lock:
            table = self._tables.get(name.upper())
        if not table:
            return 0.0
        return max(h.drift() for h in table.values())

    def drifted(self, name: str) -> bool:
        """Whether ``name`` has moved past the drift threshold."""
        return self.drift(name) > self.drift_threshold

    # ------------------------------------------------------------------
    # Plan-cache tokens and planner inputs
    # ------------------------------------------------------------------
    def fingerprint(self, name: str) -> int:
        """One CRC folding every attribute fingerprint of ``name``.

        0 for tables without histograms; stable across live refreshes,
        new after any rebuild — the plan-cache drift token.
        """
        with self._lock:
            table = self._tables.get(name.upper())
            if not table:
                return 0
            payload = repr(
                sorted((a, h.fingerprint) for a, h in table.items())
            ).encode()
        return zlib.crc32(payload)

    def histogram(self, name: str, attribute: str) -> Optional[AttributeHistogram]:
        """The histogram of ``name.attribute``, if one exists."""
        with self._lock:
            return self._tables.get(name.upper(), {}).get(attribute)

    def edge_fanout(
        self,
        left_table: str,
        left_attribute: str,
        right_table: str,
        right_attribute: str,
        default: float,
    ) -> float:
        """Histogram-estimated fan-out for one join edge, or ``default``."""
        left = self.histogram(left_table, left_attribute)
        right = self.histogram(right_table, right_attribute)
        if left is None or right is None or left.n_base == 0 or right.n_base == 0:
            return default
        return max(1.0, left.join_fanout(right))

    # ------------------------------------------------------------------
    # Rendering (the ``\\stats`` shell view)
    # ------------------------------------------------------------------
    def table_names(self) -> List[str]:
        """Tables with at least one histogram, sorted."""
        with self._lock:
            return sorted(self._tables)

    def render(self) -> str:
        """Per-table histogram dump with drift distances and fingerprints."""
        names = self.table_names()
        if not names:
            return "no histograms (register numeric relations first)"
        lines: List[str] = []
        for name in names:
            with self._lock:
                table = dict(self._tables[name])
            drift = max(h.drift() for h in table.values())
            lines.append(
                f"{name}: drift={drift:.3f} "
                f"(threshold {self.drift_threshold:g}) "
                f"fingerprint=0x{self.fingerprint(name):08x}"
            )
            for attribute in sorted(table):
                h = table[attribute]
                lines.append(
                    f"  {attribute}: {len(h.bounds)} buckets, "
                    f"{h.n_base} base rows, fingerprint=0x{h.fingerprint:08x}"
                )
                for i, (lo, max_d, count) in enumerate(h.bucket_ranges()):
                    live = h.live_counts[i] if i < len(h.live_counts) else 0
                    lines.append(
                        f"    [{lo:g}, d<={max_d:g}] base={count} live={live}"
                    )
        return "\n".join(lines)


__all__ = ["AttributeHistogram", "HistogramStore"]
