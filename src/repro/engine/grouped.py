"""Storage-level evaluation of the grouped anti-join rewrites (JX/JALL).

Sections 5 and 7 evaluate the unnested forms JX' / JALL' with the extended
merge-join: "we join a tuple r with all S-tuples in Rng(r) while they are
in the main memory, compute d_r and retrieve r.X when d_r > 0".  The
degree of an outer tuple is a *min* fold over pair degrees

    NOT IN:  d'_{r,s} = min(mu_R(r), 1 - min(mu_S(s), p2, cross, d(Y = Z)))
    op ALL:  d'_{r,s} = min(mu_R(r), 1 - min(mu_S(s), p2, cross, 1 - d(Y op Z)))

seeded with ``min(mu_R(r), p1(r))`` (the value every pair outside Rng(r)
contributes, since its inner conjunction is 0).

When one of the cross predicates (or the NOT-IN link) is a fuzzy equality
between attributes, it serves as the merge-join band; otherwise the fold
runs on the block nested loop — same answers, quadratic cost.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Optional, Sequence, Tuple

from ..data.relation import FuzzyRelation
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import Op, possibility
from ..join.merge_join import MergeJoin
from ..join.nested_loop import NestedLoopJoin
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats

TupleDegree = Callable[[FuzzyTuple], float]

#: A cross predicate: (outer attribute, operator, inner attribute).
CrossSpec = Tuple[str, Op, str]


class GroupMode(enum.Enum):
    """Which quantifier the grouped evaluation folds: ``NOT IN`` or ``ALL``."""
    NOT_IN = "not in"
    ALL = "all"


class GroupedAntiJoin:
    """One grouped anti-join query over heap files."""

    def __init__(
        self,
        outer: HeapFile,
        inner: HeapFile,
        mode: GroupMode,
        link: CrossSpec,
        cross: Sequence[CrossSpec] = (),
        p1: Optional[TupleDegree] = None,
        p2: Optional[TupleDegree] = None,
        project_attrs: Sequence[str] = ("ID",),
    ):
        """``link`` is the quantified comparison: ``(Y, EQ, Z)`` for NOT IN
        or ``(Y, op, Z)`` for op ALL.  ``cross`` holds the correlation
        predicates of the inner block, outer attribute first."""
        self.outer = outer
        self.inner = inner
        self.mode = mode
        self.link = link
        self.cross = list(cross)
        self.p1 = p1
        self.p2 = p2
        self.project_attrs = list(project_attrs)
        self.project_indices = [outer.schema.index_of(a) for a in self.project_attrs]
        self._link_resolved = self._resolve(link)
        self._cross_resolved = [self._resolve(c) for c in self.cross]
        self.band = self._choose_band()

    def _resolve(self, spec: CrossSpec):
        outer_attr, op, inner_attr = spec
        return (
            self.outer.schema.index_of(outer_attr),
            op,
            self.inner.schema.index_of(inner_attr),
        )

    def _choose_band(self) -> Optional[Tuple[str, str]]:
        """An equality attribute pair usable as the merge-join band."""
        candidates = list(self.cross)
        if self.mode is GroupMode.NOT_IN:
            candidates.append(self.link)
        for outer_attr, op, inner_attr in candidates:
            if op is Op.EQ:
                return (outer_attr, inner_attr)
        return None

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------
    def _inner_degree(self, r: FuzzyTuple, s: FuzzyTuple, stats) -> float:
        degree = s.degree
        if self.p2 is not None and degree > 0.0:
            if stats is not None:
                stats.count_fuzzy()
            degree = min(degree, self.p2(s))
        for oi, op, ii in self._cross_resolved:
            if degree == 0.0:
                return 0.0
            if stats is not None:
                stats.count_fuzzy()
            degree = min(degree, possibility(r[oi], op, s[ii]))
        if degree == 0.0:
            return 0.0
        oi, op, ii = self._link_resolved
        if stats is not None:
            stats.count_fuzzy()
        link_degree = possibility(r[oi], op, s[ii])
        if self.mode is GroupMode.NOT_IN:
            return min(degree, link_degree)
        return min(degree, 1.0 - link_degree)

    def _pair_degree(self, r: FuzzyTuple, s: FuzzyTuple, stats) -> float:
        return min(r.degree, 1.0 - self._inner_degree(r, s, stats))

    def _init(self, r: FuzzyTuple) -> float:
        degree = r.degree
        if self.p1 is not None and degree > 0.0:
            degree = min(degree, self.p1(r))
        return degree

    @property
    def estimated_rows(self) -> float:
        """Coarse output estimate: outer tuples filtered by one predicate.

        The anti-join fold emits at most one answer per outer tuple; the
        0.5 filter factor mirrors
        :data:`repro.observe.explain.PREDICATE_SELECTIVITY`.
        """
        return max(1.0, 0.5 * self.outer.n_tuples)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        disk,
        buffer_pages: int,
        stats: Optional[OperationStats] = None,
        metrics=None,
        tracer=None,
    ) -> FuzzyRelation:
        """Run the grouped evaluation on the storage engine; returns the answer
        relation.
        """
        stats = stats if stats is not None else OperationStats()
        om = None
        started = 0.0
        if metrics is not None:
            om = metrics.op(
                self,
                label=(
                    f"GroupedAntiJoin[{self.mode.value}]"
                    f"({self.outer.name} -> {self.inner.name})"
                ),
            )
            started = time.perf_counter()
        step = lambda worst, _s, d: d if d < worst else worst
        answer = self._collect(disk, buffer_pages, stats, metrics, tracer, step, om)
        if om is not None:
            om.wall_seconds += time.perf_counter() - started
        return answer

    def _collect(self, disk, buffer_pages, stats, metrics, tracer, step, om) -> FuzzyRelation:
        from ..errors import DiskFullError

        if self.band is not None:
            outer_attr, inner_attr = self.band
            join = MergeJoin(disk, buffer_pages, stats, metrics=metrics, tracer=tracer)
            folded = join.fold(
                self.outer, outer_attr, self.inner, inner_attr,
                self._pair_degree, self._init, step,
            )
            try:
                return self._fold_answer(folded, om)
            except DiskFullError:
                # The merge path failed while spilling sort runs; nothing
                # was folded yet (sorts precede the first pair).  The
                # nested-loop fold below only reads, computes the same
                # min-fold, and needs no out-of-range allowance because
                # pairs outside Rng(r) contribute the neutral degree.
                if metrics is not None:
                    metrics.degraded = True
                    metrics.degraded_reason = (
                        "grouped anti-join spill hit DiskFullError; nested-loop fallback"
                    )
        join = NestedLoopJoin(disk, buffer_pages, stats)
        folded = join.fold(self.outer, self.inner, self._pair_degree, self._init, step)
        return self._fold_answer(folded, om)

    def _fold_answer(self, folded, om) -> FuzzyRelation:
        answer = FuzzyRelation(self.outer.schema.project(self.project_attrs))
        for r, worst in folded:
            if om is not None:
                om.rows_in += 1
            if worst > 0.0:
                if om is not None:
                    om.rows_out += 1
                answer.add(
                    FuzzyTuple(tuple(r[i] for i in self.project_indices), worst)
                )
            elif om is not None:
                om.prunes += 1
        return answer
