"""Mid-query adaptive re-planning on observed cardinalities.

The planner costs a join order from estimates (histogram fan-outs, or
the paper's constant ``C``); execution then *measures* every input —
each join edge materializes its children before merging.  This module
closes that loop: after an edge's inputs are materialized, the
:class:`AdaptiveController` compares observed against estimated
cardinality and, past a configurable q-error threshold, re-costs the
edge with the session's :class:`~repro.storage.costs.CostModel` —

* **merge-join ↔ nested-loop**: the sort-merge path pays a fixed
  sorting cost on both inputs; when an input turns out far smaller than
  estimated, the block nested-loop join (which PR 4 already proved
  bit-identical as the ``DiskFullError`` degrade target) is often
  cheaper, so the edge switches;
* **workers=N**: a partitioned merge-join pays a partitioning pass up
  front; :func:`~repro.engine.optimizer.parallel_join_cost` on the
  *observed* sizes decides whether the parallel budget still pays for
  this edge, or the edge should run serially.

Every switch is surfaced as ``adapted=True`` plus a reason string in
:class:`~repro.observe.metrics.QueryMetrics` / EXPLAIN ANALYZE, a
``replan`` tracer span, and the ``fuzzysql_replans_total`` counter.
Both alternative paths produce bit-identical answers by construction,
so adaptation can never change a query result — only its cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..storage.costs import CostModel, PAPER_1992
from .optimizer import parallel_join_cost


def q_error(estimated: Optional[float], actual: float) -> float:
    """The symmetric estimation error ``max(est/act, act/est)``, floored at 1.

    ``None`` estimates (un-annotated plans) and zero observations yield
    1.0 — no evidence of mis-estimation, no replan.
    """
    if estimated is None:
        return 1.0
    est = max(1.0, float(estimated))
    act = max(1.0, float(actual))
    return max(est / act, act / est)


@dataclass(frozen=True)
class AdaptDecision:
    """The outcome of re-costing one join edge."""

    #: ``"nested-loop"`` to switch the edge off the merge path,
    #: ``"merge"`` to stay on it (possibly with fewer workers).
    method: str
    #: Effective worker budget for this edge (<= the query's budget).
    workers: int
    #: Human-readable justification, surfaced in EXPLAIN ANALYZE.
    reason: str
    #: Modelled seconds of the plan as estimated vs. as re-costed.
    estimated_cost: float
    adapted_cost: float


class AdaptiveController:
    """Per-execution re-planner consulted by every merge-join edge.

    Created by the session when ``adaptive=True`` and carried on the
    :class:`~repro.engine.operators.ExecutionContext`; stateless between
    queries apart from its :attr:`replans` tally (used by benchmarks to
    gate that adaptation actually fired).
    """

    def __init__(
        self,
        threshold: float = 4.0,
        cost_model: Optional[CostModel] = None,
        skew: float = 1.0,
    ):
        if threshold < 1.0:
            raise ValueError("a q-error threshold below 1.0 would always fire")
        #: Re-plan once the worst per-input q-error reaches this value.
        self.threshold = threshold
        self.cost_model = cost_model if cost_model is not None else PAPER_1992
        #: Planner-side skew assumption for :func:`parallel_join_cost`.
        self.skew = max(1.0, skew)
        #: Join edges re-planned since construction.
        self.replans = 0

    def consider(self, op, left_heap, right_heap, workers: int) -> Optional[AdaptDecision]:
        """Re-cost one materialized join edge; ``None`` keeps the plan.

        ``op`` is the :class:`~repro.engine.operators.MergeJoinOp` about
        to merge ``left_heap`` and ``right_heap``; its children carry the
        planner's ``estimated_rows`` (stamped by
        :func:`~repro.observe.explain.annotate_estimates`).  Estimates
        within the threshold — or plans never annotated — return
        ``None`` and the edge runs exactly as compiled.
        """
        obs_left = left_heap.n_tuples
        obs_right = right_heap.n_tuples
        q_left = q_error(op.left.estimated_rows, obs_left)
        q_right = q_error(op.right.estimated_rows, obs_right)
        worst = max(q_left, q_right)
        if worst < self.threshold:
            return None

        model = self.cost_model
        lp, rp = left_heap.n_pages, right_heap.n_pages
        merge = model.sort_merge_join_seconds(lp, rp, obs_left, obs_right)
        nested = model.nested_loop_join_seconds(lp, rp, obs_left, obs_right)
        # What the optimizer believed this edge would cost, on the same
        # scale: the merge path at the *estimated* cardinalities (pages
        # scaled by the same mis-estimation factor, floored at 1).
        est_left = obs_left if op.left.estimated_rows is None else op.left.estimated_rows
        est_right = obs_right if op.right.estimated_rows is None else op.right.estimated_rows
        est_lp = max(1, round(lp * q_of(est_left, obs_left)))
        est_rp = max(1, round(rp * q_of(est_right, obs_right)))
        estimated = model.sort_merge_join_seconds(
            est_lp, est_rp, max(1.0, est_left), max(1.0, est_right)
        )

        side = "left" if q_left >= q_right else "right"
        observed = obs_left if side == "left" else obs_right
        believed = op.left.estimated_rows if side == "left" else op.right.estimated_rows
        prefix = (
            f"{op.left_attr}={op.right_attr} {side} input "
            f"{believed:.0f} est -> {observed} rows (q={worst:.1f})"
        )

        self.replans += 1
        if nested < merge:
            return AdaptDecision(
                method="nested-loop",
                workers=1,
                reason=(
                    f"{prefix}: nested-loop {nested:.3f}s beats "
                    f"sort-merge {merge:.3f}s"
                ),
                estimated_cost=estimated,
                adapted_cost=nested,
            )
        effective = workers
        if workers > 1:
            # The coordinator's partitioning pass: one read plus one
            # write of both inputs, same unit costs as the join itself.
            overhead = 2.0 * (lp + rp) * model.io_time
            parallel = parallel_join_cost(merge, workers, overhead, self.skew)
            if parallel >= merge:
                effective = 1
        if effective == workers:
            return AdaptDecision(
                method="merge",
                workers=workers,
                reason=f"{prefix}: sort-merge re-confirmed at observed sizes",
                estimated_cost=estimated,
                adapted_cost=merge,
            )
        return AdaptDecision(
            method="merge",
            workers=effective,
            reason=(
                f"{prefix}: parallel overhead exceeds the speedup at "
                f"observed sizes; workers {workers} -> {effective}"
            ),
            estimated_cost=estimated,
            adapted_cost=merge,
        )


def q_of(estimated: float, actual: float) -> float:
    """Ratio ``estimated / actual`` with both floored at 1 (page scaling)."""
    return max(1.0, float(estimated)) / max(1.0, float(actual))


__all__ = ["AdaptDecision", "AdaptiveController", "q_error"]
