"""Fuzzy aggregate functions (Section 6 semantics).

* ``COUNT`` returns the number of values in the fuzzy set (crisp);
* ``SUM`` folds fuzzy addition over the values' 0- and 1-cuts;
* ``AVG`` is the fuzzy SUM divided by the crisp count;
* ``MIN``/``MAX`` defuzzify each value by the center of its 1-cut and
  return the (original, still fuzzy) value with the smallest/largest
  center;
* the empty set yields NULL (``None``) for everything except ``COUNT``,
  which yields 0.

The degree ``D(A(r))`` attached to an aggregate result is a function of
the group; Fuzzy SQL fixes ``D(A(r)) = 1`` but the paper notes it "can
also be defined as the average membership degree, or weighted average
membership degree" — :class:`DegreePolicy` exposes all three.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from ..fuzzy import arithmetic
from ..fuzzy.crisp import CrispNumber
from ..fuzzy.distribution import Distribution

Member = Tuple[Distribution, float]  # (value, membership degree)

AGGREGATE_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class DegreePolicy(enum.Enum):
    """How ``D(A(r))`` is derived from the group ``T(r)``."""

    ONE = "one"              # Fuzzy SQL: always 1
    AVERAGE = "average"      # arithmetic mean of member degrees
    WEIGHTED = "weighted"    # degree-weighted mean of member degrees

    def degree(self, members: Sequence[Member]) -> float:
        """Membership degree of a group under this policy (1.0 for an empty group)."""
        if not members:
            return 1.0
        if self is DegreePolicy.ONE:
            return 1.0
        degrees = [d for _, d in members]
        if self is DegreePolicy.AVERAGE:
            return sum(degrees) / len(degrees)
        total = sum(degrees)
        if total == 0.0:
            return 0.0
        return sum(d * d for d in degrees) / total


def apply_aggregate(
    func: str,
    members: Sequence[Member],
    policy: DegreePolicy = DegreePolicy.ONE,
) -> Optional[Tuple[Distribution, float]]:
    """Apply ``func`` to a fuzzy set of values; ``None`` encodes NULL.

    ``members`` are the *distinct* values of the group with their
    membership degrees (zero-degree values must already be excluded).
    """
    func = func.upper()
    if func not in AGGREGATE_FUNCS:
        raise ValueError(f"unknown aggregate function {func!r}")
    if not members:
        if func == "COUNT":
            return CrispNumber(0.0), 1.0
        return None
    degree = policy.degree(members)
    if func == "COUNT":
        return CrispNumber(float(len(members))), degree
    if func == "SUM":
        total: Distribution = members[0][0]
        for value, _ in members[1:]:
            total = arithmetic.add(total, value)
        return total, degree
    if func == "AVG":
        total = members[0][0]
        for value, _ in members[1:]:
            total = arithmetic.add(total, value)
        return arithmetic.scale(total, 1.0 / len(members)), degree
    # MIN / MAX by defuzzified 1-cut center.  Distinct values may share a
    # center (the paper's defuzzification is not injective); break ties by
    # the canonical value representation so every evaluation order —
    # naive, pipelined, storage — picks the same member.
    chooser = min if func == "MIN" else max
    best = chooser(members, key=lambda m: (m[0].defuzzify(), repr(m[0].key())))
    return best[0], degree


def aggregate_degrees(func: str, degrees: List[float]) -> float:
    """Aggregate over the membership-degree pseudo-column (``MIN(D)`` etc.).

    Used by the unnested JX'/JALL' forms where ``MIN(D)`` in the SELECT
    clause defines the output tuple's membership degree.
    """
    func = func.upper()
    if not degrees:
        raise ValueError("cannot aggregate an empty degree group")
    if func == "MIN":
        return min(degrees)
    if func == "MAX":
        return max(degrees)
    if func == "AVG":
        return sum(degrees) / len(degrees)
    raise ValueError(f"aggregate {func}(D) is not supported")
