"""Join-order optimization for unnested chain queries (Section 8).

"To evaluate Query Q'_K, an optimal join order may be determined by
using, say, a dynamic programming method, to minimize the sizes of the
intermediate relations.  If, as assumed, each tuple of a relation joins
with a constant number of tuples of another relation, the size of an
intermediate relation will be proportional to a joining relation."

This module implements that: a Selinger-style dynamic program over
connected subsets of the join graph, minimizing the summed estimated
intermediate cardinalities.  Under the paper's constant-fan-out
assumption the estimate for joining a relation in through a predicate is
``rows(subset) * fanout``; a relation joined in with no connecting
predicate costs the full cross product.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

#: A join tree: a binding name at the leaves, an (left, right) pair inside.
JoinTree = Union[str, Tuple["JoinTree", "JoinTree"]]


@dataclass(frozen=True)
class TableEstimate:
    """Cardinality statistics for one relation."""

    rows: int

    def __post_init__(self):
        if self.rows < 0:
            raise ValueError("row estimate cannot be negative")


@dataclass(frozen=True)
class JoinEdge:
    """An (undirected) equi-join predicate between two bindings."""

    left: str
    right: str
    #: Estimated number of right-side tuples each left tuple joins (the
    #: paper's constant C); symmetric by assumption.
    fanout: float = 7.0

    def connects(self, subset: FrozenSet[str], binding: str) -> bool:
        """Whether this edge joins ``binding`` to a table already in ``subset``."""
        return (self.left in subset and self.right == binding) or (
            self.right in subset and self.left == binding
        )


@dataclass
class JoinPlan:
    """The DP result: an order and its estimated total intermediate size."""

    order: List[str]
    cost: float
    result_rows: float
    #: The chosen join shape.  Left-deep plans nest to the left
    #: (``((A, B), C)``); the bushy DP may return any binary shape.
    tree: Optional[JoinTree] = None
    #: Estimated (cost, rows) of every connected subplan the DP solved —
    #: the memoized subplan-cost table, exposed so re-costing during
    #: adaptive execution does not re-run the DP.
    subplans: Dict[FrozenSet[str], Tuple[float, float]] = field(default_factory=dict)


class PlanMemo:
    """A bounded cross-query memo of solved join-order DP tables.

    Keyed on the *statistics signature* — binding cardinalities, edge
    fan-outs, and the plan-shape flag — so two queries over the same
    relations with unchanged statistics reuse the solved subplan-cost
    table instead of re-running the subset DP.  Any statistics change
    (new cardinality, new histogram fan-out) changes the key and misses,
    which is exactly the staleness rule the plan cache applies one level
    up.
    """

    def __init__(self, capacity: int = 128):
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[tuple, JoinPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(
        estimates: Dict[str, TableEstimate],
        edges: Sequence[JoinEdge],
        bushy: bool,
    ) -> tuple:
        """The memo key: a pure function of the DP inputs."""
        return (
            tuple(sorted((b, e.rows) for b, e in estimates.items())),
            tuple(sorted((e.left, e.right, e.fanout) for e in edges)),
            bushy,
        )

    def lookup(self, key: tuple) -> Optional[JoinPlan]:
        """The memoized plan for ``key``, refreshing its LRU position."""
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return plan

    def store(self, key: tuple, plan: JoinPlan) -> None:
        """Memoize ``plan``, evicting the least recently used entry."""
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


def flatten_tree(tree: JoinTree) -> List[str]:
    """The left-to-right leaf order of a join tree."""
    if isinstance(tree, str):
        return [tree]
    left, right = tree
    return flatten_tree(left) + flatten_tree(right)


def optimize_join_order(
    estimates: Dict[str, TableEstimate],
    edges: Sequence[JoinEdge],
    bushy: bool = False,
    memo: Optional[PlanMemo] = None,
) -> JoinPlan:
    """Join order minimizing summed intermediate cardinalities.

    Exhaustive dynamic programming over subsets — exact for the handful of
    relations a chain query produces (K-level chains have K relations).
    With ``bushy=True`` the DP additionally considers every balanced
    split of each subset (Theorem 8.1's left-deep space is a strict
    subset), which pays off when two independent selective joins should
    both run before their results meet.  Pass a :class:`PlanMemo` to
    reuse the solved subplan-cost table across queries with unchanged
    statistics.
    """
    bindings = sorted(estimates)
    if not bindings:
        raise ValueError("need at least one relation")
    n = len(bindings)
    if n > 14:
        raise ValueError("join-order DP supports at most 14 relations")

    key = PlanMemo.key_of(estimates, edges, bushy) if memo is not None else None
    if memo is not None:
        cached = memo.lookup(key)
        if cached is not None:
            return cached

    # best[subset] = (cost, result_rows, tree)
    best: Dict[FrozenSet[str], Tuple[float, float, JoinTree]] = {}
    for b in bindings:
        best[frozenset([b])] = (0.0, float(estimates[b].rows), b)

    for size in range(2, n + 1):
        for combo in combinations(bindings, size):
            subset = frozenset(combo)
            candidate: Optional[Tuple[float, float, JoinTree]] = None
            for newcomer in combo:
                rest = subset - {newcomer}
                if rest not in best or best[rest] is None:
                    continue
                rest_cost, rest_rows, rest_tree = best[rest]
                rows = _join_rows(rest, rest_rows, newcomer, estimates, edges)
                cost = rest_cost + rows  # accumulate intermediate sizes
                if candidate is None or cost < candidate[0]:
                    candidate = (cost, rows, (rest_tree, newcomer))
            if bushy:
                # Every split with >= 2 bindings on both sides (the
                # one-newcomer splits are the left-deep candidates above).
                # Fixing the minimum binding to the left half halves the
                # symmetric enumeration and makes ties deterministic.
                anchor = min(combo)
                others = [b for b in combo if b != anchor]
                for left_size in range(1, len(others)):
                    for extra in combinations(others, left_size):
                        left_set = frozenset((anchor,) + extra)
                        right_set = subset - left_set
                        if len(right_set) < 2:
                            continue
                        if best.get(left_set) is None or best.get(right_set) is None:
                            continue
                        l_cost, l_rows, l_tree = best[left_set]
                        r_cost, r_rows, r_tree = best[right_set]
                        rows = _merge_rows(
                            left_set, l_rows, right_set, r_rows, estimates, edges
                        )
                        cost = l_cost + r_cost + rows
                        if candidate is None or cost < candidate[0]:
                            candidate = (cost, rows, (l_tree, r_tree))
            best[subset] = candidate

    cost, rows, tree = best[frozenset(bindings)]
    subplans = {
        subset: (entry[0], entry[1])
        for subset, entry in best.items()
        if entry is not None
    }
    plan = JoinPlan(
        order=flatten_tree(tree), cost=cost, result_rows=rows,
        tree=tree, subplans=subplans,
    )
    if memo is not None:
        memo.store(key, plan)
    return plan


def parallel_join_cost(
    serial_cost: float,
    n_partitions: int,
    partition_overhead: float,
    skew: float = 1.0,
) -> float:
    """Planner-side estimate of a range-partitioned join's cost.

    The partitions run concurrently, so the serial join cost divides by
    the partition count — inflated by ``skew`` (max partition size over
    mean partition size, >= 1) because response time is the *max* over
    partitions, not the mean — and the coordinator's partitioning pass
    (one read plus one write of both inputs, in the same cost unit as
    ``serial_cost``) is added back as serial work:

        cost = overhead + skew * serial_cost / n_partitions

    With one partition this is serial cost plus pure overhead — which is
    why the executor degrades to the serial path instead.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if skew < 1.0:
        raise ValueError("skew is max/mean partition size; it cannot be < 1")
    return partition_overhead + skew * serial_cost / n_partitions


def _join_rows(
    subset: FrozenSet[str],
    subset_rows: float,
    newcomer: str,
    estimates: Dict[str, TableEstimate],
    edges: Sequence[JoinEdge],
) -> float:
    connecting = [e for e in edges if e.connects(subset, newcomer)]
    if not connecting:
        # Cross product: the paper's DP exists precisely to avoid this.
        return subset_rows * estimates[newcomer].rows
    # Under the constant-fan-out assumption each connecting predicate
    # multiplies by its fan-out once and further predicates only filter.
    fanout = min(e.fanout for e in connecting)
    return max(1.0, subset_rows * fanout / max(1.0, len(connecting)))


def _merge_rows(
    left: FrozenSet[str],
    left_rows: float,
    right: FrozenSet[str],
    right_rows: float,
    estimates: Dict[str, TableEstimate],
    edges: Sequence[JoinEdge],
) -> float:
    """Estimated rows of a bushy join of two solved subplans.

    Each edge's fan-out counts expected partners in the *base* relation
    on its far side, so its selectivity is ``fanout / base_rows``; the
    product form reduces exactly to :func:`_join_rows` when ``right`` is
    a single base relation (``right_rows == base_rows``), keeping bushy
    and left-deep candidates on one comparable cost scale.
    """
    crossing = []
    for e in edges:
        if e.left in left and e.right in right:
            crossing.append((e.fanout, estimates[e.right].rows))
        elif e.right in left and e.left in right:
            crossing.append((e.fanout, estimates[e.left].rows))
    if not crossing:
        return left_rows * right_rows
    selectivity = min(f / max(1.0, base) for f, base in crossing)
    return max(1.0, left_rows * right_rows * selectivity / max(1.0, len(crossing)))
