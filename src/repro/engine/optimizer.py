"""Join-order optimization for unnested chain queries (Section 8).

"To evaluate Query Q'_K, an optimal join order may be determined by
using, say, a dynamic programming method, to minimize the sizes of the
intermediate relations.  If, as assumed, each tuple of a relation joins
with a constant number of tuples of another relation, the size of an
intermediate relation will be proportional to a joining relation."

This module implements that: a Selinger-style dynamic program over
connected subsets of the join graph, minimizing the summed estimated
intermediate cardinalities.  Under the paper's constant-fan-out
assumption the estimate for joining a relation in through a predicate is
``rows(subset) * fanout``; a relation joined in with no connecting
predicate costs the full cross product.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Tuple


@dataclass(frozen=True)
class TableEstimate:
    """Cardinality statistics for one relation."""

    rows: int

    def __post_init__(self):
        if self.rows < 0:
            raise ValueError("row estimate cannot be negative")


@dataclass(frozen=True)
class JoinEdge:
    """An (undirected) equi-join predicate between two bindings."""

    left: str
    right: str
    #: Estimated number of right-side tuples each left tuple joins (the
    #: paper's constant C); symmetric by assumption.
    fanout: float = 7.0

    def connects(self, subset: FrozenSet[str], binding: str) -> bool:
        """Whether this edge joins ``binding`` to a table already in ``subset``."""
        return (self.left in subset and self.right == binding) or (
            self.right in subset and self.left == binding
        )


@dataclass
class JoinPlan:
    """The DP result: an order and its estimated total intermediate size."""

    order: List[str]
    cost: float
    result_rows: float


def optimize_join_order(
    estimates: Dict[str, TableEstimate],
    edges: Sequence[JoinEdge],
) -> JoinPlan:
    """Left-deep join order minimizing summed intermediate cardinalities.

    Exhaustive dynamic programming over subsets — exact for the handful of
    relations a chain query produces (K-level chains have K relations).
    """
    bindings = sorted(estimates)
    if not bindings:
        raise ValueError("need at least one relation")
    n = len(bindings)
    if n > 14:
        raise ValueError("join-order DP supports at most 14 relations")

    # best[subset] = (cost, result_rows, order)
    best: Dict[FrozenSet[str], Tuple[float, float, List[str]]] = {}
    for b in bindings:
        best[frozenset([b])] = (0.0, float(estimates[b].rows), [b])

    for size in range(2, n + 1):
        for combo in combinations(bindings, size):
            subset = frozenset(combo)
            candidate: Tuple[float, float, List[str]] = None
            for newcomer in combo:
                rest = subset - {newcomer}
                if rest not in best:
                    continue
                rest_cost, rest_rows, rest_order = best[rest]
                rows = _join_rows(rest, rest_rows, newcomer, estimates, edges)
                cost = rest_cost + rows  # accumulate intermediate sizes
                if candidate is None or cost < candidate[0]:
                    candidate = (cost, rows, rest_order + [newcomer])
            best[subset] = candidate

    cost, rows, order = best[frozenset(bindings)]
    return JoinPlan(order=order, cost=cost, result_rows=rows)


def parallel_join_cost(
    serial_cost: float,
    n_partitions: int,
    partition_overhead: float,
    skew: float = 1.0,
) -> float:
    """Planner-side estimate of a range-partitioned join's cost.

    The partitions run concurrently, so the serial join cost divides by
    the partition count — inflated by ``skew`` (max partition size over
    mean partition size, >= 1) because response time is the *max* over
    partitions, not the mean — and the coordinator's partitioning pass
    (one read plus one write of both inputs, in the same cost unit as
    ``serial_cost``) is added back as serial work:

        cost = overhead + skew * serial_cost / n_partitions

    With one partition this is serial cost plus pure overhead — which is
    why the executor degrades to the serial path instead.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if skew < 1.0:
        raise ValueError("skew is max/mean partition size; it cannot be < 1")
    return partition_overhead + skew * serial_cost / n_partitions


def _join_rows(
    subset: FrozenSet[str],
    subset_rows: float,
    newcomer: str,
    estimates: Dict[str, TableEstimate],
    edges: Sequence[JoinEdge],
) -> float:
    connecting = [e for e in edges if e.connects(subset, newcomer)]
    if not connecting:
        # Cross product: the paper's DP exists precisely to avoid this.
        return subset_rows * estimates[newcomer].rows
    # Under the constant-fan-out assumption each connecting predicate
    # multiplies by its fan-out once and further predicates only filter.
    fanout = min(e.fanout for e in connecting)
    return max(1.0, subset_rows * fanout / max(1.0, len(connecting)))
