"""The Section 6 pipelined evaluation of unnested aggregate queries.

"Although the unnested Query JA consists of three queries instead of one,
by pipelining the result of one query to another, the three flat queries
can be evaluated in parallel in the main memory. ... Since the operations
are pipelined, this process is essentially the extended merge-join."

This module implements that single-pass strategy over heap files: both
relations are sorted once (R on U, S on V); as the merge scan walks R, the
group ``T'(u)`` for each *distinct* outer join-value ``u`` is aggregated
exactly once (``A'(u)``, ``D(A'(u))``) and memoized, so later R-tuples
carrying the same value reuse it without touching S again — the paper's
"as soon as u1 is obtained, it is pipelined to Query T2 ... then, for all
R-tuples r with r.U = u1 ... the degree d_r is computed".

The COUNT left outer join (Query COUNT') falls out naturally: an R-tuple
whose group is empty compares against the constant 0.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Hashable, Optional, Tuple

from ..data.relation import FuzzyRelation
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import Op, intervals_intersect, possibility
from ..fuzzy.crisp import CrispNumber
from ..join.merge_join import MergeJoin
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .aggregates import DegreePolicy, apply_aggregate

TupleDegree = Callable[[FuzzyTuple], float]


class JAPipeline:
    """One-pass evaluation of

        SELECT R.<project> FROM R
        WHERE p1 AND R.<y> op1 (SELECT AGG(S.<z>) FROM S
                                WHERE p2 AND S.<v> = R.<u>)

    over heap files, per the Section 6 pipelining description.
    """

    def __init__(
        self,
        outer: HeapFile,
        inner: HeapFile,
        u_attr: str,
        v_attr: str,
        y_attr: str,
        op1: Op,
        agg_func: str,
        z_attr: str,
        project_attr=None,
        p1: Optional[TupleDegree] = None,
        p2: Optional[TupleDegree] = None,
        policy: DegreePolicy = DegreePolicy.ONE,
        project_attrs=None,
    ):
        self.outer = outer
        self.inner = inner
        self.u_index = outer.schema.index_of(u_attr)
        self.v_index = inner.schema.index_of(v_attr)
        self.y_index = outer.schema.index_of(y_attr)
        self.z_index = inner.schema.index_of(z_attr)
        if project_attrs is None:
            project_attrs = [project_attr] if project_attr is not None else ["ID"]
        self.project_attrs = list(project_attrs)
        self.project_indices = [outer.schema.index_of(a) for a in self.project_attrs]
        self.u_attr, self.v_attr = u_attr, v_attr
        self.op1 = op1
        self.agg_func = agg_func.upper()
        self.p1 = p1
        self.p2 = p2
        self.policy = policy

    @property
    def estimated_rows(self) -> float:
        """Coarse output estimate: outer tuples filtered by the aggregate compare.

        The pipeline emits at most one answer per outer tuple; the 0.5
        filter factor mirrors
        :data:`repro.observe.explain.PREDICATE_SELECTIVITY`.
        """
        return max(1.0, 0.5 * self.outer.n_tuples)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        disk,
        buffer_pages: int,
        stats: Optional[OperationStats] = None,
        metrics=None,
        tracer=None,
    ) -> FuzzyRelation:
        """Run the pipelined JA evaluation on the storage engine; returns the answer."""
        stats = stats if stats is not None else OperationStats()
        om = None
        started = 0.0
        if metrics is not None:
            om = metrics.op(
                self, label=f"JAPipeline({self.outer.name} -> {self.inner.name})"
            )
            started = time.perf_counter()
        join = MergeJoin(disk, buffer_pages, stats, metrics=metrics, tracer=tracer)
        # A'(u) / D(A'(u)) memo, keyed by the value representation of u —
        # the binary-identity grouping Theorem 6.1 relies on.
        groups: Dict[Hashable, Optional[Tuple[object, float]]] = {}

        def pair(r: FuzzyTuple, s: FuzzyTuple, st: Optional[OperationStats]) -> float:
            u = r[self.u_index]
            if u.key() in groups:
                return 0.0  # group already aggregated; skip S work entirely
            if st is not None:
                st.count_fuzzy()
            if not intervals_intersect(u, s[self.v_index]):
                return 0.0
            degree = min(s.degree, possibility(s[self.v_index], Op.EQ, u))
            if degree > 0.0 and self.p2 is not None:
                if st is not None:
                    st.count_fuzzy()
                degree = min(degree, self.p2(s))
            return degree

        def init(_r: FuzzyTuple):
            return {}

        def step(members, s: FuzzyTuple, degree: float):
            if degree > 0.0:
                key = s[self.z_index].key()
                if key not in members or degree > members[key][1]:
                    members[key] = (s[self.z_index], degree)
            return members

        from ..errors import DiskFullError
        from ..join.nested_loop import NestedLoopJoin

        folded = join.fold(
            self.outer, self.u_attr, self.inner, self.v_attr, pair, init, step
        )
        try:
            answer = self._fold_answer(folded, groups, stats, om)
        except DiskFullError:
            # The merge path failed while spilling sort runs; nothing was
            # folded yet, so rerun the same pair/init/step fold on the
            # read-only nested loop.  The group memo stays correct: pairs
            # outside Rng(r) contribute degree 0 and aggregation still
            # happens exactly once per distinct u.
            if metrics is not None:
                metrics.degraded = True
                metrics.degraded_reason = (
                    "JA pipeline spill hit DiskFullError; nested-loop fallback"
                )
            groups.clear()
            fallback = NestedLoopJoin(disk, buffer_pages, stats)
            folded = fallback.fold(self.outer, self.inner, pair, init, step)
            answer = self._fold_answer(folded, groups, stats, om)
        if om is not None:
            om.wall_seconds += time.perf_counter() - started
        return answer

    def _fold_answer(self, folded, groups, stats, om) -> FuzzyRelation:
        answer = FuzzyRelation(self.outer.schema.project(self.project_attrs))
        for r, members in folded:
            if om is not None:
                om.rows_in += 1
            u_key = r[self.u_index].key()
            if u_key not in groups:
                # Pipeline hand-off: T'(u) just completed; apply AGG once.
                groups[u_key] = apply_aggregate(
                    self.agg_func, list(members.values()), self.policy
                )
            degree = self._outer_degree(r, groups[u_key], stats)
            if degree > 0.0:
                if om is not None:
                    om.rows_out += 1
                answer.add(
                    FuzzyTuple(tuple(r[i] for i in self.project_indices), degree)
                )
            elif om is not None:
                om.prunes += 1
        return answer

    def _outer_degree(self, r: FuzzyTuple, aggregate, stats: Optional[OperationStats]) -> float:
        degree = r.degree
        if self.p1 is not None:
            if stats is not None:
                stats.count_fuzzy()
            degree = min(degree, self.p1(r))
        if degree == 0.0:
            return 0.0
        if aggregate is None:
            # Empty group: NULL for everything but COUNT...
            if self.agg_func != "COUNT":
                return 0.0
            value, agg_degree = CrispNumber(0.0), 1.0  # ...the outer-join ELSE branch
        else:
            value, agg_degree = aggregate
        if stats is not None:
            stats.count_fuzzy()
        return min(degree, agg_degree, possibility(r[self.y_index], self.op1, value))
