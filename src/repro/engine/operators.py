"""Physical operators over heap files.

These are the building blocks the *unnested* queries run on: scans with
selection pushdown, materialization, external sort, and the two join
algorithms, all charging their events into a shared
:class:`~repro.storage.stats.OperationStats`.  The naive evaluator
(:mod:`repro.engine.semantics`) is the logical-level counterpart; this
module exists so the paper's performance story — flat plans on the
extended merge-join versus nested-loop evaluation — can be measured on
the storage engine, not just on in-memory relations.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..data.relation import FuzzyRelation
from ..data.schema import Schema
from ..data.tuples import FuzzyTuple
from ..join.merge_join import MergeJoin
from ..join.nested_loop import NestedLoopJoin
from ..join.predicates import JoinPredicate, PairDegree
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats

_materialize_counter = itertools.count(1)


def unique_names(names: Iterable[str]) -> List[str]:
    """Deterministically de-duplicate attribute names with numeric suffixes.

    Shared by schema concatenation and the compiler's layout bookkeeping so
    both always agree on the generated names.
    """
    out: List[str] = []
    taken = set()
    for name in names:
        candidate = name
        suffix = 0
        while candidate in taken:
            suffix += 1
            candidate = f"{name}_{suffix}"
        taken.add(candidate)
        out.append(candidate)
    return out


def concat_schemas(left: Schema, right: Schema) -> Schema:
    """Concatenate schemas, suffixing clashing attribute names.

    Compiled plans address columns by position (the executor keeps a
    layout map), so the generated names only need to be unique.
    """
    from ..data.schema import Attribute

    attrs = list(left.attributes) + list(right.attributes)
    names = unique_names(a.name for a in attrs)
    return Schema(
        [Attribute(name, attr.type, attr.domain) for name, attr in zip(names, attrs)]
    )


class ExecutionContext:
    """Shared disk, buffer budget, and statistics for one plan execution.

    ``metrics`` is an optional :class:`~repro.observe.metrics.QueryMetrics`
    collector and ``tracer`` an optional
    :class:`~repro.observe.trace.SpanTracer`; when both are ``None`` (the
    default) the operators run the exact pre-observability code paths —
    every touch point is guarded by an ``is not None`` check.

    ``workers`` and ``shards`` are *execution-time* knobs, never baked
    into a plan: cached operator trees are shared across sessions and
    threads, so the parallel/serial and sharded/local decisions — and the
    per-execution comparison kernel — live here.  ``guard`` carries the
    query's deadline/cancel limits so partition workers can derive their
    own linked guards, and ``sharded`` the session's
    :class:`~repro.shard.ShardedStorage` (when one exists) so merge-joins
    over placed base relations can scatter-gather across the shard nodes.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer_pages: int,
        stats: Optional[OperationStats] = None,
        metrics=None,
        tracer=None,
        pool=None,
        workers: int = 1,
        guard=None,
        kernel=None,
        shards: int = 1,
        sharded=None,
        adapt=None,
    ):
        from ..fuzzy.compare import ComparisonKernel

        self.disk = disk
        self.buffer_pages = buffer_pages
        self.stats = stats if stats is not None else OperationStats()
        self.metrics = metrics
        self.tracer = tracer
        self.workers = max(1, workers)
        self.guard = guard
        self.shards = max(1, shards)
        self.sharded = sharded
        #: Optional :class:`~repro.engine.adaptive.AdaptiveController`;
        #: when present, every merge-join edge re-costs itself against
        #: observed input cardinalities before dispatching.  ``None``
        #: (the default) keeps the exact pre-adaptive code paths.
        self.adapt = adapt
        #: Per-execution memoizing comparison kernel, shared by every
        #: operator (and every partition worker) of this one execution.
        self.kernel = kernel if kernel is not None else ComparisonKernel()
        if metrics is not None:
            metrics.parallel_workers = self.workers
            metrics.requested_shards = self.shards if sharded is not None else 0
        #: Optional :class:`~repro.storage.buffer.BufferPool` (or striped
        #: manager); :meth:`release` unpins all of its frames so a failed
        #: query can never wedge a shared pool into
        #: :class:`~repro.storage.buffer.BufferExhaustedError`.
        self.pool = pool
        #: Scratch heap files materialized during this execution; deleted
        #: by :meth:`release` whether the plan finished or failed.
        self.scratch_files: List[str] = []

    def scratch_name(self, prefix: str) -> str:
        """A fresh name for a scratch file materialized during execution."""
        name = f"__mat_{prefix}_{next(_materialize_counter)}"
        self.scratch_files.append(name)
        return name

    def mark_degraded(self, reason: str) -> None:
        """Record that execution fell back to a degraded strategy."""
        if self.metrics is not None:
            self.metrics.degraded = True
            self.metrics.degraded_reason = reason

    def count_replan(self) -> None:
        """Record that a join edge re-costed itself mid-query."""
        if self.metrics is not None:
            self.metrics.replans += 1

    def mark_adapted(self, reason: str) -> None:
        """Record that re-costing actually changed an edge's execution.

        Mirrors :meth:`mark_degraded`: metrics-guarded, and additionally
        emits a ``replan`` tracer span so the switch is visible in the
        span tree next to the join phases it altered.
        """
        if self.metrics is not None:
            self.metrics.adapted = True
            self.metrics.adapt_reason = reason
        if self.tracer is not None:
            with self.tracer.span(f"replan: {reason}"):
                pass

    def release(self) -> None:
        """Free everything this execution held: scratch files and pins.

        Idempotent, and called from a ``finally`` in
        :meth:`Operator.to_relation` so that neither a completed nor a
        failed plan leaks scratch heaps onto the shared disk or leaves
        pages pinned in a shared buffer pool.
        """
        for name in self.scratch_files:
            self.disk.delete(name)
        self.scratch_files.clear()
        if self.pool is not None:
            self.pool.unpin_all()


class TuplePredicate:
    """A single-relation predicate with its satisfaction-degree function.

    Used for selection pushdown: ``p1``/``p2`` of the paper's query shapes
    are evaluated while scanning, before any join.
    """

    def __init__(self, degree: Callable[[FuzzyTuple], float], label: str = "p"):
        self._degree = degree
        self.label = label

    def __call__(self, t: FuzzyTuple, stats: Optional[OperationStats]) -> float:
        if stats is not None:
            stats.count_fuzzy()
        return self._degree(t)

    def __repr__(self) -> str:
        return f"TuplePredicate({self.label})"


class Operator:
    """Base class: every operator produces a stream of fuzzy tuples."""

    schema: Schema
    #: Stamped by :func:`repro.observe.explain.annotate_estimates`.
    estimated_rows: Optional[float] = None

    def tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        """The operator's output stream, instrumented iff a collector/tracer is attached."""
        stream = self._tuples(ctx)
        if ctx.metrics is not None:
            stream = ctx.metrics.stream(self, stream)
        if ctx.tracer is not None:
            stream = ctx.tracer.stream(self.describe(), stream)
        return stream

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One line describing this node (no children)."""
        return type(self).__name__

    def children(self) -> List["Operator"]:
        """The operator's input subtrees (empty for leaves)."""
        return []

    def explain(self, depth: int = 0) -> str:
        """Indented multi-line rendering of this operator subtree."""
        pad = "  " * depth
        lines = [pad + self.describe()]
        lines.extend(child.explain(depth + 1) for child in self.children())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Terminal helpers
    # ------------------------------------------------------------------
    def to_relation(self, ctx: ExecutionContext) -> FuzzyRelation:
        """Run the plan and collect the answer with fuzzy-OR dedup.

        Whatever happens — success, a typed storage fault, a timeout —
        the context is released afterwards, deleting scratch heaps and
        unpinning any attached buffer pool.
        """
        try:
            return FuzzyRelation(self.schema, self.tuples(ctx))
        finally:
            ctx.release()


class Scan(Operator):
    """Sequential scan of a heap file, optionally with pushed-down selection.

    Selection rescales the tuple's degree to
    ``min(mu_R(r), d(p1(r)), ...)`` — exactly the reduction the paper
    applies before sorting ("only those tuples that satisfy p1 positively
    should be sorted").
    """

    def __init__(self, heap: HeapFile, predicates: Sequence[TuplePredicate] = ()):
        self.heap = heap
        self.predicates = list(predicates)
        self.schema = heap.schema

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        om = ctx.metrics.op(self) if ctx.metrics is not None else None
        with ctx.disk.use_stats(ctx.stats):
            for page_index in range(self.heap.n_pages):
                page = ctx.disk.read_page(self.heap.name, page_index)
                for record in page.records():
                    t = self.heap.serializer.decode(record)
                    if om is not None:
                        om.rows_in += 1
                    degree = t.degree
                    for predicate in self.predicates:
                        if degree == 0.0:
                            break
                        degree = min(degree, predicate(t, ctx.stats))
                    if degree > 0.0:
                        yield t.with_degree(degree)
                    elif om is not None:
                        om.prunes += 1

    def describe(self) -> str:
        """One-line label: heap name plus pushed-down filters."""
        preds = ", ".join(p.label for p in self.predicates) or "true"
        return f"Scan({self.heap.name}, filter={preds})"


class Materialize(Operator):
    """Write a stream to a scratch heap file (needed before sorting)."""

    def __init__(self, child: Operator, fixed_tuple_size: Optional[int] = None):
        self.child = child
        self.schema = child.schema
        self.fixed_tuple_size = fixed_tuple_size

    def materialize(self, ctx: ExecutionContext) -> HeapFile:
        """Write the child's tuples into a scratch heap file, charging the I/O."""
        name = ctx.scratch_name("rel")
        with ctx.disk.use_stats(ctx.stats):
            heap = HeapFile(name, self.schema, ctx.disk, self.fixed_tuple_size)
            heap.load(self.child.tuples(ctx))
        return heap

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        heap = self.materialize(ctx)
        with ctx.disk.use_stats(ctx.stats):
            for page_index in range(heap.n_pages):
                page = ctx.disk.read_page(heap.name, page_index)
                for record in page.records():
                    yield heap.serializer.decode(record)

    def describe(self) -> str:
        """One-line label for plan rendering."""
        return "Materialize"

    def children(self) -> List[Operator]:
        """The single child operator."""
        return [self.child]


def _as_heap(source: Operator, ctx: ExecutionContext) -> HeapFile:
    if isinstance(source, Scan) and not source.predicates:
        return source.heap
    return Materialize(source).materialize(ctx)


class MergeJoinOp(Operator):
    """Extended merge-join of two child operators on one equi-attribute pair.

    Residual predicates (further join conditions of type-J/chain queries)
    are folded into the pair degree.
    """

    def __init__(
        self,
        left: Operator,
        left_attr: str,
        right: Operator,
        right_attr: str,
        residual: Sequence[JoinPredicate] = (),
        pair_degree: Optional[PairDegree] = None,
    ):
        from ..join.predicates import join_degree
        from ..fuzzy.compare import Op

        self.left = left
        self.right = right
        self.left_attr = left_attr
        self.right_attr = right_attr
        self.schema = concat_schemas(left.schema, right.schema)
        predicates = [
            JoinPredicate(left.schema, left_attr, Op.EQ, right.schema, right_attr)
        ] + list(residual)
        # Retained so a per-execution comparison kernel can be woven into
        # the degree closure without baking it into (cached) plans.
        self._predicates = predicates if pair_degree is None else None
        self.pair_degree = pair_degree if pair_degree is not None else join_degree(predicates)

    def pair_degree_with(self, kernel) -> PairDegree:
        """The pair degree routed through ``kernel``, when we own the closure.

        A caller-supplied ``pair_degree`` is opaque and returned as-is;
        the default conjunction is rebuilt over the kernel so repeated
        ``(probe, candidate)`` evaluations hit its memo.
        """
        from ..join.predicates import join_degree

        if kernel is None or self._predicates is None:
            return self.pair_degree
        return join_degree(self._predicates, kernel)

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        from ..errors import DiskFullError

        left_heap = _as_heap(self.left, ctx)
        right_heap = _as_heap(self.right, ctx)
        pair_degree = self.pair_degree_with(ctx.kernel)

        workers = ctx.workers
        if ctx.adapt is not None:
            # The feedback loop: the inputs are materialized, so their
            # true cardinalities are known.  Past the q-error threshold
            # the edge re-costs itself and may switch join method or
            # give back its parallel budget — both alternatives are
            # bit-identical in results (the nested-loop path is PR 4's
            # degrade target, the serial path is PR 5's baseline).
            decision = ctx.adapt.consider(self, left_heap, right_heap, workers)
            if decision is not None:
                ctx.count_replan()
                if decision.method == "nested-loop":
                    ctx.mark_adapted(decision.reason)
                    fallback = NestedLoopJoin(ctx.disk, ctx.buffer_pages, ctx.stats)
                    for r, s, degree in fallback.pairs(
                        left_heap, right_heap, pair_degree
                    ):
                        yield r.concat(s, degree)
                    return
                if decision.workers != workers:
                    ctx.mark_adapted(decision.reason)
                    workers = decision.workers

        if ctx.shards > 1 and ctx.sharded is not None:
            from ..shard.executor import ShardedMergeJoin

            sharded = ShardedMergeJoin(
                ctx.sharded, ctx.buffer_pages, ctx.stats,
                metrics=ctx.metrics, tracer=ctx.tracer, guard=ctx.guard,
                kernel=ctx.kernel,
            )
            pairs = sharded.run(
                left_heap, self.left_attr, right_heap, self.right_attr, pair_degree
            )
            if pairs is not None:
                if sharded.failovers:
                    ctx.mark_degraded(
                        f"shard failover: {sharded.failovers} slice read(s) "
                        "completed from mirror replicas"
                    )
                for r, s, degree in pairs:
                    yield r.concat(s, degree)
                return
            # Scatter-gather declined (unplaced input, collapsed layout,
            # ...): the local paths below produce the identical answer.
            ctx.mark_degraded(
                f"sharded join fell back to local execution: {sharded.fallback_reason}"
            )

        if workers > 1:
            from ..parallel.join import PartitionedMergeJoin

            parallel = PartitionedMergeJoin(
                ctx.disk, ctx.buffer_pages, ctx.stats, workers,
                metrics=ctx.metrics, tracer=ctx.tracer, guard=ctx.guard,
                kernel=ctx.kernel,
            )
            pairs = parallel.run(
                left_heap, self.left_attr, right_heap, self.right_attr, pair_degree
            )
            if pairs is not None:
                for r, s, degree in pairs:
                    yield r.concat(s, degree)
                return
            # Partitioning declined (no statistics, skew, disk full, ...):
            # the serial path below produces the identical answer.
            ctx.mark_degraded(
                f"parallel join fell back to serial: {parallel.fallback_reason}"
            )

        join = MergeJoin(
            ctx.disk, ctx.buffer_pages, ctx.stats,
            metrics=ctx.metrics, tracer=ctx.tracer, kernel=ctx.kernel,
        )
        yielded = False
        try:
            for r, s, degree in join.pairs(
                left_heap, self.left_attr, right_heap, self.right_attr, pair_degree
            ):
                yielded = True
                yield r.concat(s, degree)
            return
        except DiskFullError:
            # The external sort could not spill its runs.  Nothing has
            # been yielded yet (every sort write precedes the first join
            # pair; the join phase itself only reads), so we can degrade
            # to the read-only nested-loop path and still produce the
            # exact same join result.
            if yielded:
                raise
            ctx.mark_degraded("merge-join spill hit DiskFullError; nested-loop fallback")
        fallback = NestedLoopJoin(ctx.disk, ctx.buffer_pages, ctx.stats)
        for r, s, degree in fallback.pairs(left_heap, right_heap, pair_degree):
            yield r.concat(s, degree)

    def describe(self) -> str:
        """One-line label: join attributes and comparison operator."""
        return f"MergeJoin({self.left_attr} = {self.right_attr})"

    def children(self) -> List[Operator]:
        """Both join inputs, outer first."""
        return [self.left, self.right]


class NestedLoopJoinOp(Operator):
    """Block nested-loop join (the baseline every nested query is stuck with)."""

    def __init__(self, left: Operator, right: Operator, pair_degree: PairDegree, label: str = ""):
        self.left = left
        self.right = right
        self.pair_degree = pair_degree
        self.schema = concat_schemas(left.schema, right.schema)
        self.label = label

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        left_heap = _as_heap(self.left, ctx)
        right_heap = _as_heap(self.right, ctx)
        join = NestedLoopJoin(ctx.disk, ctx.buffer_pages, ctx.stats)
        for r, s, degree in join.pairs(left_heap, right_heap, self.pair_degree):
            yield r.concat(s, degree)

    def describe(self) -> str:
        """One-line label: join attributes and comparison operator."""
        return f"NestedLoopJoin({self.label})"

    def children(self) -> List[Operator]:
        """Both join inputs, outer first."""
        return [self.left, self.right]


class Select(Operator):
    """Residual selection on an intermediate stream."""

    def __init__(self, child: Operator, predicates: Sequence[TuplePredicate]):
        self.child = child
        self.predicates = list(predicates)
        self.schema = child.schema

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        om = ctx.metrics.op(self) if ctx.metrics is not None else None
        for t in self.child.tuples(ctx):
            if om is not None:
                om.rows_in += 1
            degree = t.degree
            for predicate in self.predicates:
                if degree == 0.0:
                    break
                degree = min(degree, predicate(t, ctx.stats))
            if degree > 0.0:
                yield t.with_degree(degree)
            elif om is not None:
                om.prunes += 1

    def describe(self) -> str:
        """One-line label listing the residual predicates."""
        preds = ", ".join(p.label for p in self.predicates)
        return f"Select({preds})"

    def children(self) -> List[Operator]:
        """The single child operator."""
        return [self.child]


class Project(Operator):
    """Projection; duplicate elimination happens at `to_relation` (fuzzy OR)."""

    def __init__(self, child: Operator, attributes: Sequence[str]):
        self.child = child
        self.attributes = list(attributes)
        self.indices = [child.schema.index_of(a) for a in attributes]
        self.schema = child.schema.project(attributes)

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        for t in self.child.tuples(ctx):
            if ctx.stats is not None:
                ctx.stats.count_move()
            yield t.project(self.indices)

    def describe(self) -> str:
        """One-line label listing the projected columns."""
        return f"Project({', '.join(self.attributes)})"

    def children(self) -> List[Operator]:
        """The single child operator."""
        return [self.child]


class Threshold(Operator):
    """The WITH clause applied to the answer stream."""

    def __init__(self, child: Operator, threshold: float):
        self.child = child
        self.threshold = threshold
        self.schema = child.schema

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        from ..fuzzy.logic import meets_threshold

        om = ctx.metrics.op(self) if ctx.metrics is not None else None
        for t in self.child.tuples(ctx):
            if om is not None:
                om.rows_in += 1
            if meets_threshold(t.degree, self.threshold):
                yield t
            elif om is not None:
                om.prunes += 1

    def describe(self) -> str:
        """One-line label showing the ``WITH D >= z`` cut."""
        return f"Threshold(D >= {self.threshold})"

    def children(self) -> List[Operator]:
        """The single child operator."""
        return [self.child]
