"""Compile flat (unnested) queries into physical plans over heap files.

This is the storage-level execution path for the rewrites that produce a
single flat query — types N, J, SOME, and chain (Theorems 4.1, 4.2, 8.1):

    parse -> unnest -> FlatCompiler.compile -> Operator tree -> answer

The compiler pushes single-relation predicates into the scans (the paper:
"only those tuples in R (respectively, S) that satisfy p1 (respectively,
p2) positively should be sorted"), picks one fuzzy equi-join predicate per
new relation as the merge-join band, folds the remaining predicates into
the pair degree, and falls back to a block nested loop when no equi-join
predicate links a relation in.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..data.relation import FuzzyRelation
from ..data.schema import Attribute, Schema
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import Op, possibility
from ..fuzzy.linguistic import Vocabulary, lift
from ..join.predicates import JoinPredicate, join_degree
from ..sql.ast import ColumnRef, Comparison, Literal, SelectQuery
from ..sql.parser import parse
from ..storage.heap import HeapFile
from .operators import (
    ExecutionContext,
    MergeJoinOp,
    NestedLoopJoinOp,
    Operator,
    Project,
    Scan,
    Select,
    Threshold,
    TuplePredicate,
    unique_names,
)


class CompileError(Exception):
    """The query is outside the flat fragment the compiler supports."""


Column = Tuple[str, str]  # (binding, attribute)


def compile_comparison(
    predicate: Comparison,
    columns: List[Column],
    domains: Dict[Column, Optional[str]],
    vocabulary: Optional[Vocabulary] = None,
) -> TuplePredicate:
    """Compile ``X op Y`` into a degree function over a tuple layout.

    ``columns`` lists the ``(binding, attribute)`` pairs of the tuple the
    predicate will be evaluated against (positionally); literals resolve
    against the vocabulary in the domain of the opposite column.
    """

    def accessor(term, other):
        if isinstance(term, ColumnRef):
            try:
                index = columns.index((term.relation, term.attribute))
            except ValueError:
                raise CompileError(
                    f"column {term} not available at this plan point"
                ) from None
            return lambda t: t[index]
        assert isinstance(term, Literal)
        domain = None
        if isinstance(other, ColumnRef):
            domain = domains.get((other.relation, other.attribute))
        value = lift(term.value, vocabulary, domain)
        return lambda _t: value

    left = accessor(predicate.left, predicate.right)
    right = accessor(predicate.right, predicate.left)
    op = predicate.op

    def degree(t: FuzzyTuple) -> float:
        return possibility(left(t), op, right(t))

    return TuplePredicate(degree, label=str(predicate))


class DmlColumns:
    """Alias-tolerant column lookup for UPDATE / DELETE predicates.

    Serves :func:`compile_comparison` both as the positional ``columns``
    list (via :meth:`index`) and as the ``domains`` mapping (via
    :meth:`get`): a reference resolves when its binding is one of the
    accepted aliases (``None`` for unqualified columns, or the table name
    as typed / upper-cased) and its attribute exists in the schema.
    """

    def __init__(self, aliases, schema: Schema):
        self._aliases = aliases
        self._schema = schema

    def index(self, key) -> int:
        """Tuple position of ``(binding, attribute)``; ``ValueError`` if absent."""
        binding, attribute = key
        if binding in self._aliases and attribute in self._schema:
            return self._schema.index_of(attribute)
        raise ValueError(key)

    def get(self, key, default=None):
        """The linguistic domain of ``(binding, attribute)`` (domains view)."""
        binding, attribute = key
        if binding in self._aliases and attribute in self._schema:
            return self._schema.attribute(attribute).domain
        return default


class FlatCompiler:
    """Compiles fully-qualified flat SELECT queries to operator trees.

    ``indexes`` maps ``(TABLE, attribute)`` to a
    :class:`~repro.columnar.SupportIntervalIndex`; when present, the
    compiler costs the index access paths (``index_scan``,
    ``index_merge_join``) against the row paths with ``cost_model`` and
    picks the cheaper plan.  Either choice produces the bit-identical
    query answer, so the decision is pure economics.
    """

    def __init__(
        self,
        tables: Dict[str, HeapFile],
        vocabulary: Optional[Vocabulary] = None,
        indexes: Optional[Dict[Tuple[str, str], "object"]] = None,
        cost_model=None,
        histograms=None,
        bushy: bool = False,
        plan_memo=None,
    ):
        from ..storage.costs import PAPER_1992

        self.tables = {name.upper(): heap for name, heap in tables.items()}
        self.vocabulary = vocabulary
        self.indexes = dict(indexes) if indexes else {}
        self.cost_model = cost_model if cost_model is not None else PAPER_1992
        #: Optional :class:`~repro.engine.histogram.HistogramStore` — when
        #: present, join-edge fan-outs come from support-interval overlap
        #: counts instead of the constant ``fanout`` default.
        self.histograms = histograms
        #: Allow the Section 8 DP to consider bushy join trees.
        self.bushy = bushy
        #: Optional :class:`~repro.engine.optimizer.PlanMemo` shared
        #: across compilations (keyed on the statistics the DP saw).
        self.plan_memo = plan_memo

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def compile(
        self,
        query: Union[str, SelectQuery],
        optimize: bool = False,
        fanout: float = 7.0,
    ) -> Operator:
        """Compile to an operator tree.

        With ``optimize=True`` the FROM order is replaced by the Section 8
        dynamic-programming join order (minimizing estimated intermediate
        sizes under a constant fan-out assumption).
        """
        if isinstance(query, str):
            query = parse(query)
        if query.group_by or any(not isinstance(i, ColumnRef) for i in query.select):
            raise CompileError("the flat compiler supports plain column projections")

        bindings, domains = self._bindings(query)
        pushdown, joins = self._partition_predicates(query, bindings)
        tree = None
        if optimize and len(query.from_tables) > 1:
            query, tree = self._reorder(query, joins, fanout)

        # By compile time the WITH cut is a concrete float (prepared-query
        # placeholders are substituted before recompilation), so index
        # access paths can bake it in for result-preserving pruning.
        threshold = query.with_threshold if query.with_threshold is not None else 0.0

        if tree is not None and self._is_bushy(tree):
            by_binding = {table.binding: table for table in query.from_tables}
            plan, columns, pending = self._compile_tree(
                tree, by_binding, pushdown, list(joins), bindings, domains, threshold
            )
        else:
            plan, columns = self._initial_scan(
                query.from_tables[0], pushdown, domains, threshold
            )
            pending = list(joins)
            for table in query.from_tables[1:]:
                plan, columns, pending = self._join_in(
                    plan, columns, table, pushdown, pending, bindings, domains, threshold
                )

        if pending:
            # Cross-block correlations whose band predicate joined earlier.
            plan = Select(
                plan,
                [self._combined_predicate(p, columns, domains) for p in pending],
            )

        names = self._layout_names(columns)
        selected = [
            names[columns.index((item.relation, item.attribute))]
            for item in query.select
        ]
        plan = Project(plan, selected)
        return Threshold(plan, threshold)

    def execute(self, query: Union[str, SelectQuery], ctx: ExecutionContext) -> FuzzyRelation:
        """Compile ``query`` and run it, returning the answer relation."""
        return self.compile(query).to_relation(ctx)

    # ------------------------------------------------------------------
    # Join ordering (Section 8)
    # ------------------------------------------------------------------
    def _reorder(self, query: SelectQuery, joins: List[Comparison], fanout: float):
        from .optimizer import JoinEdge, TableEstimate, optimize_join_order

        by_binding = {table.binding: table for table in query.from_tables}
        estimates = {
            table.binding: TableEstimate(self.tables[table.name.upper()].n_tuples)
            for table in query.from_tables
        }
        edges = []
        for predicate in joins:
            if (
                predicate.op is Op.EQ
                and isinstance(predicate.left, ColumnRef)
                and isinstance(predicate.right, ColumnRef)
            ):
                edges.append(
                    JoinEdge(
                        predicate.left.relation,
                        predicate.right.relation,
                        self._edge_fanout(by_binding, predicate, fanout),
                    )
                )
        plan = optimize_join_order(
            estimates, edges, bushy=self.bushy, memo=self.plan_memo
        )
        ordered = tuple(by_binding[b] for b in plan.order)
        reordered = SelectQuery(
            select=query.select,
            from_tables=ordered,
            where=query.where,
            with_threshold=query.with_threshold,
            group_by=query.group_by,
            distinct=query.distinct,
        )
        return reordered, plan.tree

    def _edge_fanout(self, by_binding, predicate: Comparison, default: float) -> float:
        """Per-edge fan-out from the histogram store, or the constant default."""
        if self.histograms is None:
            return default
        left_table = by_binding[predicate.left.relation].name
        right_table = by_binding[predicate.right.relation].name
        return self.histograms.edge_fanout(
            left_table,
            predicate.left.attribute,
            right_table,
            predicate.right.attribute,
            default,
        )

    @staticmethod
    def _is_bushy(tree) -> bool:
        """True when ``tree`` is not purely left-deep.

        Left-deep trees compile through the original incremental
        :meth:`_join_in` loop (so the plans the non-adaptive path has
        always produced stay byte-for-byte the same); only genuinely
        bushy shapes take the recursive :meth:`_compile_tree` path.
        """
        while isinstance(tree, tuple):
            if isinstance(tree[1], tuple):
                return True
            tree = tree[0]
        return False

    def _compile_tree(
        self, tree, by_binding, pushdown, pending, bindings, domains, threshold
    ):
        """Recursively compile one :data:`~repro.engine.optimizer.JoinTree`.

        Leaves are bindings (compiled exactly like the first table of the
        left-deep path); internal nodes join two subplans with the first
        crossing fuzzy equi-join predicate as the merge band, the other
        crossing predicates folded into the pair degree, and a block
        nested loop when no equi-join predicate crosses the cut.  A
        binary join predicate is consumed at the unique node where its
        two bindings first share a subtree, so every predicate is applied
        exactly once — the same discipline as the incremental path.
        """
        if isinstance(tree, str):
            plan, columns = self._initial_scan(
                by_binding[tree], pushdown, domains, threshold
            )
            return plan, columns, pending
        left_plan, left_columns, pending = self._compile_tree(
            tree[0], by_binding, pushdown, pending, bindings, domains, threshold
        )
        right_plan, right_columns, pending = self._compile_tree(
            tree[1], by_binding, pushdown, pending, bindings, domains, threshold
        )
        left_bound = {binding for binding, _ in left_columns}
        right_bound = {binding for binding, _ in right_columns}
        applicable: List[Comparison] = []
        deferred: List[Comparison] = []
        for predicate in pending:
            refs = self._referenced_bindings(predicate, bindings)
            if refs & left_bound and refs & right_bound:
                applicable.append(predicate)
            else:
                deferred.append(predicate)

        band = None
        for predicate in applicable:
            if (
                predicate.op is Op.EQ
                and isinstance(predicate.left, ColumnRef)
                and isinstance(predicate.right, ColumnRef)
            ):
                band = predicate
                break

        new_columns = left_columns + right_columns
        if band is not None:
            applicable.remove(band)
            left_ref, right_ref = band.left, band.right
            if left_ref.relation not in left_bound:
                left_ref, right_ref = right_ref, left_ref
            residual = [
                self._tree_residual(p, left_columns, right_columns)
                for p in applicable
            ]
            left_names = self._layout_names(left_columns)
            right_names = self._layout_names(right_columns)
            joined_plan = MergeJoinOp(
                left_plan,
                left_names[left_columns.index((left_ref.relation, left_ref.attribute))],
                right_plan,
                right_names[
                    right_columns.index((right_ref.relation, right_ref.attribute))
                ],
                residual=residual,
            )
        else:
            residual = [
                self._tree_residual(p, left_columns, right_columns)
                for p in applicable
            ]
            joined_plan = NestedLoopJoinOp(
                left_plan,
                right_plan,
                join_degree(residual),
                label="+".join(sorted(right_bound)),
            )
        return joined_plan, new_columns, deferred

    def _tree_residual(
        self,
        predicate: Comparison,
        left_columns: List[Column],
        right_columns: List[Column],
    ) -> JoinPredicate:
        """A predicate between two compiled subtrees (bushy residual)."""
        left_ref, right_ref = predicate.left, predicate.right
        op = predicate.op
        left_bound = {binding for binding, _ in left_columns}
        if isinstance(left_ref, ColumnRef) and left_ref.relation not in left_bound:
            left_ref, right_ref = right_ref, left_ref
            op = op.flipped()
        if not (isinstance(left_ref, ColumnRef) and isinstance(right_ref, ColumnRef)):
            raise CompileError(f"join predicates must relate two columns: {predicate}")
        left_names = self._layout_names(left_columns)
        right_names = self._layout_names(right_columns)
        return JoinPredicate(
            self._columns_schema(left_columns),
            left_names[left_columns.index((left_ref.relation, left_ref.attribute))],
            op,
            self._columns_schema(right_columns),
            right_names[right_columns.index((right_ref.relation, right_ref.attribute))],
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def _bindings(self, query: SelectQuery):
        bindings: Dict[str, Schema] = {}
        domains: Dict[Column, Optional[str]] = {}
        for table in query.from_tables:
            heap = self.tables.get(table.name.upper())
            if heap is None:
                raise CompileError(f"no heap file registered for {table.name!r}")
            if table.binding in bindings:
                raise CompileError(f"duplicate binding {table.binding!r}")
            bindings[table.binding] = heap.schema
            for attr in heap.schema:
                domains[(table.binding, attr.name)] = attr.domain
        return bindings, domains

    def _partition_predicates(self, query: SelectQuery, bindings: Dict[str, Schema]):
        pushdown: Dict[str, List[Comparison]] = {b: [] for b in bindings}
        joins: List[Comparison] = []
        for predicate in query.where:
            if not isinstance(predicate, Comparison):
                raise CompileError(f"unsupported predicate in flat query: {predicate!r}")
            refs = self._referenced_bindings(predicate, bindings)
            if len(refs) == 0:
                raise CompileError("constant predicates are not supported")
            if len(refs) == 1:
                pushdown[next(iter(refs))].append(predicate)
            else:
                joins.append(predicate)
        return pushdown, joins

    def _referenced_bindings(self, predicate: Comparison, bindings) -> set:
        refs = set()
        for side in (predicate.left, predicate.right):
            if isinstance(side, ColumnRef):
                if side.relation is None or side.relation not in bindings:
                    raise CompileError(
                        f"flat compilation requires fully qualified columns, got {side}"
                    )
                refs.add(side.relation)
        return refs

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _initial_scan(
        self, table, pushdown, domains, threshold: float = 0.0
    ) -> Tuple[Operator, List[Column]]:
        heap = self.tables[table.name.upper()]
        columns = [(table.binding, a.name) for a in heap.schema]
        predicates_ast = pushdown.get(table.binding, [])
        predicates = [
            self._combined_predicate(p, columns, domains) for p in predicates_ast
        ]
        indexed = self._index_scan_path(
            table, heap, predicates_ast, predicates, domains, threshold
        )
        if indexed is not None:
            return indexed, columns
        return Scan(heap, predicates), columns

    def _index_scan_path(
        self, table, heap, predicates_ast, predicates, domains, threshold
    ) -> Optional[Operator]:
        """An :class:`~repro.columnar.IndexScan` when one wins on cost.

        Applicable iff the binding's entire pushdown is a single
        ``attribute op literal`` comparison with ``op`` in
        ``{=, <, <=, >, >=}``, the attribute is indexed, and the lifted
        literal has a single-interval support (crisp number or trapezoid)
        — the shapes the vectorized kernels cover exactly.  A literal on
        the left flips the operator (``10 < X`` is ``X > 10``).
        """
        if not self.indexes or len(predicates_ast) != 1:
            return None
        predicate = predicates_ast[0]
        if predicate.op not in (Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE):
            return None
        op = predicate.op
        column, literal = predicate.left, predicate.right
        if isinstance(literal, ColumnRef):
            column, literal = literal, column
            op = op.flipped()
        if not isinstance(column, ColumnRef) or not isinstance(literal, Literal):
            return None
        index = self.indexes.get((heap.name.upper(), column.attribute))
        if index is None:
            return None
        from ..columnar import IndexScan
        from ..columnar.index import probe_support
        from ..fuzzy.crisp import CrispNumber
        from ..fuzzy.trapezoid import TrapezoidalNumber

        probe = lift(
            literal.value,
            self.vocabulary,
            domains.get((column.relation, column.attribute)),
        )
        if not isinstance(probe, (CrispNumber, TrapezoidalNumber)):
            return None
        begin, end = probe_support(probe)
        index_pages = len(index.probe_pages(op, begin, end))
        candidates = index.candidate_entries_for(op, begin, end)
        per_page = max(1, heap.n_tuples // max(1, heap.n_pages))
        data_pages = min(heap.n_pages, -(-candidates // per_page))
        index_cost = self.cost_model.index_scan_seconds(
            index_pages, candidates, data_pages
        )
        seq_cost = self.cost_model.seq_scan_seconds(heap.n_pages, heap.n_tuples)
        if index_cost >= seq_cost:
            return None
        return IndexScan(heap, predicates, index, probe, threshold, op=op)

    def _join_in(
        self, plan, columns, table, pushdown, pending, bindings, domains, threshold=0.0
    ):
        heap = self.tables[table.name.upper()]
        scan_columns = [(table.binding, a.name) for a in heap.schema]
        scan = Scan(
            heap,
            [
                self._combined_predicate(p, scan_columns, domains)
                for p in pushdown.get(table.binding, [])
            ],
        )
        joined = {binding for binding, _ in columns}
        applicable: List[Comparison] = []
        deferred: List[Comparison] = []
        for predicate in pending:
            refs = self._referenced_bindings(predicate, bindings)
            if table.binding in refs and refs - {table.binding} <= joined:
                applicable.append(predicate)
            else:
                deferred.append(predicate)

        band = None
        for predicate in applicable:
            if (
                predicate.op is Op.EQ
                and isinstance(predicate.left, ColumnRef)
                and isinstance(predicate.right, ColumnRef)
            ):
                band = predicate
                break

        new_columns = columns + scan_columns
        if band is not None:
            applicable.remove(band)
            left_ref, right_ref = band.left, band.right
            if left_ref.relation == table.binding:
                left_ref, right_ref = right_ref, left_ref
            residual = [
                self._residual_predicate(p, columns, table.binding, heap.schema)
                for p in applicable
            ]
            names = self._layout_names(columns)
            left_attr = names[columns.index((left_ref.relation, left_ref.attribute))]
            joined_plan = self._index_join_path(
                plan, left_attr, left_ref, scan, right_ref, residual, threshold
            )
            if joined_plan is None:
                joined_plan = MergeJoinOp(
                    plan,
                    left_attr,
                    scan,
                    right_ref.attribute,
                    residual=residual,
                )
        else:
            residual = [
                self._residual_predicate(p, columns, table.binding, heap.schema)
                for p in applicable
            ]
            joined_plan = NestedLoopJoinOp(
                plan, scan, join_degree(residual), label=table.binding
            )
        return joined_plan, new_columns, deferred

    def _index_join_path(
        self, plan, left_attr, left_ref, scan, right_ref, residual, threshold
    ) -> Optional[Operator]:
        """An :class:`~repro.columnar.IndexMergeJoinOp` when one wins on cost.

        Applicable iff both band inputs are predicate-free base-table
        scans (the index enumerates the *whole* relation, so any pushed
        selection would be lost) with support-interval indexes on both
        band attributes.  Residual predicates ride along in the pair
        degree, exactly as on the sort-merge path.
        """
        if not self.indexes:
            return None
        if type(plan) is not Scan or plan.predicates:
            return None
        if type(scan) is not Scan or scan.predicates:
            return None
        left_index = self.indexes.get((plan.heap.name.upper(), left_ref.attribute))
        right_index = self.indexes.get((scan.heap.name.upper(), right_ref.attribute))
        if left_index is None or right_index is None:
            return None
        from ..columnar import IndexMergeJoinOp

        index_pages = left_index.n_pages + right_index.n_pages
        entries = left_index.n_entries + right_index.n_entries
        index_cost = self.cost_model.index_merge_join_seconds(
            index_pages, entries, plan.heap.n_pages + scan.heap.n_pages
        )
        sort_cost = self.cost_model.sort_merge_join_seconds(
            plan.heap.n_pages,
            scan.heap.n_pages,
            plan.heap.n_tuples,
            scan.heap.n_tuples,
        )
        if index_cost >= sort_cost:
            return None
        return IndexMergeJoinOp(
            plan,
            left_attr,
            scan,
            right_ref.attribute,
            left_index,
            right_index,
            residual=residual,
            threshold=threshold,
        )

    # ------------------------------------------------------------------
    # Predicate compilation
    # ------------------------------------------------------------------
    def _residual_predicate(
        self,
        predicate: Comparison,
        left_columns: List[Column],
        right_binding: str,
        right_schema: Schema,
    ) -> JoinPredicate:
        """A predicate between the accumulated left side and the new table."""
        left_ref, right_ref = predicate.left, predicate.right
        op = predicate.op
        if isinstance(left_ref, ColumnRef) and left_ref.relation == right_binding:
            left_ref, right_ref = right_ref, left_ref
            op = op.flipped()
        if not (isinstance(left_ref, ColumnRef) and isinstance(right_ref, ColumnRef)):
            raise CompileError(f"join predicates must relate two columns: {predicate}")
        left_schema = self._columns_schema(left_columns)
        names = self._layout_names(left_columns)
        return JoinPredicate(
            left_schema,
            names[left_columns.index((left_ref.relation, left_ref.attribute))],
            op,
            right_schema,
            right_ref.attribute,
        )

    def _combined_predicate(
        self, predicate: Comparison, columns: List[Column], domains
    ) -> TuplePredicate:
        return compile_comparison(predicate, columns, domains, self.vocabulary)

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _layout_names(columns: List[Column]) -> List[str]:
        """The combined-schema names, matching ``concat_schemas``."""
        return unique_names(attr for _binding, attr in columns)

    @classmethod
    def _columns_schema(cls, columns: List[Column]) -> Schema:
        return Schema([Attribute(name) for name in cls._layout_names(columns)])


def execute_unnested_storage(
    query: Union[str, SelectQuery],
    tables: Dict[str, HeapFile],
    ctx: ExecutionContext,
    vocabulary: Optional[Vocabulary] = None,
) -> FuzzyRelation:
    """Unnest a query and run it on the storage engine.

    Only nesting types whose rewrite is a single flat query (FLAT, N, J,
    SOME, chain) are supported here; pipelined types (JX, JA, JALL) run at
    the logical level via :func:`repro.unnest.execute_unnested`.
    """
    from ..data.catalog import Catalog
    from ..unnest.rewriter import unnest

    catalog = Catalog(vocabulary)
    for name, heap in tables.items():
        # Register empty stand-ins carrying the schemas; the rewriter only
        # needs schemas and the vocabulary for name resolution.
        catalog.register(name, FuzzyRelation(heap.schema))
    plan = unnest(query, catalog)
    if plan.steps or not isinstance(plan.final, SelectQuery):
        raise CompileError(
            f"nesting type {plan.nesting_type!r} needs the pipelined executor"
        )
    return FlatCompiler(tables, vocabulary).execute(plan.final, ctx)
