"""The naive evaluator: the paper's execution semantics, verbatim.

This evaluator interprets a Fuzzy SQL AST directly over in-memory
relations, evaluating every subquery once per combination of outer tuples
(the nested-loop strategy the paper says nested queries are stuck with).
It is deliberately simple and serves two roles:

* the **correctness oracle** every unnesting rewrite is tested against
  (Theorems 4.1-8.1 assert equivalence to exactly this semantics), and
* the reference implementation of degree propagation: conjunction by
  ``min``, duplicate elimination by ``max``, subquery membership by
  ``d(r.Y in T) = max_z min(mu_T(z), d(r.Y = z))`` and its quantified and
  negated variants.

Degree auto-inclusion: ordinarily the degrees of all FROM tuples join the
conjunction (``d = min(mu_R(r), mu_S(s), ...)``); a query that references
degrees *explicitly* (``R.D``, the JXT form of Section 5) opts out of the
automatic inclusion and controls degrees itself.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from ..data.catalog import Catalog
from ..data.relation import FuzzyRelation
from ..data.schema import Attribute, Schema
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import Op, possibility
from ..fuzzy.distribution import Distribution
from ..fuzzy.linguistic import lift
from ..storage.stats import OperationStats
from ..sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    DegreeRef,
    ExistsPredicate,
    IdentityComparison,
    InPredicate,
    Literal,
    NegatedConjunction,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
)
from ..sql.errors import BindError
from ..sql.parser import parse
from .aggregates import DegreePolicy, aggregate_degrees, apply_aggregate


class _Env:
    """Tuple bindings of the current block, chained to enclosing blocks."""

    __slots__ = ("bindings", "parent")

    def __init__(
        self,
        bindings: List[Tuple[str, Schema, FuzzyTuple]],
        parent: Optional["_Env"] = None,
    ):
        self.bindings = bindings
        self.parent = parent

    def resolve(self, ref: ColumnRef) -> Tuple[Distribution, Optional[str]]:
        """Return ``(value, domain)`` for a column reference."""
        env: Optional[_Env] = self
        while env is not None:
            hit = env._resolve_local(ref)
            if hit is not None:
                return hit
            env = env.parent
        raise BindError(f"cannot resolve column {ref}")

    def _resolve_local(self, ref: ColumnRef):
        matches = []
        for binding, schema, t in self.bindings:
            if ref.relation is not None and ref.relation != binding:
                continue
            if ref.attribute in schema:
                attr = schema.attribute(ref.attribute)
                matches.append((t[schema.index_of(ref.attribute)], attr.domain))
            elif ref.relation is not None:
                raise BindError(f"no attribute {ref.attribute!r} in {binding}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {ref}")
        return matches[0] if matches else None

    def degree_of(self, ref: DegreeRef) -> float:
        env: Optional[_Env] = self
        while env is not None:
            for binding, _schema, t in env.bindings:
                if ref.relation is None or ref.relation == binding:
                    return t.degree
            env = env.parent
        raise BindError(f"cannot resolve degree reference {ref}")


class NaiveEvaluator:
    """Direct interpretation of Fuzzy SQL under the paper's semantics."""

    def __init__(
        self,
        catalog: Catalog,
        aggregate_policy: DegreePolicy = DegreePolicy.ONE,
        stats: Optional[OperationStats] = None,
        similarity=None,
    ):
        self.catalog = catalog
        self.aggregate_policy = aggregate_policy
        self.stats = stats
        self.similarity = similarity

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def evaluate(self, query: Union[str, SelectQuery]) -> FuzzyRelation:
        """Evaluate SQL text or an AST into a fuzzy relation."""
        if isinstance(query, str):
            query = parse(query)
        return self._eval_block(query, None)

    # ------------------------------------------------------------------
    # Block evaluation
    # ------------------------------------------------------------------
    def _eval_block(self, query: SelectQuery, parent: Optional[_Env]) -> FuzzyRelation:
        from ..sql.binder import expand_select_stars

        query = expand_select_stars(query, self.catalog)
        relations = [
            (t.binding, self.catalog.get(t.name)) for t in query.from_tables
        ]
        auto_degrees = not _uses_explicit_degrees(query)
        rows: List[Tuple[_Env, float]] = []
        spaces = [rel.tuples() for _, rel in relations]
        schemas = [rel.schema for _, rel in relations]
        names = [binding for binding, _ in relations]
        for combo in itertools.product(*spaces):
            env = _Env(list(zip(names, schemas, combo)), parent)
            degree = 1.0
            if auto_degrees:
                for t in combo:
                    degree = min(degree, t.degree)
            for predicate in query.where:
                if degree == 0.0:
                    break
                degree = min(degree, self._predicate_degree(predicate, env))
            rows.append((env, degree))

        has_aggregates = any(isinstance(item, AggregateExpr) for item in query.select)
        if query.group_by or has_aggregates or query.having:
            result = self._grouped_output(query, rows)
        else:
            result = self._plain_output(query, rows)
        threshold = query.with_threshold if query.with_threshold is not None else 0.0
        return result.with_threshold(threshold)

    # ------------------------------------------------------------------
    # Output assembly
    # ------------------------------------------------------------------
    def _plain_output(self, query: SelectQuery, rows) -> FuzzyRelation:
        schema = self._output_schema(query, rows)
        out = FuzzyRelation(schema)
        for env, degree in rows:
            if degree <= 0.0:
                continue
            values = [env.resolve(item)[0] for item in query.select]
            out.add(FuzzyTuple(values, degree))
        return out

    def _grouped_output(self, query: SelectQuery, rows) -> FuzzyRelation:
        groups: Dict[tuple, List[Tuple[_Env, float]]] = {}
        for env, degree in rows:
            key = tuple(env.resolve(col)[0].key() for col in query.group_by)
            groups.setdefault(key, []).append((env, degree))
        if not groups and not query.group_by:
            # An ungrouped aggregate over no rows still yields one group
            # (COUNT of an empty set is 0 with degree 1).
            groups[()] = []

        schema = self._output_schema(query, rows)
        out = FuzzyRelation(schema)
        for members in groups.values():
            t = self._group_tuple(query, members)
            if t is not None:
                out.add(t)
        return out

    def _group_tuple(self, query: SelectQuery, members) -> Optional[FuzzyTuple]:
        values: List[Distribution] = []
        degree_parts: List[float] = []
        has_degree_agg = False
        for item in query.select:
            if not members and not isinstance(item, AggregateExpr):
                return None  # no rows to project plain columns from
            if not members and item.argument.attribute == "D":
                return None  # a degree aggregate needs at least one row
            if isinstance(item, AggregateExpr) and item.argument.attribute == "D":
                # MIN(D)/MAX(D)/AVG(D): aggregates degrees over *all* group
                # rows (zero-degree rows included — the JXT semantics).
                has_degree_agg = True
                degree_parts.append(
                    aggregate_degrees(item.func, [d for _, d in members])
                )
            elif isinstance(item, AggregateExpr):
                result = self._value_aggregate(item, members)
                if result is None:
                    return None  # empty group: no output tuple (NULL)
                value, agg_degree = result
                values.append(value)
                degree_parts.append(agg_degree)
            else:
                env = members[0][0]
                values.append(env.resolve(item)[0])
        if degree_parts:
            degree = min(degree_parts)
        else:
            degree = max(d for _, d in members)
        if not has_degree_agg and not any(
            isinstance(i, AggregateExpr) for i in query.select
        ):
            # Pure GROUPBY projection degenerates to projection + dedup.
            degree = max(d for _, d in members)
        for having in query.having:
            if degree == 0.0:
                break
            having_degree = self._having_degree(having, members)
            if having_degree is None:
                return None  # aggregate over an empty group: no output
            degree = min(degree, having_degree)
        return FuzzyTuple(values, degree) if degree > 0.0 else None

    def _having_degree(self, predicate, members) -> Optional[float]:
        """Satisfaction degree of a HAVING comparison for one group."""
        left = self._having_value(predicate.left, members, other=predicate.right)
        right = self._having_value(predicate.right, members, other=predicate.left)
        if left is None or right is None:
            return None
        if self.stats is not None:
            self.stats.count_fuzzy()
        return possibility(left, predicate.op, right)

    def _having_value(self, term, members, other):
        from ..fuzzy.crisp import CrispNumber

        if isinstance(term, AggregateExpr):
            if term.argument.attribute == "D":
                if not members:
                    return None
                return CrispNumber(
                    aggregate_degrees(term.func, [d for _, d in members])
                )
            result = self._value_aggregate(term, members)
            return None if result is None else result[0]
        if isinstance(term, ColumnRef):
            if not members:
                return None
            return members[0][0].resolve(term)[0]
        assert isinstance(term, Literal)
        domain = None
        if isinstance(other, AggregateExpr) and members and other.argument.attribute != "D":
            env = members[0][0]
            domain = env.resolve(other.argument)[1]
        elif isinstance(other, ColumnRef) and members:
            domain = members[0][0].resolve(other)[1]
        return lift(term.value, self.catalog.vocabulary, domain)

    def _value_aggregate(self, item: AggregateExpr, members):
        """AGG over the group's distinct values with positive degree."""
        collected: Dict = {}
        for env, degree in members:
            if degree <= 0.0:
                continue
            value = env.resolve(item.argument)[0]
            key = value.key()
            if key not in collected or degree > collected[key][1]:
                collected[key] = (value, degree)
        return apply_aggregate(
            item.func, list(collected.values()), self.aggregate_policy
        )

    def _output_schema(self, query: SelectQuery, rows) -> Schema:
        attrs: List[Attribute] = []
        used: Dict[str, int] = {}
        for item in query.select:
            if isinstance(item, AggregateExpr):
                if item.argument.attribute == "D":
                    continue  # defines the degree, not a column
                name = f"{item.func}_{item.argument.attribute}"
                attr = Attribute(name)
            else:
                name = item.attribute
                attr = self._column_attribute(query, item, rows)
            if name in used:
                used[name] += 1
                attr = Attribute(f"{name}_{used[name]}", attr.type, attr.domain)
            else:
                used[name] = 0
            attrs.append(attr)
        return Schema(attrs)

    def _column_attribute(self, query: SelectQuery, ref: ColumnRef, rows) -> Attribute:
        for table in query.from_tables:
            if ref.relation is not None and ref.relation != table.binding:
                continue
            relation = self.catalog.get(table.name)
            if ref.attribute in relation.schema:
                base = relation.schema.attribute(ref.attribute)
                return Attribute(ref.attribute, base.type, base.domain)
        # Correlated projection (rare); fall back to a bare attribute.
        return Attribute(ref.attribute)

    # ------------------------------------------------------------------
    # Predicate degrees
    # ------------------------------------------------------------------
    def _predicate_degree(self, predicate, env: _Env) -> float:
        if isinstance(predicate, Comparison):
            return self._comparison_degree(predicate, env)
        if isinstance(predicate, DegreePredicate):
            return env.degree_of(predicate.degree)
        if isinstance(predicate, IdentityComparison):
            left, _ = env.resolve(predicate.left)
            right, _ = env.resolve(predicate.right)
            if self.stats is not None:
                self.stats.count_crisp()
            return 1.0 if left.key() == right.key() else 0.0
        if isinstance(predicate, NegatedConjunction):
            inner = 1.0
            for p in predicate.predicates:
                inner = min(inner, self._predicate_degree(p, env))
                if inner == 0.0:
                    break
            return 1.0 - inner
        if isinstance(predicate, InPredicate):
            degree = self._membership_degree(predicate.column, Op.EQ, predicate.query, env)
            return 1.0 - degree if predicate.negated else degree
        if isinstance(predicate, QuantifiedComparison):
            return self._quantified_degree(predicate, env)
        if isinstance(predicate, ScalarSubqueryComparison):
            return self._scalar_subquery_degree(predicate, env)
        if isinstance(predicate, ExistsPredicate):
            inner = self._eval_block(predicate.query, env)
            degree = max((t.degree for t in inner), default=0.0)
            return 1.0 - degree if predicate.negated else degree
        raise BindError(f"unsupported predicate {predicate!r}")

    def _comparison_degree(self, predicate: Comparison, env: _Env) -> float:
        left, left_domain = self._term_value(predicate.left, env, None)
        right, _ = self._term_value(predicate.right, env, left_domain)
        if left is None:
            # The left side was a literal needing the right side's domain.
            right, right_domain = self._term_value(predicate.right, env, None)
            left, _ = self._term_value(predicate.left, env, right_domain)
        if self.stats is not None:
            self.stats.count_fuzzy()
        if predicate.op is Op.SIMILAR:
            if self.similarity is None:
                raise BindError("~= used without a configured similarity relation")
            return self.similarity.degree(left, right)
        return possibility(left, predicate.op, right)

    def _term_value(self, term, env: _Env, domain_hint: Optional[str]):
        if isinstance(term, ColumnRef):
            return env.resolve(term)
        if isinstance(term, DegreeRef):
            raise BindError("a degree reference cannot be compared as a value")
        assert isinstance(term, Literal)
        if isinstance(term.value, str) and domain_hint is None:
            # Defer literal resolution until the other side fixes the domain.
            return None, None
        return lift(term.value, self.catalog.vocabulary, domain_hint), domain_hint

    def _membership_degree(
        self, column: ColumnRef, op: Op, subquery: SelectQuery, env: _Env
    ) -> float:
        """``d(v in T)`` / the SOME quantifier: max_z min(mu_T(z), d(v op z))."""
        value, _ = env.resolve(column)
        inner = self._eval_block(subquery, env)
        best = 0.0
        for t in inner:
            if self.stats is not None:
                self.stats.count_fuzzy()
            best = max(best, min(t.degree, possibility(value, op, t[0])))
        return best

    def _quantified_degree(self, predicate: QuantifiedComparison, env: _Env) -> float:
        if predicate.quantifier in ("SOME", "ANY"):
            return self._membership_degree(
                predicate.column, predicate.op, predicate.query, env
            )
        # ALL: d(v op ALL T) = 1 - max_z min(mu_T(z), 1 - d(v op z)); 1 on empty.
        value, _ = env.resolve(predicate.column)
        inner = self._eval_block(predicate.query, env)
        worst = 0.0
        for t in inner:
            if self.stats is not None:
                self.stats.count_fuzzy()
            worst = max(worst, min(t.degree, 1.0 - possibility(value, predicate.op, t[0])))
        return 1.0 - worst

    def _scalar_subquery_degree(
        self, predicate: ScalarSubqueryComparison, env: _Env
    ) -> float:
        value, _ = env.resolve(predicate.column)
        inner = self._eval_block(predicate.query, env)
        tuples = inner.tuples()
        if not tuples:
            return 0.0  # NULL comparison fails (non-COUNT empty group)
        if len(tuples) > 1:
            raise BindError("scalar subquery returned more than one tuple")
        result = tuples[0]
        if self.stats is not None:
            self.stats.count_fuzzy()
        return min(result.degree, possibility(value, predicate.op, result[0]))


def _uses_explicit_degrees(query: SelectQuery) -> bool:
    """True when the WHERE clause references membership degrees itself."""

    def predicate_uses(p) -> bool:
        if isinstance(p, DegreePredicate):
            return True
        if isinstance(p, NegatedConjunction):
            return any(predicate_uses(q) for q in p.predicates)
        return False

    return any(predicate_uses(p) for p in query.where)
