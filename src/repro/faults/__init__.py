"""Deterministic fault injection for chaos-testing the engine.

The package pairs a seeded :class:`FaultPlan` (which storage accesses
fail, and how) with a :class:`FaultyDisk` (a drop-in
:class:`~repro.storage.disk.SimulatedDisk` that executes the plan), so
the differential test sweep can be re-run under reproducible fault
schedules: same seed, same faults, same outcome.
"""

from .injector import CrashPointError, FaultyDisk
from .plan import FaultCounters, FaultPlan

__all__ = ["CrashPointError", "FaultPlan", "FaultCounters", "FaultyDisk"]
