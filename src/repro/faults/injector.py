"""A fault-injecting drop-in replacement for :class:`SimulatedDisk`.

:class:`FaultyDisk` overrides the raw transfer hooks (``_fetch`` /
``_store``) underneath the accounting, retry and guard machinery of
:class:`~repro.storage.disk.SimulatedDisk`, so injected faults exercise
exactly the code paths a real device error would:

* transient read faults surface *below* the retry loop — short bursts
  are absorbed and counted as ``io_retries``, long ones escape typed;
* torn writes persist a corrupted page image whose checksum mismatch is
  caught by :meth:`Page.from_bytes` on the next read;
* latency spikes sleep inside the transfer (capped to the active query
  guard's remaining deadline, so a spiked read never oversleeps a
  ``timeout_ms`` by more than scheduling noise);
* a capacity limit makes appends raise
  :class:`~repro.errors.DiskFullError` once the disk holds its budget.

Set :attr:`armed` to ``False`` while loading base tables so only query
execution sees faults, then arm the disk for the chaos run.
"""

from __future__ import annotations

import time

from ..errors import DiskFullError, TransientIOError
from ..storage.disk import SimulatedDisk
from ..storage.page import DEFAULT_PAGE_SIZE
from .plan import FaultPlan


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` whose transfers fail on a seeded schedule."""

    def __init__(self, plan: FaultPlan, page_size: int = DEFAULT_PAGE_SIZE, armed: bool = True):
        super().__init__(page_size=page_size)
        self.plan = plan
        #: When ``False`` the disk behaves exactly like its parent; flip
        #: to ``True`` after loading fixtures to start injecting faults.
        self.armed = armed
        self._read_ordinal = 0
        self._write_ordinal = 0
        # Burst state of the read currently being retried: the page key it
        # belongs to and how many more attempts must still fail.
        self._retry_key = None
        self._retry_pending = 0

    # ------------------------------------------------------------------
    # Fault-injecting transfer hooks
    # ------------------------------------------------------------------
    def _fetch(self, name: str, index: int) -> bytes:
        if not self.armed:
            return super()._fetch(name, index)
        key = (name, index)
        if self._retry_key == key:
            if self._retry_pending > 0:
                # A retry of a read whose fault burst is still draining.
                self._retry_pending -= 1
                self.plan.injected.transient_reads += 1
                raise TransientIOError(
                    f"injected transient fault reading {name!r} page {index}"
                )
            # The burst drained: this retry succeeds, and it is the *same*
            # logical read — it must not consume a new schedule ordinal,
            # or retries would shift (and re-roll) the fault schedule.
            self._retry_key = None
            return super()._fetch(name, index)
        # A different page while burst state lingers means the faulted
        # read was abandoned (its error escaped the retry budget).
        self._retry_key, self._retry_pending = None, 0
        ordinal = self._read_ordinal
        self._read_ordinal += 1
        spike = self.plan.read_spike_seconds(ordinal)
        if spike > 0.0:
            self.plan.injected.latency_spikes += 1
            self._sleep_spike(spike)
        attempts = self.plan.read_fault_attempts(ordinal)
        if attempts > 0:
            self._retry_key, self._retry_pending = key, attempts - 1
            self.plan.injected.transient_reads += 1
            raise TransientIOError(
                f"injected transient fault reading {name!r} page {index}"
            )
        return super()._fetch(name, index)

    def _store(self, name: str, index: int, data: bytes) -> None:
        if not self.armed:
            return super()._store(name, index, data)
        ordinal = self._write_ordinal
        self._write_ordinal += 1
        appending = index >= len(self._files.get(name, ()))
        capacity = self.plan.disk_capacity_pages
        if appending and capacity is not None and self.total_pages() >= capacity:
            self.plan.injected.disk_full += 1
            raise DiskFullError(
                f"disk full: {self.total_pages()} pages stored, capacity {capacity}"
            )
        if self.plan.write_torn(ordinal):
            self.plan.injected.torn_writes += 1
            data = self.plan.corrupt(data)
        super()._store(name, index, data)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _sleep_spike(self, seconds: float) -> None:
        """Sleep out a latency spike, but never past the guard's deadline.

        The post-transfer guard check in ``read_page`` then raises the
        typed :class:`~repro.errors.QueryTimeoutError` promptly.
        """
        guard = self.guard
        if guard is not None and guard.deadline is not None:
            seconds = min(seconds, guard.deadline.remaining() + 0.001)
        if seconds > 0:
            time.sleep(seconds)


__all__ = ["FaultyDisk"]
