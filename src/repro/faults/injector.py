"""A fault-injecting drop-in replacement for :class:`SimulatedDisk`.

:class:`FaultyDisk` overrides the raw transfer hooks (``_fetch`` /
``_store``) underneath the accounting, retry and guard machinery of
:class:`~repro.storage.disk.SimulatedDisk`, so injected faults exercise
exactly the code paths a real device error would:

* transient read faults surface *below* the retry loop — short bursts
  are absorbed and counted as ``io_retries``, long ones escape typed;
* torn writes persist a corrupted page image whose checksum mismatch is
  caught by :meth:`Page.from_bytes` on the next read;
* latency spikes sleep inside the transfer (capped to the active query
  guard's remaining deadline, so a spiked read never oversleeps a
  ``timeout_ms`` by more than scheduling noise);
* a capacity limit makes appends raise
  :class:`~repro.errors.DiskFullError` once the disk holds its budget;
* scripted crash points abort a ``_store`` mid-transfer (persisting only
  a byte prefix) with :class:`CrashPointError`, and the ``_sync`` hook
  tracks per-file durable images — :meth:`FaultyDisk.crash` then reverts
  the disk to what an honest fsync actually made durable, dropping
  unsynced tails and files exactly as a power loss would.

Set :attr:`armed` to ``False`` while loading base tables so only query
execution sees faults, then arm the disk for the chaos run (arming
snapshots the current files as the durable baseline).
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..errors import DiskFullError, StorageFaultError, TransientIOError
from ..storage.disk import SimulatedDisk
from ..storage.page import DEFAULT_PAGE_SIZE
from .plan import FaultPlan


class CrashPointError(StorageFaultError):
    """The process "died" at a scripted crash point mid-write.

    Raised by :meth:`FaultyDisk._store` when the plan scripted a crash at
    that write ordinal; the session that sees it is considered dead, and
    the test follows up with :meth:`FaultyDisk.crash` plus a fresh
    session running recovery.
    """


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` whose transfers fail on a seeded schedule."""

    def __init__(self, plan: FaultPlan, page_size: int = DEFAULT_PAGE_SIZE, armed: bool = True):
        super().__init__(page_size=page_size)
        self.plan = plan
        #: Per-file images as of the last honest fsync (or of arm time);
        #: :meth:`crash` restores exactly these.
        self._durable: Dict[str, List[bytes]] = {}
        self._armed = False
        #: When ``False`` the disk behaves exactly like its parent; flip
        #: to ``True`` after loading fixtures to start injecting faults.
        self.armed = armed
        self._read_ordinal = 0
        self._write_ordinal = 0
        self._sync_ordinal = 0
        # Burst state of the read currently being retried: the page key it
        # belongs to and how many more attempts must still fail.
        self._retry_key = None
        self._retry_pending = 0

    @property
    def armed(self) -> bool:
        """Whether the fault schedule is live."""
        return self._armed

    @armed.setter
    def armed(self, value: bool) -> None:
        """Arm or disarm; arming snapshots all files as durably written."""
        value = bool(value)
        if value and not self._armed:
            self._durable = {name: list(pages) for name, pages in self._files.items()}
        self._armed = value

    # ------------------------------------------------------------------
    # Fault-injecting transfer hooks
    # ------------------------------------------------------------------
    def _fetch(self, name: str, index: int) -> bytes:
        if not self.armed:
            return super()._fetch(name, index)
        key = (name, index)
        if self._retry_key == key:
            if self._retry_pending > 0:
                # A retry of a read whose fault burst is still draining.
                self._retry_pending -= 1
                self.plan.injected.transient_reads += 1
                raise TransientIOError(
                    f"injected transient fault reading {name!r} page {index}"
                )
            # The burst drained: this retry succeeds, and it is the *same*
            # logical read — it must not consume a new schedule ordinal,
            # or retries would shift (and re-roll) the fault schedule.
            self._retry_key = None
            return super()._fetch(name, index)
        # A different page while burst state lingers means the faulted
        # read was abandoned (its error escaped the retry budget).
        self._retry_key, self._retry_pending = None, 0
        ordinal = self._read_ordinal
        self._read_ordinal += 1
        spike = self.plan.read_spike_seconds(ordinal)
        if spike > 0.0:
            self.plan.injected.latency_spikes += 1
            self._sleep_spike(spike)
        attempts = self.plan.read_fault_attempts(ordinal)
        if attempts > 0:
            self._retry_key, self._retry_pending = key, attempts - 1
            self.plan.injected.transient_reads += 1
            raise TransientIOError(
                f"injected transient fault reading {name!r} page {index}"
            )
        return super()._fetch(name, index)

    def _store(self, name: str, index: int, data: bytes) -> None:
        if not self.armed:
            return super()._store(name, index, data)
        ordinal = self._write_ordinal
        self._write_ordinal += 1
        appending = index >= len(self._files.get(name, ()))
        capacity = self.plan.disk_capacity_pages
        if appending and capacity is not None and self.total_pages() >= capacity:
            self.plan.injected.disk_full += 1
            raise DiskFullError(
                f"disk full: {self.total_pages()} pages stored, capacity {capacity}"
            )
        keep = self.plan.write_crash(ordinal)
        if keep is not None:
            self.plan.injected.crash_points += 1
            if keep > 0 and appending:
                super()._store(name, index, data[:keep])
            elif keep > 0:
                old = self._files[name][index]
                super()._store(name, index, data[:keep] + old[keep:])
            raise CrashPointError(
                f"scripted crash writing {name!r} entry {index} "
                f"({keep} of {len(data)} bytes persisted)"
            )
        if self.plan.write_torn(ordinal):
            self.plan.injected.torn_writes += 1
            data = self.plan.corrupt(data)
        super()._store(name, index, data)

    def _sync(self, name: str) -> None:
        if not self.armed:
            return super()._sync(name)
        ordinal = self._sync_ordinal
        self._sync_ordinal += 1
        if self.plan.sync_lost(ordinal):
            # The fsync lies: the caller sees success, but the durable
            # image is not advanced — a later crash() drops the tail.
            self.plan.injected.lost_syncs += 1
            return
        self._durable[name] = list(self._files.get(name, ()))

    # ------------------------------------------------------------------
    # Crash simulation
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate power loss: revert every file to its durable image.

        Files created after arming that were never honestly fsynced
        vanish; synced files revert to the bytes their last honest
        :meth:`_sync` captured.  The disk stays usable afterwards (a new
        session attaches to it and runs recovery), with the fault
        schedule left armed and its ordinals advancing where they were.
        """
        self._files = {name: list(pages) for name, pages in self._durable.items()}
        self._retry_key, self._retry_pending = None, 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _sleep_spike(self, seconds: float) -> None:
        """Sleep out a latency spike, but never past the guard's deadline.

        The post-transfer guard check in ``read_page`` then raises the
        typed :class:`~repro.errors.QueryTimeoutError` promptly.
        """
        guard = self.guard
        if guard is not None and guard.deadline is not None:
            seconds = min(seconds, guard.deadline.remaining() + 0.001)
        if seconds > 0:
            time.sleep(seconds)


__all__ = ["CrashPointError", "FaultyDisk"]
