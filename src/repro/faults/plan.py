"""Deterministic, seeded fault schedules for the simulated disk.

A :class:`FaultPlan` decides — purely from its seed and its per-access
ordinals — which page transfers fail and how.  Two runs with the same
plan parameters fault the exact same logical accesses, which is what lets
the chaos suite assert bit-identical results between a faulted run whose
faults were absorbed and a fault-free run.

Rate-based faults draw from a private ``random.Random(seed)``; scripted
faults pin an exact read/write ordinal (0-based, counted per disk) so a
test can say "the 7th page read fails twice" or "the 3rd write is torn".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class FaultCounters:
    """How many faults of each kind a plan has actually injected."""

    transient_reads: int = 0
    torn_writes: int = 0
    disk_full: int = 0
    latency_spikes: int = 0
    lost_syncs: int = 0
    crash_points: int = 0

    def total(self) -> int:
        """All injected faults, every kind."""
        return (
            self.transient_reads
            + self.torn_writes
            + self.disk_full
            + self.latency_spikes
            + self.lost_syncs
            + self.crash_points
        )


@dataclass
class FaultPlan:
    """A seeded schedule of storage faults.

    Rate parameters are probabilities per logical page access; scripted
    schedules (:meth:`fail_read`, :meth:`tear_write`, :meth:`spike_read`)
    target exact ordinals.  ``transient_burst`` is the number of
    *consecutive* failed attempts a faulted read produces: a burst
    strictly below the disk retry budget is absorbed invisibly (apart
    from the ``io_retries`` counter), a burst at or above it escapes as a
    typed :class:`~repro.errors.TransientIOError`.
    """

    seed: int = 0
    transient_read_rate: float = 0.0
    transient_burst: int = 1
    torn_write_rate: float = 0.0
    latency_spike_rate: float = 0.0
    latency_spike_seconds: float = 0.0
    #: Probability that an fsync silently fails to make bytes durable
    #: (the write *appears* to succeed; a later crash loses the tail).
    sync_loss_rate: float = 0.0
    #: Hard page budget for the whole disk; appends beyond it raise
    #: :class:`~repro.errors.DiskFullError` (``None`` = unbounded).
    disk_capacity_pages: Optional[int] = None

    injected: FaultCounters = field(default_factory=FaultCounters)
    _rng: random.Random = field(init=False, repr=False)
    _scripted_read_faults: Dict[int, int] = field(default_factory=dict, init=False, repr=False)
    _scripted_spikes: Dict[int, float] = field(default_factory=dict, init=False, repr=False)
    _scripted_torn: Set[int] = field(default_factory=set, init=False, repr=False)
    _scripted_sync_losses: Set[int] = field(default_factory=set, init=False, repr=False)
    _scripted_crashes: Dict[int, int] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.transient_burst < 1:
            raise ValueError("transient_burst must be at least 1")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------
    # Scripting exact fault sites
    # ------------------------------------------------------------------
    def fail_read(self, ordinal: int, times: int = 1) -> "FaultPlan":
        """Make logical read number ``ordinal`` fail ``times`` attempts."""
        self._scripted_read_faults[ordinal] = times
        return self

    def spike_read(self, ordinal: int, seconds: float) -> "FaultPlan":
        """Delay logical read number ``ordinal`` by ``seconds``."""
        self._scripted_spikes[ordinal] = seconds
        return self

    def tear_write(self, ordinal: int) -> "FaultPlan":
        """Corrupt the page image of logical write number ``ordinal``."""
        self._scripted_torn.add(ordinal)
        return self

    def lose_sync(self, ordinal: int) -> "FaultPlan":
        """Make fsync number ``ordinal`` silently fail to reach the platter.

        The caller sees success; a subsequent :meth:`FaultyDisk.crash`
        reverts the file to its state at the last *honest* sync, dropping
        the unsynced tail deterministically.
        """
        self._scripted_sync_losses.add(ordinal)
        return self

    def crash_write(self, ordinal: int, keep_bytes: int = 0) -> "FaultPlan":
        """Crash the process at logical write number ``ordinal``.

        Exactly ``keep_bytes`` bytes of that write's payload reach the
        store before :class:`~repro.faults.CrashPointError` aborts the
        transfer — the scripted analogue of losing power mid-``write()``.
        Sweeping ``keep_bytes`` over every offset of a WAL append is how
        the chaos suite proves recovery at every byte boundary.
        """
        if keep_bytes < 0:
            raise ValueError("keep_bytes must be non-negative")
        self._scripted_crashes[ordinal] = keep_bytes
        return self

    # ------------------------------------------------------------------
    # Decisions (called by FaultyDisk, once per logical access)
    # ------------------------------------------------------------------
    def read_fault_attempts(self, ordinal: int) -> int:
        """How many consecutive attempts of this read should fail (0 = none)."""
        scripted = self._scripted_read_faults.get(ordinal)
        if scripted is not None:
            return scripted
        if self.transient_read_rate > 0.0 and self._rng.random() < self.transient_read_rate:
            return self.transient_burst
        return 0

    def read_spike_seconds(self, ordinal: int) -> float:
        """Latency-spike duration for this read (0.0 = no spike)."""
        scripted = self._scripted_spikes.get(ordinal)
        if scripted is not None:
            return scripted
        if self.latency_spike_rate > 0.0 and self._rng.random() < self.latency_spike_rate:
            return self.latency_spike_seconds
        return 0.0

    def write_torn(self, ordinal: int) -> bool:
        """Whether this write should persist a corrupted page image."""
        if ordinal in self._scripted_torn:
            return True
        return self.torn_write_rate > 0.0 and self._rng.random() < self.torn_write_rate

    def write_crash(self, ordinal: int) -> Optional[int]:
        """Bytes to keep before crashing this write (``None`` = no crash)."""
        return self._scripted_crashes.get(ordinal)

    def sync_lost(self, ordinal: int) -> bool:
        """Whether fsync number ``ordinal`` silently loses its bytes."""
        if ordinal in self._scripted_sync_losses:
            return True
        return self.sync_loss_rate > 0.0 and self._rng.random() < self.sync_loss_rate

    def corrupt(self, data: bytes) -> bytes:
        """A deterministically damaged copy of ``data`` (one byte flipped).

        The flip lands past the 6-byte page header so the stored checksum
        stays intact and the mismatch is caught at read time — the
        signature of a torn write rather than a garbage page.
        """
        if len(data) <= 6:
            return bytes(len(data))
        pos = 6 + self._rng.randrange(len(data) - 6)
        return data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1:]


__all__ = ["FaultPlan", "FaultCounters"]
