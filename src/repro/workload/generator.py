"""Synthetic workloads for the Section 9 experiments.

"Tuples of the relations are randomly generated and a tuple of one relation
joins, on the average, C tuples of the other relation.  [...] both the
intervals associated with the join attribute values and the average numbers
of joining tuples are kept small" — data may be imprecise but not vague.

We realize the controlled fan-out by drawing join values around
``n / C`` well-separated *anchor* points: tuples sharing an anchor join
(their supports overlap), tuples of different anchors never do, so each
R-tuple joins ``n_S / n_anchors = C`` S-tuples on average.  A configurable
fraction of values is fuzzy (narrow trapezoids around the anchor); the rest
are crisp.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..data.schema import Attribute, Schema
from ..data.tuples import FuzzyTuple
from ..fuzzy.crisp import CrispNumber
from ..fuzzy.trapezoid import TrapezoidalNumber
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats

#: Join-attribute schema used by all experiments: a tuple id plus the
#: (possibly fuzzy) join attribute X.
JOIN_SCHEMA = Schema([Attribute("ID", domain="ID"), Attribute("X", domain="X")])

#: Distance between anchors; supports never span more than half of this,
#: so only same-anchor tuples can join.
ANCHOR_SPACING = 100.0


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic relation pair.

    ``n_outer``/``n_inner`` — tuple counts; ``join_fanout`` — the paper's C;
    ``tuple_size`` — fixed record width in bytes (the paper's 128..2048);
    ``fuzzy_fraction`` — share of fuzzy (vs crisp) join values;
    ``max_width`` — half-width bound of the fuzzy supports (small = the
    paper's "imprecise but not very vague" regime).
    """

    n_outer: int
    n_inner: int
    join_fanout: int = 7
    tuple_size: int = 128
    fuzzy_fraction: float = 0.5
    max_width: float = 4.0
    seed: int = 1995

    @property
    def n_anchors(self) -> int:
        """Number of distinct join-anchor values implied by the fan-out."""
        return max(1, self.n_inner // max(1, self.join_fanout))


def _join_value(rng: random.Random, anchor_index: int, spec: WorkloadSpec):
    """A crisp or narrow-trapezoid value around the anchor's center.

    Crisp values sit exactly on the center; fuzzy values jitter by at most
    1.0 but keep supports of at least 2.0, so every same-anchor pair
    overlaps (joins with positive degree) and no cross-anchor pair does —
    the construction that pins the average fan-out to C.
    """
    center = anchor_index * ANCHOR_SPACING
    if rng.random() >= spec.fuzzy_fraction:
        return CrispNumber(center)
    point = center + rng.uniform(-1.0, 1.0)
    support = rng.uniform(2.0, max(2.5, spec.max_width))
    core = rng.uniform(0.0, support / 2.0)
    return TrapezoidalNumber(point - support, point - core, point + core, point + support)


def generate_tuples(spec: WorkloadSpec, n: int, rng: random.Random, id_base: int) -> List[FuzzyTuple]:
    """``n`` tuples with anchored join values and degrees in (0.5, 1]."""
    out: List[FuzzyTuple] = []
    for i in range(n):
        anchor = rng.randrange(spec.n_anchors)
        value = _join_value(rng, anchor, spec)
        degree = rng.uniform(0.5, 1.0)
        out.append(FuzzyTuple([CrispNumber(id_base + i), value], degree))
    return out


@dataclass
class JoinWorkload:
    """A materialized R/S pair on a simulated disk."""

    spec: WorkloadSpec
    disk: SimulatedDisk
    outer: HeapFile
    inner: HeapFile


def build_workload(
    spec: WorkloadSpec,
    page_size: int = 8 * 1024,
    disk: Optional[SimulatedDisk] = None,
) -> JoinWorkload:
    """Generate and materialize a workload (loading I/O is not charged)."""
    rng = random.Random(spec.seed)
    if disk is None:
        disk = SimulatedDisk(page_size=page_size)
    scratch = OperationStats()  # swallow the load-time I/O
    with disk.use_stats(scratch):
        outer = HeapFile("R", JOIN_SCHEMA, disk, fixed_tuple_size=spec.tuple_size)
        outer.load(generate_tuples(spec, spec.n_outer, rng, id_base=0))
        inner = HeapFile("S", JOIN_SCHEMA, disk, fixed_tuple_size=spec.tuple_size)
        inner.load(generate_tuples(spec, spec.n_inner, rng, id_base=1_000_000))
    return JoinWorkload(spec=spec, disk=disk, outer=outer, inner=inner)
