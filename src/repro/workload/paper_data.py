"""The paper's worked dating-service database (Example 4.1 / Fig. 2).

Relations ``F`` (female clients) and ``M`` (male clients), with the
vocabulary of :func:`repro.fuzzy.linguistic.paper_vocabulary`.  Used by
the quickstart example and by the tests that reproduce Example 4.1's
temporary relation T and answer relation.
"""

from __future__ import annotations

from ..data.catalog import Catalog
from ..data.relation import FuzzyRelation
from ..data.schema import Attribute, Schema
from ..data.types import AttributeType
from ..fuzzy.linguistic import paper_vocabulary

CLIENT_SCHEMA = Schema(
    [
        Attribute("ID", AttributeType.NUMERIC, domain="ID"),
        Attribute("NAME", AttributeType.LABEL, domain="NAME"),
        Attribute("AGE", AttributeType.NUMERIC, domain="AGE"),
        Attribute("INCOME", AttributeType.NUMERIC, domain="INCOME"),
    ]
)

F_ROWS = [
    (101, "Ann", "about 35", "about 60k", 1.0),
    (102, "Ann", "medium young", "medium high", 1.0),
    (103, "Betty", "middle age", "high", 1.0),
    (104, "Cathy", "about 50", "low", 1.0),
]

M_ROWS = [
    (201, "Allen", 24, "about 25k", 1.0),
    (202, "Allen", "about 50", "about 40k", 1.0),
    (203, "Bill", "middle age", "high", 1.0),
    (204, "Carl", "about 29", "medium low", 1.0),
]


def dating_catalog() -> Catalog:
    """A catalog holding the paper's F and M relations and vocabulary."""
    vocabulary = paper_vocabulary()
    catalog = Catalog(vocabulary)
    catalog.register(
        "F", FuzzyRelation.from_rows(CLIENT_SCHEMA, F_ROWS, vocabulary)
    )
    catalog.register(
        "M", FuzzyRelation.from_rows(CLIENT_SCHEMA, M_ROWS, vocabulary)
    )
    return catalog


#: Query 2 of the paper (type N): medium-young females with a middle-aged
#: male's income.
QUERY_2 = """
SELECT F.NAME
FROM F
WHERE F.AGE = 'medium young' AND F.INCOME IN
    (SELECT M.INCOME
     FROM M
     WHERE M.AGE = 'middle age')
"""

#: Query 3 of the paper: the unnested (flat) form of Query 2.
QUERY_3 = """
SELECT F.NAME
FROM F, M
WHERE F.AGE = 'medium young' AND
      M.AGE = 'middle age' AND
      F.INCOME = M.INCOME
"""

#: Query 1 of the paper (flat): same-aged pairs with a well-paid male.
QUERY_1 = """
SELECT F.NAME, M.NAME
FROM F, M
WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'
"""
