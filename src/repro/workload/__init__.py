"""Workloads: synthetic experiment data and the paper's worked examples."""

from .generator import JOIN_SCHEMA, JoinWorkload, WorkloadSpec, build_workload, generate_tuples
from .paper_data import CLIENT_SCHEMA, QUERY_1, QUERY_2, QUERY_3, dating_catalog

__all__ = [
    "WorkloadSpec",
    "JoinWorkload",
    "build_workload",
    "generate_tuples",
    "JOIN_SCHEMA",
    "dating_catalog",
    "CLIENT_SCHEMA",
    "QUERY_1",
    "QUERY_2",
    "QUERY_3",
]
