"""A line-oriented shell over :class:`~repro.session.StorageSession`.

Plain lines are Fuzzy SQL and execute through the session (so they hit
the plan cache, the registry, and the query log exactly like library
callers); lines starting with a backslash are meta-commands in the
``psql`` tradition:

========== ===========================================================
Command    Effect
========== ===========================================================
``\\log``     the query-log workload report (strategy rollup, failure
              outcomes, slowest statements)
``\\metrics`` the metrics registry in Prometheus text exposition
              (optional name-prefix filter: ``\\metrics fuzzysql_shard``)
``\\top``     per-fingerprint top-K from the flight recorder (count,
              modelled cost, page I/O, p50/p95 latency)
``\\health``  the health report: threshold rules over workload rates
``\\events``  the flight recorder's last N events as JSONL
``\\stats``   per-table attribute histograms with live drift distances
              and the fingerprints plan-cache entries validate against
``\\explain`` EXPLAIN for the rest of the line (no execution); when the
              statement has a plan-cache entry, also the statistics
              tokens (version, layout, histogram fingerprint) the
              cached plan was costed against
``\\analyze`` EXPLAIN ANALYZE for the rest of the line (executes)
``\\trace``   span tree of the rest of the line (executes)
``\\timeout`` set/clear the per-query deadline in ms (no argument
              clears it)
``\\shards``  set/clear the per-query shard budget (no argument
              clears it back to the session default)
``\\wal``     write-ahead-log status: durable bytes, commits, group
              commits, index maintenance, per-table epochs, snapshots
``\\help``    list the meta-commands
========== ===========================================================

SQL lines beginning with CREATE / INSERT / UPDATE / DELETE / DEFINE /
DROP route through :meth:`~repro.session.StorageSession.execute` — DML
is WAL-logged, group-committed, and crash-recoverable; the shell prints
the status line of each statement.

The shell owns a :class:`~repro.observe.registry.MetricsRegistry`, a
:class:`~repro.observe.querylog.QueryLog`, and a
:class:`~repro.observe.recorder.FlightRecorder` (attaching them to the
session unless it already has its own), so failure outcomes — timeouts,
cancellations, degraded fallbacks, retry counts — surface directly in
``\\log``, ``\\metrics``, ``\\top``, ``\\health``, and ``\\events``.
:meth:`FuzzyShell.execute` returns the rendered output instead of
printing, which keeps the shell fully scriptable and testable;
:meth:`FuzzyShell.run` is the interactive loop.
"""

from __future__ import annotations

import sys
from typing import Iterable, Optional

from .errors import FuzzyQueryError
from .observe.querylog import QueryLog
from .observe.recorder import FlightRecorder
from .observe.registry import MetricsRegistry
from .session import StorageSession

#: One help line per meta-command, rendered by ``\help``.
HELP = """\
\\log        query log report: strategies, outcomes, slowest statements
\\metrics P  metrics registry (Prometheus text; optional name prefix P)
\\top K      top K statements by fingerprint (default 5)
\\health     health report: ok/warn/critical over workload rates
\\events N   last N flight-recorder events as JSONL (default 10)
\\stats      per-table histograms, drift distances, and fingerprints
\\explain Q  strategy and plan of query Q, without executing it (plus
            the cached plan's statistics tokens when one exists)
\\analyze Q  EXPLAIN ANALYZE of query Q (executes it)
\\trace Q    span tree of query Q (executes it)
\\timeout N  set the per-query deadline to N ms (\\timeout alone clears it)
\\shards N   set the shard budget for queries (\\shards alone clears it)
\\wal        write-ahead-log status: durable bytes, epochs, snapshots
\\help       this list
anything else runs as Fuzzy SQL (DML is WAL-logged and recoverable)"""

#: First keywords that route a SQL line through ``session.execute()``.
DML_KEYWORDS = {"CREATE", "INSERT", "UPDATE", "DELETE", "DEFINE", "DROP"}


class FuzzyShell:
    """Dispatch SQL lines and backslash meta-commands against one session."""

    def __init__(self, session: StorageSession):
        self.session = session
        if session.registry is None:
            session.registry = MetricsRegistry()
        if session.query_log is None:
            session.query_log = QueryLog()
        if session.recorder is None:
            session.recorder = FlightRecorder()
        #: Deadline applied to every SQL line, in milliseconds (``None``
        #: = unbounded); set interactively with ``\timeout``.
        self.timeout_ms: Optional[float] = None
        #: Shard budget applied to every SQL line (``None`` = the
        #: session's own default); set interactively with ``\shards``.
        self.shards: Optional[int] = None

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def execute(self, line: str) -> str:
        """Run one input line — meta-command or SQL — and return its output.

        Typed query failures (timeouts, storage faults, …) are rendered
        as ``error: …`` lines rather than raised: a shell must survive a
        failing statement, and the failure is already recorded in the
        query log and registry for ``\\log`` / ``\\metrics`` to show.
        """
        line = line.strip()
        if not line:
            return ""
        if line.startswith("\\"):
            return self._meta(line)
        return self._sql(line)

    def _meta(self, line: str) -> str:
        command, _, argument = line.partition(" ")
        argument = argument.strip()
        if command == "\\log":
            return self.session.query_log.summarize()
        if command == "\\metrics":
            return self.session.registry.render_prometheus(
                name_prefix=argument or None
            )
        if command == "\\top":
            k = int(argument) if argument else 5
            return self.session.recorder.render_top(k)
        if command == "\\health":
            return self.session.health().render()
        if command == "\\events":
            n = int(argument) if argument else 10
            return self.session.recorder.to_jsonl(last=n)
        if command == "\\stats":
            return self.session.histograms.render()
        if command == "\\explain":
            return self._explain(argument)
        if command == "\\analyze":
            return self.session.explain_analyze(argument, shards=self.shards)
        if command == "\\trace":
            return self.session.trace(argument).render_tree()
        if command == "\\timeout":
            if not argument:
                self.timeout_ms = None
                return "timeout cleared"
            self.timeout_ms = float(argument)
            return f"timeout set to {self.timeout_ms:.0f} ms"
        if command == "\\shards":
            if not argument:
                self.shards = None
                return "shard budget cleared (session default)"
            self.shards = max(1, int(argument))
            return f"shard budget set to {self.shards}"
        if command == "\\wal":
            return self.session.wal_status()
        if command == "\\help":
            return HELP
        return f"unknown command {command} (try \\help)"

    def _explain(self, sql: str) -> str:
        """EXPLAIN plus, for cached statements, the plan's token snapshot.

        The token lines show what the *cached* plan was costed against —
        reading them next to ``\\stats`` (the live fingerprints) makes a
        pending drift invalidation visible before the next lookup
        performs it.  :meth:`~repro.service.plancache.PlanCache.peek`
        leaves the cache's counters and LRU order untouched.
        """
        rendered = self.session.explain(sql)
        cache = self.session.plan_cache
        if cache is None:
            return rendered
        from .service.plancache import normalize_sql

        entry = cache.peek(normalize_sql(sql))
        if entry is None:
            return rendered
        lines = [rendered, "cached plan tokens:"]
        for name in sorted(entry.tokens):
            version, layout, fingerprint = entry.tokens[name]
            lines.append(
                f"  {name}: stats_version={version} layout_token={layout} "
                f"histogram_fingerprint=0x{fingerprint:08x}"
            )
        return "\n".join(lines)

    def _sql(self, sql: str) -> str:
        first = sql.split(None, 1)[0].upper() if sql.split() else ""
        if first in DML_KEYWORDS:
            try:
                return str(self.session.execute(sql))
            except (FuzzyQueryError, ValueError) as exc:
                return f"error: {type(exc).__name__}: {exc}"
        try:
            result = self.session.query(
                sql, timeout_ms=self.timeout_ms, shards=self.shards
            )
        except FuzzyQueryError as exc:
            return f"error: {type(exc).__name__}: {exc}"
        lines = [
            "(" + ", ".join(str(v) for v in t.values) + f")  D={t.degree:g}"
            for t in result
        ]
        lines.append(f"({len(result)} tuples)")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Interactive loop
    # ------------------------------------------------------------------
    def run(self, lines: Optional[Iterable[str]] = None, out=None) -> None:
        """Feed ``lines`` (default: stdin) through :meth:`execute`.

        Stops on end of input or a ``\\quit`` line.  Output goes to
        ``out`` (default: stdout).
        """
        out = out if out is not None else sys.stdout
        source = lines if lines is not None else sys.stdin
        for line in source:
            if line.strip() == "\\quit":
                break
            rendered = self.execute(line)
            if rendered:
                print(rendered, file=out)


__all__ = ["DML_KEYWORDS", "FuzzyShell", "HELP"]
