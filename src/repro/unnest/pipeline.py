"""Unnested query plans: temp-relation steps plus a final flat query.

The paper's rewrites produce either a single flat query (types N and J) or
a short pipeline: one or two temporary relations built by flat queries,
then a trivial final projection (types JX, JA, JALL).  An
:class:`UnnestedPlan` captures that shape; executing one never evaluates a
subquery per outer tuple — which is the whole point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Union

from ..data.catalog import Catalog
from ..data.relation import FuzzyRelation
from ..sql.ast import SelectQuery

StepBody = Union[SelectQuery, Callable[[Catalog, "EvaluatorFactory"], FuzzyRelation]]
EvaluatorFactory = Callable[[Catalog], object]  # -> an object with .evaluate()


@dataclass
class Step:
    """One pipeline stage producing a temporary relation.

    ``body`` is either a flat :class:`SelectQuery` or a callable for the
    few constructs plain SELECT syntax cannot express (degree resets,
    left outer join with IF-THEN-ELSE, empty-inner fallbacks).
    ``description`` feeds ``explain()``.
    """

    name: str
    body: StepBody
    description: str = ""

    def run(self, catalog: Catalog, make_evaluator: EvaluatorFactory) -> FuzzyRelation:
        """Evaluate the step's body — a query or a callable — against the catalog."""
        if isinstance(self.body, SelectQuery):
            return make_evaluator(catalog).evaluate(self.body)
        return self.body(catalog, make_evaluator)


@dataclass
class UnnestedPlan:
    """A sequence of temp-relation steps and a final flat query.

    ``rule`` names the rewrite that produced this plan (which theorem of
    the paper fired) — EXPLAIN surfaces it so a reader can tell *why* the
    query became this pipeline.
    """

    final: StepBody
    steps: List[Step] = field(default_factory=list)
    nesting_type: str = ""
    rule: str = ""

    def execute(
        self,
        catalog: Catalog,
        make_evaluator: EvaluatorFactory,
        metrics=None,
    ) -> FuzzyRelation:
        """Run all steps against a scratch copy of the catalog.

        With a :class:`~repro.observe.metrics.QueryMetrics` collector the
        fired rewrite and each step's output cardinality and wall time are
        recorded.
        """
        if metrics is not None:
            metrics.rewrite = self.rule or self.nesting_type or "flat"
        scratch = catalog.copy()
        for step in self.steps:
            if metrics is None:
                scratch.register(step.name, step.run(scratch, make_evaluator))
            else:
                started = time.perf_counter()
                result = step.run(scratch, make_evaluator)
                metrics.record_step(
                    step.name, len(result), time.perf_counter() - started
                )
                scratch.register(step.name, result)
        if isinstance(self.final, SelectQuery):
            return make_evaluator(scratch).evaluate(self.final)
        return self.final(scratch, make_evaluator)

    def explain(self) -> str:
        """Human-readable rendering: nesting type, rewrite rule, then the steps."""
        lines = [f"unnested plan ({self.nesting_type or 'flat'})"]
        if self.rule:
            lines.append(f"  rewrite: {self.rule}")
        for step in self.steps:
            body = str(step.body) if isinstance(step.body, SelectQuery) else step.description
            lines.append(f"  {step.name} := {body}")
        final = str(self.final) if isinstance(self.final, SelectQuery) else "<procedural step>"
        lines.append(f"  answer := {final}")
        return "\n".join(lines)
