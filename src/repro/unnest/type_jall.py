"""Unnesting the ALL quantifier (Section 7).

``R.Y op ALL (SELECT S.Z FROM S WHERE S.V = R.U)`` becomes

    T1(R.*, MIN(D)) = SELECT R.A1..An, MIN(D)
                      FROM R, S
                      WHERE p1 AND R.D AND
                            NOT (S.D AND p2 AND corr AND NOT (R.Y op S.Z))
                      GROUPBY R.A1..An

followed by a projection (Theorem 7.1).  The doubly negated comparison
realizes ``1 - min(mu_S(s), d(join), 1 - d(r.Y op s.Z))`` per pair; the
``MIN(D)`` group aggregate realizes the minimum over S.  As with JX, an
empty inner relation falls back to ``SELECT R.* FROM R WHERE p1``
(``d(v op ALL {}) = 1``).
"""

from __future__ import annotations

from ..data.catalog import Catalog
from ..sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    DegreeRef,
    NegatedConjunction,
    QuantifiedComparison,
    SelectQuery,
    TableRef,
)
from .common import (
    UnnestError,
    deconflict,
    qualify,
    single_select_column,
    single_table,
    split_nesting_predicate,
    temp_name,
)
from .pipeline import UnnestedPlan
from .type_jx import _grouped_antijoin_step


def unnest_all(query: SelectQuery, catalog: Catalog, nesting_type: str = "JALL") -> UnnestedPlan:
    """Rewrite an ``op ALL`` nesting into the grouped double-negation form."""
    q = qualify(query, catalog)
    nesting, rest = split_nesting_predicate(q)
    if not (isinstance(nesting, QuantifiedComparison) and nesting.quantifier == "ALL"):
        raise UnnestError(f"not an ALL nesting: {nesting!r}")
    if not all(isinstance(item, ColumnRef) for item in q.select):
        raise UnnestError("select list must be plain columns")
    outer_table = single_table(q)
    inner = nesting.query
    if inner.group_by or inner.distinct or inner.with_threshold is not None:
        raise UnnestError("inner block must be a plain select")

    taken = [outer_table.binding]
    inner, inner_tables = deconflict(inner, taken)
    z_column = single_select_column(inner)
    comparison = Comparison(nesting.column, nesting.op, z_column)
    negated = NegatedConjunction(
        (DegreePredicate(DegreeRef(inner_tables[0].binding)),)
        + inner.where
        + (NegatedConjunction((comparison,)),)
    )

    outer_schema = catalog.get(outer_table.name).schema
    group_columns = [ColumnRef(outer_table.binding, a.name) for a in outer_schema]
    t1_query = SelectQuery(
        select=tuple(group_columns) + (AggregateExpr("MIN", ColumnRef(None, "D")),),
        from_tables=(outer_table,) + tuple(inner_tables),
        where=tuple(rest)
        + (DegreePredicate(DegreeRef(outer_table.binding)), negated),
        group_by=tuple(group_columns),
    )
    fallback_query = SelectQuery(
        select=tuple(group_columns),
        from_tables=(outer_table,),
        where=tuple(rest),
    )
    t1_name = temp_name("JALLT")
    step = _grouped_antijoin_step(
        t1_name, t1_query, fallback_query, [t.name for t in inner_tables]
    )
    final = SelectQuery(
        select=tuple(ColumnRef(None, item.attribute) for item in q.select),
        from_tables=(TableRef(t1_name),),
        where=(),
        with_threshold=q.with_threshold,
        distinct=q.distinct,
    )
    return UnnestedPlan(
        final=final,
        steps=[step],
        nesting_type=nesting_type,
        rule="op ALL -> doubly-negated grouped fold (Section 7)",
    )
