"""Unnesting K-level chain (linear) queries (Section 8, Theorem 8.1).

A chain query has one relation per block, blocks linked by ``IN``, and
correlation predicates that may reference *any* outer block.  The flat
form joins all K relations at once:

    SELECT R1.X1 FROM R1, ..., RK
    WHERE  AND_i p_i(R_i)
      AND  AND_{i,j} p_ij(R_i, R_j)
      AND  AND_i R_i.Y_i = R_{i+1}.X_{i+1}
"""

from __future__ import annotations

from typing import List

from ..data.catalog import Catalog
from ..fuzzy.compare import Op
from ..sql.ast import Comparison, InPredicate, SelectQuery, TableRef
from .common import (
    UnnestError,
    deconflict,
    qualify,
    single_select_column,
    split_nesting_predicate,
)
from .pipeline import UnnestedPlan


def unnest_chain(query: SelectQuery, catalog: Catalog, nesting_type: str = "chain") -> UnnestedPlan:
    """Flatten an arbitrarily deep linear query into a single K-way join."""
    q = qualify(query, catalog)
    taken = [t.binding for t in q.from_tables]
    tables: List[TableRef] = list(q.from_tables)
    predicates: List = []
    block = q
    while True:
        try:
            nesting, rest = split_nesting_predicate(block)
        except UnnestError:
            predicates.extend(block.where)
            break
        if not isinstance(nesting, InPredicate) or nesting.negated:
            raise UnnestError("chain blocks must be linked by plain IN predicates")
        predicates.extend(rest)
        inner = nesting.query
        if inner.group_by or inner.distinct or inner.with_threshold is not None:
            raise UnnestError("chain blocks must be plain selects")
        inner, inner_tables = deconflict(inner, taken)
        tables.extend(inner_tables)
        link = Comparison(nesting.column, Op.EQ, single_select_column(inner))
        predicates.append(link)
        block = inner

    flat = SelectQuery(
        select=q.select,
        from_tables=tuple(tables),
        where=tuple(predicates),
        with_threshold=q.with_threshold,
        distinct=q.distinct,
    )
    return UnnestedPlan(
        final=flat,
        nesting_type=nesting_type,
        rule="K-level chain -> single flat join (Theorem 8.1)",
    )
