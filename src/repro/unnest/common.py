"""Shared AST surgery for the unnesting rewrites.

The rewrites merge inner-block tables and predicates into outer blocks, so
they need column references fully qualified, binding names deconflicted,
and the WHERE clause split around the nesting predicate.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from ..data.catalog import Catalog
from ..sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    ExistsPredicate,
    IdentityComparison,
    InPredicate,
    NegatedConjunction,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
    TableRef,
)
from ..sql.binder import Scope

_temp_counter = itertools.count(1)


class UnnestError(Exception):
    """The query cannot be unnested by the implemented rewrites."""


def temp_name(prefix: str) -> str:
    """A unique name for a pipeline temporary relation."""
    return f"__{prefix}_{next(_temp_counter)}"


# ----------------------------------------------------------------------
# Qualification: make every column reference carry its binding
# ----------------------------------------------------------------------

def qualify(query: SelectQuery, catalog: Catalog, parent: Optional[Scope] = None) -> SelectQuery:
    """Return an equivalent query with all column references qualified."""
    from ..sql.binder import expand_select_stars

    query = expand_select_stars(query, catalog)
    scope = Scope.for_query(query, catalog, parent)

    def fix_column(ref: ColumnRef) -> ColumnRef:
        resolution = scope.resolve(ref)
        return ColumnRef(resolution.binding, ref.attribute)

    def fix_predicate(p):
        if isinstance(p, Comparison):
            left = fix_column(p.left) if isinstance(p.left, ColumnRef) else p.left
            right = fix_column(p.right) if isinstance(p.right, ColumnRef) else p.right
            return Comparison(left, p.op, right)
        if isinstance(p, IdentityComparison):
            return IdentityComparison(fix_column(p.left), fix_column(p.right))
        if isinstance(p, InPredicate):
            return InPredicate(fix_column(p.column), qualify(p.query, catalog, scope), p.negated)
        if isinstance(p, QuantifiedComparison):
            return QuantifiedComparison(
                fix_column(p.column), p.op, p.quantifier, qualify(p.query, catalog, scope)
            )
        if isinstance(p, ScalarSubqueryComparison):
            return ScalarSubqueryComparison(
                fix_column(p.column), p.op, qualify(p.query, catalog, scope)
            )
        if isinstance(p, ExistsPredicate):
            return ExistsPredicate(qualify(p.query, catalog, scope), p.negated)
        if isinstance(p, NegatedConjunction):
            return NegatedConjunction(tuple(fix_predicate(q) for q in p.predicates))
        if isinstance(p, DegreePredicate):
            return p
        raise UnnestError(f"cannot qualify predicate {p!r}")

    def fix_item(item):
        if isinstance(item, AggregateExpr):
            if item.argument.attribute == "D":
                return item
            return AggregateExpr(item.func, fix_column(item.argument))
        return fix_column(item)

    def fix_having(p):
        def side(term):
            if isinstance(term, AggregateExpr):
                return fix_item(term)
            if isinstance(term, ColumnRef):
                return fix_column(term)
            return term

        return Comparison(side(p.left), p.op, side(p.right))

    return SelectQuery(
        select=tuple(fix_item(i) for i in query.select),
        from_tables=query.from_tables,
        where=tuple(fix_predicate(p) for p in query.where),
        with_threshold=query.with_threshold,
        group_by=tuple(fix_column(c) for c in query.group_by),
        distinct=query.distinct,
        having=tuple(fix_having(p) for p in query.having),
    )


# ----------------------------------------------------------------------
# Binding substitution (for deconflicting merged FROM clauses)
# ----------------------------------------------------------------------

def substitute_binding(node, old: str, new: str):
    """Rewrite qualified references ``old.X`` to ``new.X`` throughout."""
    if isinstance(node, ColumnRef):
        return ColumnRef(new, node.attribute) if node.relation == old else node
    if isinstance(node, AggregateExpr):
        return AggregateExpr(node.func, substitute_binding(node.argument, old, new))
    if isinstance(node, Comparison):
        return Comparison(
            substitute_binding(node.left, old, new) if isinstance(node.left, ColumnRef) else node.left,
            node.op,
            substitute_binding(node.right, old, new) if isinstance(node.right, ColumnRef) else node.right,
        )
    if isinstance(node, IdentityComparison):
        return IdentityComparison(
            substitute_binding(node.left, old, new),
            substitute_binding(node.right, old, new),
        )
    if isinstance(node, InPredicate):
        return InPredicate(
            substitute_binding(node.column, old, new),
            substitute_binding(node.query, old, new),
            node.negated,
        )
    if isinstance(node, QuantifiedComparison):
        return QuantifiedComparison(
            substitute_binding(node.column, old, new),
            node.op,
            node.quantifier,
            substitute_binding(node.query, old, new),
        )
    if isinstance(node, ScalarSubqueryComparison):
        return ScalarSubqueryComparison(
            substitute_binding(node.column, old, new),
            node.op,
            substitute_binding(node.query, old, new),
        )
    if isinstance(node, ExistsPredicate):
        return ExistsPredicate(substitute_binding(node.query, old, new), node.negated)
    if isinstance(node, NegatedConjunction):
        return NegatedConjunction(
            tuple(substitute_binding(p, old, new) for p in node.predicates)
        )
    if isinstance(node, DegreePredicate):
        return node
    if isinstance(node, SelectQuery):
        # Only rewrite references; an inner block shadowing `old` in its own
        # FROM clause would stop the substitution, but deconflicted names
        # are fresh so shadowing cannot occur.
        return SelectQuery(
            select=tuple(substitute_binding(i, old, new) for i in node.select),
            from_tables=node.from_tables,
            where=tuple(substitute_binding(p, old, new) for p in node.where),
            with_threshold=node.with_threshold,
            group_by=tuple(substitute_binding(c, old, new) for c in node.group_by),
            distinct=node.distinct,
            having=tuple(substitute_binding(p, old, new) for p in node.having),
        )
    raise UnnestError(f"cannot substitute in {node!r}")


def deconflict(
    inner: SelectQuery, taken: List[str]
) -> Tuple[SelectQuery, List[TableRef]]:
    """Rename the inner block's bindings so they avoid ``taken`` names.

    Returns the rewritten inner query and its (renamed) table refs.
    ``inner`` must already be fully qualified.
    """
    tables: List[TableRef] = []
    for table in inner.from_tables:
        binding = table.binding
        if binding in taken:
            fresh = binding
            suffix = 1
            while fresh in taken:
                fresh = f"{binding}_{suffix}"
                suffix += 1
            inner = substitute_binding(inner, binding, fresh)
            tables.append(TableRef(table.name, fresh))
            taken.append(fresh)
        else:
            tables.append(table)
            taken.append(binding)
    return inner, tables


# ----------------------------------------------------------------------
# WHERE-clause dissection
# ----------------------------------------------------------------------

def split_nesting_predicate(query: SelectQuery):
    """Return ``(nesting_predicate, other_predicates)``.

    Exactly one subquery predicate is expected (checked by the classifier
    before any rewrite runs).
    """
    nesting = None
    rest = []
    for p in query.where:
        if isinstance(p, (InPredicate, QuantifiedComparison, ScalarSubqueryComparison, ExistsPredicate)):
            if nesting is not None:
                raise UnnestError("more than one subquery predicate in the block")
            nesting = p
        else:
            rest.append(p)
    if nesting is None:
        raise UnnestError("no subquery predicate in the block")
    return nesting, rest


def single_select_column(query: SelectQuery) -> ColumnRef:
    """The inner block's single projected column (S.Z)."""
    if len(query.select) != 1 or not isinstance(query.select[0], ColumnRef):
        raise UnnestError("inner block must select exactly one plain column")
    return query.select[0]


def single_table(query: SelectQuery) -> TableRef:
    """The sole FROM table of a single-table block; raises UnnestError otherwise."""
    if len(query.from_tables) != 1:
        raise UnnestError("this rewrite expects a single-table block")
    return query.from_tables[0]
