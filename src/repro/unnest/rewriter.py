"""The unnesting dispatcher: classify, then apply the matching rewrite."""

from __future__ import annotations

from typing import Union

from ..data.catalog import Catalog
from ..data.relation import FuzzyRelation
from ..engine.semantics import NaiveEvaluator
from ..sql.ast import SelectQuery
from ..sql.classify import NestingType, classify
from ..sql.parser import parse
from .chain import unnest_chain
from .common import UnnestError
from .pipeline import UnnestedPlan
from .type_ja import unnest_aggregate
from .type_jall import unnest_all
from .type_jx import unnest_not_in
from .type_n import unnest_in

_REWRITES = {
    NestingType.TYPE_N: unnest_in,
    NestingType.TYPE_J: unnest_in,
    NestingType.TYPE_SOME: unnest_in,
    NestingType.TYPE_JSOME: unnest_in,
    NestingType.TYPE_XN: unnest_not_in,
    NestingType.TYPE_JX: unnest_not_in,
    NestingType.TYPE_A: unnest_aggregate,
    NestingType.TYPE_JA: unnest_aggregate,
    NestingType.TYPE_ALL: unnest_all,
    NestingType.TYPE_JALL: unnest_all,
    NestingType.CHAIN: unnest_chain,
}


def unnest(query: Union[str, SelectQuery], catalog: Catalog) -> UnnestedPlan:
    """Rewrite a nested query into an :class:`UnnestedPlan`.

    Raises :class:`UnnestError` for queries outside the implemented types
    (``GENERAL``); callers should fall back to the naive evaluator then.
    A ``FLAT`` query passes through as a trivial plan.
    """
    if isinstance(query, str):
        query = parse(query)
    nesting_type = classify(query, catalog)
    if nesting_type is NestingType.FLAT:
        return UnnestedPlan(
            final=query, nesting_type="flat", rule="no nesting -> pass through"
        )
    rewrite = _REWRITES.get(nesting_type)
    if rewrite is None:
        raise UnnestError(f"no rewrite for nesting type {nesting_type.value}")
    return rewrite(query, catalog, nesting_type=nesting_type.value)


def execute_unnested(
    query: Union[str, SelectQuery],
    catalog: Catalog,
    **evaluator_kwargs,
) -> FuzzyRelation:
    """Convenience: unnest and execute against in-memory relations.

    Falls back to the naive evaluator when no rewrite applies, so it is
    always safe to call.
    """
    if isinstance(query, str):
        query = parse(query)

    def make_evaluator(cat: Catalog) -> NaiveEvaluator:
        return NaiveEvaluator(cat, **evaluator_kwargs)

    try:
        plan = unnest(query, catalog)
    except UnnestError:
        return make_evaluator(catalog).evaluate(query)
    return plan.execute(catalog, make_evaluator)
