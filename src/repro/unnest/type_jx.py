"""Unnesting types XN and JX — set exclusion, ``NOT IN`` (Section 5).

The rewrite builds the temporary relation

    JXT(R.*, MIN(D)) = SELECT R.A1..An, MIN(D)
                       FROM R, S
                       WHERE p1 AND R.D AND NOT (S.D AND p2 AND R.Y = S.Z)
                       GROUPBY R.A1..An

and projects the original select list from it (Theorem 5.1).  Grouping by
*all* of R's attributes plays the role of the paper's key ``R.K``: a fuzzy
relation merges identically-valued tuples, so per-value groups are
per-tuple groups.

Edge case the flat form cannot see: when the inner relation is empty the
cross product is empty, yet the nested semantics keeps every R-tuple at
degree ``min(mu_R(r), d(p1(r)))`` (``d(r.Y not in {}) = 1``).  The step
falls back to ``SELECT R.* FROM R WHERE p1`` in that case.
"""

from __future__ import annotations

from typing import List

from ..data.catalog import Catalog
from ..fuzzy.compare import Op
from ..sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    DegreeRef,
    InPredicate,
    NegatedConjunction,
    SelectQuery,
    TableRef,
)
from .common import (
    UnnestError,
    deconflict,
    qualify,
    single_select_column,
    single_table,
    split_nesting_predicate,
    temp_name,
)
from .pipeline import Step, UnnestedPlan


def unnest_not_in(query: SelectQuery, catalog: Catalog, nesting_type: str = "JX") -> UnnestedPlan:
    """Rewrite a NOT IN nesting into the grouped anti-join pipeline."""
    q = qualify(query, catalog)
    nesting, rest = split_nesting_predicate(q)
    if not (isinstance(nesting, InPredicate) and nesting.negated):
        raise UnnestError(f"not a NOT IN nesting: {nesting!r}")
    if not all(isinstance(item, ColumnRef) for item in q.select):
        raise UnnestError("select list must be plain columns")
    outer_table = single_table(q)
    inner = nesting.query
    if inner.group_by or inner.distinct or inner.with_threshold is not None:
        raise UnnestError("inner block must be a plain select")

    taken = [outer_table.binding]
    inner, inner_tables = deconflict(inner, taken)
    z_column = single_select_column(inner)
    negated = NegatedConjunction(
        (DegreePredicate(DegreeRef(inner_tables[0].binding)),)
        + inner.where
        + (Comparison(nesting.column, Op.EQ, z_column),)
    )

    outer_schema = catalog.get(outer_table.name).schema
    group_columns = [ColumnRef(outer_table.binding, a.name) for a in outer_schema]
    jxt_query = SelectQuery(
        select=tuple(group_columns) + (AggregateExpr("MIN", ColumnRef(None, "D")),),
        from_tables=(outer_table,) + tuple(inner_tables),
        where=tuple(rest)
        + (DegreePredicate(DegreeRef(outer_table.binding)), negated),
        group_by=tuple(group_columns),
    )
    fallback_query = SelectQuery(
        select=tuple(group_columns),
        from_tables=(outer_table,),
        where=tuple(rest),
    )
    jxt_name = temp_name("JXT")
    step = _grouped_antijoin_step(
        jxt_name, jxt_query, fallback_query, [t.name for t in inner_tables]
    )
    final = SelectQuery(
        select=tuple(ColumnRef(None, item.attribute) for item in q.select),
        from_tables=(TableRef(jxt_name),),
        where=(),
        with_threshold=q.with_threshold,
        distinct=q.distinct,
    )
    return UnnestedPlan(
        final=final,
        steps=[step],
        nesting_type=nesting_type,
        rule="NOT IN -> grouped anti-join min-fold (Section 5)",
    )


def _grouped_antijoin_step(
    name: str,
    jxt_query: SelectQuery,
    fallback_query: SelectQuery,
    inner_names: List[str],
) -> Step:
    def body(catalog: Catalog, make_evaluator):
        if any(len(catalog.get(n)) == 0 for n in inner_names):
            return make_evaluator(catalog).evaluate(fallback_query)
        return make_evaluator(catalog).evaluate(jxt_query)

    return Step(name, body, description=str(jxt_query))
