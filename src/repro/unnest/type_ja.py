"""Unnesting types A and JA — aggregate subqueries (Section 6).

For the correlated form

    SELECT R.X FROM R
    WHERE p1 AND R.Y op1 (SELECT AGG(S.Z) FROM S WHERE p2 AND S.V op2 R.U)

the rewrite builds two temporaries:

    T1(U)    = SELECT DISTINCT R.U FROM R WHERE p1        (degrees reset to 1)
    T2(U, A) = SELECT T1.U, AGG(S.Z) FROM T1, S
               WHERE p2 AND S.V op2 T1.U GROUPBY T1.U

and then joins back with the *binary* identity predicate ``R.U == T2.U``
(Theorem 6.1).  When AGG is COUNT the final join is a left outer join with
an IF-THEN-ELSE: matched R-tuples compare against the group count,
unmatched ones against the constant 0 (Query COUNT').

The uncorrelated form (type A) needs only one temporary — the inner
aggregate evaluated once — joined back by the comparison alone.
"""

from __future__ import annotations

from typing import List, Tuple

from ..data.catalog import Catalog
from ..data.relation import FuzzyRelation
from ..sql.ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    IdentityComparison,
    Literal,
    ScalarSubqueryComparison,
    SelectQuery,
    TableRef,
)
from ..sql.binder import Scope
from .common import (
    UnnestError,
    deconflict,
    qualify,
    single_table,
    split_nesting_predicate,
    temp_name,
)
from .pipeline import Step, UnnestedPlan


def unnest_aggregate(query: SelectQuery, catalog: Catalog, nesting_type: str = "JA") -> UnnestedPlan:
    """Dispatch between the correlated (JA) and uncorrelated (A) rewrites."""
    q = qualify(query, catalog)
    nesting, rest = split_nesting_predicate(q)
    if not isinstance(nesting, ScalarSubqueryComparison):
        raise UnnestError(f"not an aggregate nesting: {nesting!r}")
    inner = nesting.query
    if len(inner.select) != 1 or not isinstance(inner.select[0], AggregateExpr):
        raise UnnestError("inner block must select a single aggregate")
    if inner.group_by or inner.distinct or inner.with_threshold is not None:
        raise UnnestError("inner block must be a plain aggregate select")

    correlation, plain = _split_correlation(q, inner, catalog)
    if not correlation:
        return _unnest_uncorrelated(q, nesting, rest, plain, nesting_type="A")
    return _unnest_correlated(q, nesting, rest, correlation, plain, catalog, nesting_type)


# ----------------------------------------------------------------------
# Type A: uncorrelated aggregate — evaluate the inner block once
# ----------------------------------------------------------------------

def _unnest_uncorrelated(
    q: SelectQuery, nesting, rest, plain, nesting_type: str
) -> UnnestedPlan:
    inner = nesting.query
    t_name = temp_name("AGG")
    agg = inner.select[0]
    agg_attr = f"{agg.func}_{agg.argument.attribute}"
    step = Step(t_name, inner, description=str(inner))
    final = SelectQuery(
        select=q.select,
        from_tables=q.from_tables + (TableRef(t_name),),
        where=tuple(rest)
        + (Comparison(nesting.column, nesting.op, ColumnRef(t_name, agg_attr)),),
        with_threshold=q.with_threshold,
        distinct=q.distinct,
    )
    return UnnestedPlan(
        final=final,
        steps=[step],
        nesting_type=nesting_type,
        rule="uncorrelated aggregate -> evaluate once, flat compare (Type A)",
    )


# ----------------------------------------------------------------------
# Type JA: correlated aggregate — the T1/T2 pipeline
# ----------------------------------------------------------------------

def _unnest_correlated(
    q: SelectQuery,
    nesting,
    rest,
    correlation: List[Tuple[Comparison, ColumnRef]],
    plain,
    catalog: Catalog,
    nesting_type: str,
) -> UnnestedPlan:
    outer_table = single_table(q)
    inner = nesting.query
    taken = [outer_table.binding]
    # Deconflict the inner table *before* extracting pieces so references
    # stay coherent; correlation predicates were collected pre-rename, so
    # re-split afterwards.
    inner, inner_tables = deconflict(inner, taken)
    correlation, plain = _split_correlation(q, inner, catalog)

    outer_columns = [outer_ref for _, outer_ref in correlation]
    t1_name = temp_name("T1")
    t2_name = temp_name("T2")
    agg = inner.select[0]
    agg_attr = f"{agg.func}_{agg.argument.attribute}"

    # ---- T1: distinct outer join-values of p1-satisfying tuples --------
    t1_query = SelectQuery(
        select=tuple(outer_columns),
        from_tables=(outer_table,),
        where=tuple(rest),
    )
    t1_attrs = [c.attribute for c in outer_columns]

    def t1_body(cat: Catalog, make_evaluator) -> FuzzyRelation:
        projected = make_evaluator(cat).evaluate(t1_query)
        # "duplicates removed and all membership degrees set to 1"
        reset = FuzzyRelation(projected.schema)
        for t in projected:
            reset.add(t.with_degree(1.0))
        return reset

    t1_step = Step(t1_name, t1_body, description=f"{t1_query} [degrees := 1]")

    # ---- T2: per-group aggregates over S ------------------------------
    t2_where = list(plain)
    for comparison, outer_ref in correlation:
        t2_where.append(
            _rebind_comparison(comparison, outer_ref, ColumnRef(t1_name, outer_ref.attribute))
        )
    t2_query = SelectQuery(
        select=tuple(ColumnRef(t1_name, a) for a in t1_attrs) + (agg,),
        from_tables=(TableRef(t1_name),) + tuple(inner_tables),
        where=tuple(t2_where),
        group_by=tuple(ColumnRef(t1_name, a) for a in t1_attrs),
    )
    t2_step = Step(t2_name, t2_query, description=str(t2_query))

    if agg.func.upper() == "COUNT":
        final = _count_outer_join(
            q, nesting, rest, outer_table, t2_name, t1_attrs, agg_attr, correlation
        )
        return UnnestedPlan(
            final=final,
            steps=[t1_step, t2_step],
            nesting_type=nesting_type,
            rule="COUNT aggregate -> T1/T2 + left outer join (Section 6)",
        )

    identity = tuple(
        IdentityComparison(outer_ref, ColumnRef(t2_name, outer_ref.attribute))
        for _, outer_ref in correlation
    )
    final_query = SelectQuery(
        select=q.select,
        from_tables=(outer_table, TableRef(t2_name)),
        where=tuple(rest)
        + identity
        + (Comparison(nesting.column, nesting.op, ColumnRef(t2_name, agg_attr)),),
        with_threshold=q.with_threshold,
        distinct=q.distinct,
    )
    return UnnestedPlan(
        final=final_query,
        steps=[t1_step, t2_step],
        nesting_type=nesting_type,
        rule="correlated aggregate -> T1/T2 pipeline (Section 6, Theorem 6.1)",
    )


def _count_outer_join(
    q, nesting, rest, outer_table, t2_name, t1_attrs, agg_attr, correlation
):
    """Query COUNT': left outer join with the [matched : unmatched] branches."""
    identity = tuple(
        IdentityComparison(outer_ref, ColumnRef(t2_name, outer_ref.attribute))
        for _, outer_ref in correlation
    )
    then_query = SelectQuery(
        select=q.select,
        from_tables=(outer_table, TableRef(t2_name)),
        where=tuple(rest)
        + identity
        + (Comparison(nesting.column, nesting.op, ColumnRef(t2_name, agg_attr)),),
    )
    else_comparison = Comparison(nesting.column, nesting.op, Literal(0.0))
    outer_refs = [outer_ref for _, outer_ref in correlation]

    def body(cat: Catalog, make_evaluator) -> FuzzyRelation:
        evaluator = make_evaluator(cat)
        then_part = evaluator.evaluate(then_query)
        # Unmatched R-tuples: their correlation values have no T2 group.
        t2 = cat.get(t2_name)
        t2_keys = {
            tuple(t[t2.schema.index_of(a)].key() for a in t1_attrs) for t in t2
        }
        outer_rel = cat.get(outer_table.name)
        unmatched = FuzzyRelation(outer_rel.schema)
        indices = [outer_rel.schema.index_of(ref.attribute) for ref in outer_refs]
        for t in outer_rel:
            if tuple(t[i].key() for i in indices) not in t2_keys:
                unmatched.add(t)
        scratch = cat.copy()
        unmatched_name = temp_name("UNMATCHED")
        scratch.register(unmatched_name, unmatched)
        # Alias the unmatched temp back to the outer binding so `rest` and
        # the select list resolve unchanged.
        else_query = SelectQuery(
            select=q.select,
            from_tables=(TableRef(unmatched_name, outer_table.binding),),
            where=tuple(rest) + (else_comparison,),
        )
        else_part = make_evaluator(scratch).evaluate(else_query)
        # Union under fuzzy OR (max-degree dedup).
        out = FuzzyRelation(then_part.schema)
        for t in then_part:
            out.add(t)
        for t in else_part:
            out.add(t)
        threshold = q.with_threshold if q.with_threshold is not None else 0.0
        return out.with_threshold(threshold)

    return body


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------

def _split_correlation(q: SelectQuery, inner: SelectQuery, catalog: Catalog):
    """Partition the inner WHERE into correlation and local predicates.

    A correlation predicate is a :class:`Comparison` with exactly one side
    being a column of the *outer* block; that side is returned normalized
    to the right (``(comparison, outer_ref)`` pairs).
    """
    outer_scope = Scope.for_query(q, catalog)
    inner_scope = Scope.for_query(inner, catalog, outer_scope)
    correlation: List[Tuple[Comparison, ColumnRef]] = []
    plain = []
    for p in inner.where:
        if isinstance(p, Comparison):
            left_outer = _is_outer(p.left, inner_scope)
            right_outer = _is_outer(p.right, inner_scope)
            if left_outer and right_outer:
                raise UnnestError("correlation predicate references no inner column")
            if right_outer:
                correlation.append((p, p.right))
                continue
            if left_outer:
                correlation.append((Comparison(p.right, p.op.flipped(), p.left), p.left))
                continue
        plain.append(p)
    return correlation, plain


def _is_outer(term, inner_scope: Scope) -> bool:
    return isinstance(term, ColumnRef) and not inner_scope.is_local(term)


def _rebind_comparison(
    comparison: Comparison, outer_ref: ColumnRef, replacement: ColumnRef
) -> Comparison:
    """Replace the outer column (normalized to the right side) with ``replacement``."""
    assert comparison.right == outer_ref
    return Comparison(comparison.left, comparison.op, replacement)
