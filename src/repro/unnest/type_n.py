"""Unnesting types N and J (Section 4) and the SOME/ANY quantifier.

``R.Y IN (SELECT S.Z FROM S WHERE p2 [AND corr])`` becomes a flat join

    SELECT R.X FROM R, S WHERE p1 AND R.Y = S.Z AND p2 [AND corr]

(Theorems 4.1 and 4.2); a quantified ``R.Y op SOME (...)`` unnests the
same way with ``op`` as the join operator, since
``d(v op SOME T) = max_z min(mu_T(z), d(v op z))`` has exactly the shape
of the IN-membership degree.
"""

from __future__ import annotations

from ..data.catalog import Catalog
from ..fuzzy.compare import Op
from ..sql.ast import Comparison, InPredicate, QuantifiedComparison, SelectQuery
from .common import (
    UnnestError,
    deconflict,
    qualify,
    single_select_column,
    split_nesting_predicate,
)
from .pipeline import UnnestedPlan


def unnest_in(query: SelectQuery, catalog: Catalog, nesting_type: str = "N/J") -> UnnestedPlan:
    """Flatten an (optionally correlated) IN or SOME/ANY nesting."""
    q = qualify(query, catalog)
    nesting, rest = split_nesting_predicate(q)
    if isinstance(nesting, InPredicate):
        if nesting.negated:
            raise UnnestError("NOT IN is handled by the JX rewrite")
        op = Op.EQ
        rule = "IN -> flat equi-join (Theorems 4.1/4.2)"
    elif isinstance(nesting, QuantifiedComparison):
        if nesting.quantifier not in ("SOME", "ANY"):
            raise UnnestError("ALL is handled by the JALL rewrite")
        op = nesting.op
        rule = f"{nesting.quantifier} -> flat {op.value}-join (Section 4)"
    else:
        raise UnnestError(f"not an IN/SOME nesting: {nesting!r}")

    inner = nesting.query
    _check_plain_inner(inner)
    taken = [t.binding for t in q.from_tables]
    inner, inner_tables = deconflict(inner, taken)
    z_column = single_select_column(inner)
    join_predicate = Comparison(nesting.column, op, z_column)

    flat = SelectQuery(
        select=q.select,
        from_tables=q.from_tables + tuple(inner_tables),
        where=tuple(rest) + (join_predicate,) + inner.where,
        with_threshold=q.with_threshold,
        distinct=q.distinct,
    )
    return UnnestedPlan(final=flat, nesting_type=nesting_type, rule=rule)


def _check_plain_inner(inner: SelectQuery) -> None:
    if inner.group_by or inner.distinct:
        raise UnnestError("inner block must be a plain select")
    if inner.with_threshold is not None:
        raise UnnestError("an inner WITH threshold is not unnestable")
    single_select_column(inner)
