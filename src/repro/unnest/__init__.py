"""The paper's contribution: unnesting transformations for Fuzzy SQL."""

from .chain import unnest_chain
from .common import UnnestError, qualify
from .pipeline import Step, UnnestedPlan
from .rewriter import execute_unnested, unnest
from .type_ja import unnest_aggregate
from .type_jall import unnest_all
from .type_jx import unnest_not_in
from .type_n import unnest_in

__all__ = [
    "unnest",
    "execute_unnested",
    "UnnestedPlan",
    "Step",
    "UnnestError",
    "qualify",
    "unnest_in",
    "unnest_not_in",
    "unnest_aggregate",
    "unnest_all",
    "unnest_chain",
]
