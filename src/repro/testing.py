"""Hypothesis strategies for property-testing fuzzy-database code.

Downstream users extending this library (new operators, new rewrites, new
join algorithms) can reuse the same generators the internal test suite is
built on::

    from hypothesis import given
    from repro.testing import fuzzy_relations, trapezoids

    @given(fuzzy_relations(ncolumns=2))
    def test_my_operator(relation):
        ...

The distribution strategies deliberately mix crisp numbers, overlapping
trapezoids, and discrete distributions around shared anchors so that
partial matches, ties, duplicates, and empty groups occur often — the
regimes where fuzzy-set semantics bugs hide.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - test-time dependency
    raise ImportError(
        "repro.testing requires hypothesis (install the [test] extra)"
    ) from exc

from .data.relation import FuzzyRelation
from .data.schema import Schema
from .data.tuples import FuzzyTuple
from .fuzzy.crisp import CrispLabel, CrispNumber
from .fuzzy.discrete import DiscreteDistribution
from .fuzzy.trapezoid import TrapezoidalNumber

#: Degrees drawn for generated tuples — a small set keeps ties frequent.
DEFAULT_DEGREES = (0.2, 0.5, 0.8, 1.0)


@st.composite
def trapezoids(draw, min_value: float = -50.0, max_value: float = 50.0,
               min_ramp: float = 0.0):
    """Arbitrary trapezoids with ``a <= b <= c <= d`` in the given range.

    ``min_ramp > 0`` forces each nonzero ramp to be at least that wide —
    useful when a grid-based oracle must observe the suprema.
    """
    xs = sorted(
        draw(
            st.lists(
                st.floats(min_value=min_value, max_value=max_value, allow_nan=False),
                min_size=4,
                max_size=4,
            )
        )
    )
    a, b, c, d = xs
    if min_ramp > 0.0:
        if b - a < min_ramp:
            b = a
        if d - c < min_ramp:
            c = d
    return TrapezoidalNumber(a, b, c, d)


@st.composite
def discrete_distributions(draw, min_value: float = -50.0, max_value: float = 50.0,
                           max_elements: int = 4):
    """Hypothesis strategy: small discrete possibility distributions over floats."""
    items = draw(
        st.dictionaries(
            st.floats(min_value=min_value, max_value=max_value, allow_nan=False),
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1,
            max_size=max_elements,
        )
    )
    return DiscreteDistribution(items)


@st.composite
def numeric_distributions(draw, min_value: float = -50.0, max_value: float = 50.0):
    """A crisp number, a trapezoid, or a discrete distribution."""
    kind = draw(st.sampled_from(["crisp", "trap", "disc"]))
    if kind == "crisp":
        return CrispNumber(
            draw(st.floats(min_value=min_value, max_value=max_value, allow_nan=False))
        )
    if kind == "trap":
        return draw(trapezoids(min_value=min_value, max_value=max_value))
    return draw(discrete_distributions(min_value=min_value, max_value=max_value))


def anchored_value_pool(anchors: Sequence[float] = (0.0, 5.0, 10.0)) -> List:
    """A small pool of deliberately overlapping values around anchors.

    Sampling attribute values from a shared pool (rather than fresh random
    floats) is what makes joins, duplicates, and exact ties common in
    generated relations.
    """
    pool: List = []
    for anchor in anchors:
        pool.append(CrispNumber(anchor))
        pool.append(TrapezoidalNumber(anchor - 2, anchor - 1, anchor + 1, anchor + 2))
        pool.append(TrapezoidalNumber(anchor - 4, anchor, anchor, anchor + 4))
    if len(anchors) >= 2:
        pool.append(
            DiscreteDistribution({float(anchors[0]): 1.0, float(anchors[1]): 0.7})
        )
    return pool


@st.composite
def fuzzy_relations(
    draw,
    schema: Optional[Schema] = None,
    min_size: int = 0,
    max_size: int = 6,
    value_pool: Optional[Sequence] = None,
    degrees: Sequence[float] = DEFAULT_DEGREES,
    key_attribute: bool = True,
):
    """Random fuzzy relations.

    By default the schema is ``(K, A1, ..)`` with a crisp running key in
    ``K`` (so tuples stay distinct) and pool-sampled values elsewhere.
    Pass your own ``schema`` to control arity; the first attribute still
    receives the key when ``key_attribute`` is True.
    """
    if schema is None:
        schema = Schema(["K", "U", "V"])
    pool = list(value_pool) if value_pool is not None else anchored_value_pool()
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    relation = FuzzyRelation(schema)
    for i in range(n):
        values = []
        for position in range(len(schema)):
            if key_attribute and position == 0:
                values.append(CrispNumber(i))
            else:
                values.append(draw(st.sampled_from(pool)))
        relation.add(FuzzyTuple(values, draw(st.sampled_from(list(degrees)))))
    return relation


@st.composite
def labeled_relations(draw, labels: Sequence[str] = ("a", "b", "c"),
                      min_size: int = 0, max_size: int = 6):
    """Relations over a (KEY, TAG) schema with a symbolic second column."""
    from .data.schema import Attribute
    from .data.types import AttributeType

    schema = Schema(
        [Attribute("KEY"), Attribute("TAG", AttributeType.LABEL)]
    )
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    relation = FuzzyRelation(schema)
    for i in range(n):
        relation.add(
            FuzzyTuple(
                [CrispNumber(i), CrispLabel(draw(st.sampled_from(list(labels))))],
                draw(st.sampled_from(DEFAULT_DEGREES)),
            )
        )
    return relation
