"""Resilience primitives: deadlines, cancellation, bounded retries.

These are deliberately tiny, dependency-free building blocks:

* :class:`CancelToken` — a thread-safe flag a caller sets to abandon a
  running query; checked cooperatively at page-I/O and batch boundaries.
* :class:`Deadline` — an absolute point in monotonic time derived from a
  per-query ``timeout_ms``.
* :class:`QueryGuard` — bundles both and raises the matching typed error
  from :mod:`repro.errors` when either trips.  The disk consults the
  thread's active guard on every page transfer, so even a query deep in
  an external sort notices a timeout within one page access.
* :class:`RetryPolicy` — bounded exponential backoff for
  :class:`~repro.errors.TransientIOError` at the disk boundary.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from .errors import QueryCancelledError, QueryTimeoutError, TransientIOError


class CancelToken:
    """A thread-safe cancellation flag shared between caller and query."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; safe to call from any thread, idempotent."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


class Deadline:
    """An absolute monotonic-clock deadline for one query."""

    __slots__ = ("timeout_seconds", "_expires_at", "_clock")

    def __init__(self, timeout_seconds: float, clock: Callable[[], float] = time.monotonic):
        if timeout_seconds <= 0:
            raise ValueError("timeout must be positive")
        self.timeout_seconds = timeout_seconds
        self._clock = clock
        self._expires_at = clock() + timeout_seconds

    @classmethod
    def from_timeout_ms(cls, timeout_ms: float) -> "Deadline":
        """A deadline ``timeout_ms`` milliseconds from now."""
        return cls(timeout_ms / 1000.0)

    def remaining(self) -> float:
        """Seconds until expiry; never negative."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self._clock() >= self._expires_at


class QueryGuard:
    """Raises typed errors when a query's deadline or cancel token trips.

    A guard with neither a deadline nor a token is legal and never trips;
    :meth:`check` is cheap enough to call per page access.
    """

    __slots__ = ("deadline", "token")

    def __init__(self, deadline: Optional[Deadline] = None, token: Optional[CancelToken] = None):
        self.deadline = deadline
        self.token = token

    @classmethod
    def create(
        cls, timeout_ms: Optional[float] = None, cancel: Optional[CancelToken] = None
    ) -> Optional["QueryGuard"]:
        """A guard for the given limits, or ``None`` when there are none."""
        if timeout_ms is None and cancel is None:
            return None
        deadline = Deadline.from_timeout_ms(timeout_ms) if timeout_ms is not None else None
        return cls(deadline=deadline, token=cancel)

    def check(self) -> None:
        """Raise the matching typed error if cancellation or expiry tripped."""
        if self.token is not None and self.token.cancelled:
            raise QueryCancelledError("query cancelled by its CancelToken")
        if self.deadline is not None and self.deadline.expired():
            timeout_ms = self.deadline.timeout_seconds * 1000.0
            raise QueryTimeoutError(f"query exceeded its {timeout_ms:.0f} ms deadline")

    def remaining(self) -> Optional[float]:
        """Seconds left on the deadline, or ``None`` when unbounded."""
        if self.deadline is None:
            return None
        return self.deadline.remaining()


class RetryPolicy:
    """Bounded exponential backoff for transient storage faults.

    ``attempts`` counts *total* tries: the default of 4 means one initial
    attempt plus up to three retries.  Backoff delays are tiny (the
    simulated disk has no real latency to wait out) but still exponential
    so the policy's shape matches a production retry loop; a guard passed
    to :meth:`backoff` is re-checked before every sleep so a query does
    not sit out its own deadline inside a retry storm.
    """

    __slots__ = ("attempts", "base_delay", "max_delay", "multiplier", "_sleep")

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.0002,
        max_delay: float = 0.005,
        multiplier: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self._sleep = sleep

    def delay(self, attempt: int) -> float:
        """Backoff delay in seconds before retry number ``attempt`` (1-based)."""
        return min(self.max_delay, self.base_delay * (self.multiplier ** (attempt - 1)))

    def backoff(self, attempt: int, guard: Optional[QueryGuard] = None) -> None:
        """Sleep before retry ``attempt``, honouring the guard's deadline."""
        if guard is not None:
            guard.check()
        delay = self.delay(attempt)
        if guard is not None and guard.deadline is not None:
            delay = min(delay, guard.deadline.remaining())
        if delay > 0:
            self._sleep(delay)

    def run(self, operation: Callable[[], object], *, on_retry=None, guard=None):
        """Call ``operation`` with retries on :class:`TransientIOError`.

        ``on_retry(attempt, error)`` is invoked once per failed attempt
        that will be retried (accounting hook); the final failure is
        re-raised unchanged.
        """
        attempt = 1
        while True:
            try:
                return operation()
            except TransientIOError as exc:
                if attempt >= self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.backoff(attempt, guard)
                attempt += 1


__all__ = ["CancelToken", "Deadline", "QueryGuard", "RetryPolicy"]
