"""Shard layouts: persisted ``b(v)`` range boundaries per relation.

A :class:`ShardLayout` records how one relation was placed across the
shard nodes: the placement attribute and the boundary list that splits
the ``b(v)`` axis into half-open, *order-disjoint* ranges — exactly the
:class:`~repro.parallel.partitioner.RangePartitioner` geometry of PR 5,
promoted from an intra-query decision to durable data placement.  The
:class:`ShardCatalog` holds the layout of every placed relation plus a
monotonically increasing **layout token** per relation; plan-cache
entries validate against ``(statistics version, layout token)`` pairs,
so re-sharding a relation — even without touching its statistics —
invalidates every cached plan that reads it.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fuzzy.interval_order import sort_key


def select_boundaries(endpoints: List, n_shards: int) -> List:
    """Quantile boundaries over *all* left endpoints of a relation.

    Same cut-selection and dedup discipline as
    :meth:`~repro.parallel.partitioner.RangePartitioner.from_sample`, but
    computed from the full relation at registration time (placement is a
    load-time decision, so there is nothing to sample around).  Returns
    up to ``n_shards - 1`` strictly increasing cuts; an empty list means
    every tuple lands on shard 0 (a degenerate but valid layout — the
    scatter-gather executor simply declines to engage).
    """
    if n_shards < 2 or len(endpoints) < 2:
        return []
    try:
        endpoints = sorted(endpoints)
    except TypeError:
        return []  # mixed domains: b values not mutually comparable
    boundaries: List = []
    for i in range(1, n_shards):
        cut = endpoints[min(len(endpoints) - 1, i * len(endpoints) // n_shards)]
        if not boundaries or cut > boundaries[-1]:
            boundaries.append(cut)
    # A boundary at the global minimum would leave shard 0 empty.
    if boundaries and boundaries[0] <= endpoints[0]:
        boundaries = boundaries[1:]
    return boundaries


@dataclass(frozen=True)
class ShardLayout:
    """Where one relation lives: attribute, boundaries, and a layout token.

    Shard ``i`` owns the half-open ``b(v)`` range
    ``[boundaries[i-1], boundaries[i])`` (unbounded at the ends).  A
    tuple's **primary** shard is decided by the left endpoint of its
    placement attribute alone; its right endpoint only decides how far
    the ``Rng(r)`` band replicas reach (see
    :meth:`ShardedStorage.place <repro.shard.storage.ShardedStorage.place>`).
    """

    relation: str
    attribute: str
    boundaries: Tuple = field(default_factory=tuple)
    token: int = 0

    @property
    def n_shards(self) -> int:
        """Number of primary shards this layout actually uses."""
        return len(self.boundaries) + 1

    def shard_of_b(self, b) -> int:
        """The primary shard of a left endpoint ``b``."""
        return bisect.bisect_right(list(self.boundaries), b)

    def shard_of(self, value) -> int:
        """The primary shard of a fuzzy ``value`` (by its left endpoint)."""
        return self.shard_of_b(sort_key(value)[0])

    def replica_range(self, value) -> Tuple[int, int]:
        """``(primary, last)`` shard indices the value's support reaches.

        The support ``[b, e]`` intersects the ranges of shards
        ``primary .. last`` and no others: ``e >= boundaries[j-1]`` —
        i.e. the support crosses into shard ``j`` — holds exactly for
        ``j <= bisect_right(boundaries, e)``.  Band replicas therefore go
        to the *adjacent* shards ``primary + 1 .. last``.
        """
        b, e = sort_key(value)
        return self.shard_of_b(b), self.shard_of_b(e)

    def specs(self) -> List[Tuple[int, Optional[object], Optional[object]]]:
        """The shard ranges as ``(index, lower, upper)`` half-open bounds."""
        bounds = [None] + list(self.boundaries) + [None]
        return [(i, bounds[i], bounds[i + 1]) for i in range(self.n_shards)]


class ShardCatalog:
    """Layouts of every placed relation, with monotonic layout tokens."""

    def __init__(self):
        self._layouts: Dict[str, ShardLayout] = {}
        self._tokens = itertools.count(1)

    def record(self, relation: str, attribute: str, boundaries) -> ShardLayout:
        """Persist a (re)placement and advance the relation's layout token."""
        layout = ShardLayout(
            relation=relation.upper(),
            attribute=attribute,
            boundaries=tuple(boundaries),
            token=next(self._tokens),
        )
        self._layouts[layout.relation] = layout
        return layout

    def get(self, relation: str) -> Optional[ShardLayout]:
        """The layout of ``relation``, or ``None`` if it was never placed."""
        return self._layouts.get(relation.upper())

    def token(self, relation: str) -> int:
        """The relation's current layout token (0 when never placed)."""
        layout = self._layouts.get(relation.upper())
        return 0 if layout is None else layout.token

    def names(self) -> List[str]:
        """Placed relation names, sorted."""
        return sorted(self._layouts)
