"""The scatter-gather executor: shard-local merge-joins, spliced in order.

Correctness argument (checked exhaustively by
:mod:`tests.test_shard_property` and the differential matrix):

* The outer relation's primary slices partition it **disjointly** on
  ``b(r.X)``, so every joining pair belongs to exactly one shard task and
  the splice never duplicates a pair.
* Each shard task computes the reach band ``(low_i, high_i)`` — the
  ``(min b, max e)`` of its outer primaries — and assembles the inner
  slice from the durable placement: with ``j_lo/j_hi`` the inner shards
  of ``low_i``/``high_i``, the slice is ``band(j_lo)`` plus the primaries
  of shards ``j_lo .. j_hi``, all filtered by the reach band.  This is
  *exact*: an inner tuple ``s`` overlapping some outer ``r`` of shard
  ``i`` satisfies ``e(s) >= low_i >= lower(j_lo)``, so if its primary
  shard is below ``j_lo`` it crossed into shard ``j_lo``'s range and sits
  in ``band(j_lo)``; a primary above ``j_hi`` would force
  ``b(s) > high_i``, contradicting overlap.  No duplicates: primaries
  partition S, and ``band(j)`` holds only tuples whose primary is below
  ``j``.  Extra slice tuples are harmless — a disjoint-support pair has
  equality degree 0 and is never emitted.
* Each task runs the unmodified serial
  :class:`~repro.join.merge_join.MergeJoin` on its home node, and the
  coordinator concatenates the per-shard pair lists in shard order —
  which *is* the serial output order, because the global ``(b, e)`` sort
  of R is the concatenation of the shards' sorted orders.  No global
  merge pass, same bit-identity argument as PR 5.

Failover (the PR 4 fault taxonomy, at shard level): every slice is
mirrored on the next node.  A :class:`~repro.errors.StorageFaultError`
while reading an *inner* shard retries once from that shard's mirror; a
fault on the shard task's *home* node re-runs the whole task in mirror
mode on the next node.  Either way the query completes — degraded, with
:attr:`failovers` counted — and only a **double fault** (a shard and its
replica both dead) propagates, as exactly one typed
:class:`~repro.errors.FuzzyQueryError` through
:func:`~repro.parallel.executor.gather_partitions`.
"""

from __future__ import annotations

import itertools
from contextlib import ExitStack
from typing import List, Optional, Tuple

from ..data.tuples import FuzzyTuple
from ..errors import DiskFullError, StorageFaultError
from ..fuzzy.compare import ComparisonKernel
from ..fuzzy.interval_order import sort_key
from ..join.merge_join import MergeJoin, WindowOverflowError
from ..join.predicates import PairDegree
from ..resilience import CancelToken, QueryGuard
from ..sort.external import ExternalSorter
from ..sort.runs import RunWriter
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .storage import ShardedStorage, ShardNode

Pair = Tuple[FuzzyTuple, FuzzyTuple, float]

#: Stats phase shard tasks charge their reach/slice work under.
SHARD_PHASE = "shard"

_slice_counter = itertools.count(1)


def sharded_sort(
    storage: ShardedStorage,
    name: str,
    attribute: str,
    buffer_pages: int,
    stats: OperationStats,
) -> List[Tuple[ShardNode, HeapFile]]:
    """Sort each primary slice shard-local; the splice *is* the global sort.

    Returns ``(node, sorted_heap)`` per non-empty shard in shard order —
    concatenating their tuple streams yields exactly the serial external
    sort's ``(b, e)`` order, because the shards are order-disjoint on
    ``b``.  The sorted scratch files are left on the node disks for the
    caller to read and delete.
    """
    out: List[Tuple[ShardNode, HeapFile]] = []
    for node in storage.nodes:
        primary = storage.primary(node.index, name)
        if primary is None or primary.n_tuples == 0:
            continue
        with node.disk.use_stats(stats):
            sorter = ExternalSorter(node.disk, buffer_pages, stats)
            out.append((node, sorter.sort(primary, attribute)))
    return out


class ShardedMergeJoin:
    """Coordinator for one scatter-gather merge-join over placed relations."""

    def __init__(
        self,
        storage: ShardedStorage,
        buffer_pages: int,
        stats: OperationStats,
        metrics=None,
        tracer=None,
        guard: Optional[QueryGuard] = None,
        cancel: Optional[CancelToken] = None,
        kernel: Optional[ComparisonKernel] = None,
    ):
        self.storage = storage
        self.buffer_pages = buffer_pages
        self.stats = stats
        self.metrics = metrics
        self.tracer = tracer
        self.guard = guard
        self.cancel = cancel
        self.kernel = kernel
        #: Why the last :meth:`run` declined (``None`` = it ran).
        self.fallback_reason: Optional[str] = None
        #: Replica failovers the last :meth:`run` performed (inner-shard
        #: reads re-routed to mirrors plus whole-task mirror-mode retries).
        self.failovers: int = 0

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def run(
        self,
        outer: HeapFile,
        outer_attr: str,
        inner: HeapFile,
        inner_attr: str,
        pair_degree: PairDegree,
    ) -> Optional[List[Pair]]:
        """All joining pairs in serial order, or ``None`` to degrade.

        Engages only when *both* heaps are placed base relations whose
        layout attribute equals the join attribute on that side, and at
        least two outer primary slices are non-empty; anything else
        (scratch heaps, predicate-filtered scans, a collapsed layout)
        hands the join back to the caller's serial path, which produces
        the identical answer.
        """
        self.fallback_reason = None
        self.failovers = 0
        outer_layout = self.storage.layout(outer.name)
        inner_layout = self.storage.layout(inner.name)
        if outer_layout is None or inner_layout is None:
            return self._fallback("join input is not a placed relation")
        if outer_layout.attribute != outer_attr or inner_layout.attribute != inner_attr:
            return self._fallback(
                "join attribute differs from the shard placement attribute"
            )
        live = [
            i for i in range(self.storage.n_shards)
            if self._slice_tuples(i, outer.name) > 0
        ]
        if len(live) < 2:
            return self._fallback("fewer than two non-empty outer shards")
        try:
            return self._run_sharded(
                live, outer.name, outer_attr, inner.name, inner_attr,
                inner_layout, pair_degree,
            )
        except DiskFullError:
            return self._fallback("shard-local spill hit DiskFullError")
        except WindowOverflowError:
            # A slice's merge window can need one more frame than the
            # serial window on the same data; never fail where serial
            # would succeed.
            return self._fallback("merge window exceeded the buffer in a shard")

    def _fallback(self, reason: str) -> Optional[List[Pair]]:
        self.fallback_reason = reason
        return None

    def _slice_tuples(self, shard: int, name: str) -> int:
        heap = self.storage.primary(shard, name)
        return 0 if heap is None else heap.n_tuples

    # ------------------------------------------------------------------
    # Scatter-gather
    # ------------------------------------------------------------------
    def _run_sharded(
        self,
        live: List[int],
        outer_name: str,
        outer_attr: str,
        inner_name: str,
        inner_attr: str,
        inner_layout,
        pair_degree: PairDegree,
    ) -> List[Pair]:
        from ..parallel.executor import gather_partitions

        deadline = self.guard.deadline if self.guard is not None else None
        clock = self.tracer.now if self.tracer is not None else None
        tag = next(_slice_counter)

        def make_task(i: int):
            def task(linked: CancelToken):
                started = clock() if clock is not None else 0.0
                try:
                    result = self._run_shard(
                        i, outer_name, outer_attr, inner_name, inner_attr,
                        inner_layout, pair_degree, tag, deadline, linked,
                        use_mirror=False,
                    )
                except StorageFaultError:
                    # The shard's home node died: re-run the whole task in
                    # mirror mode on the next node.  A second storage
                    # fault there — shard *and* replica dead — propagates.
                    result = self._run_shard(
                        i, outer_name, outer_attr, inner_name, inner_attr,
                        inner_layout, pair_degree, tag, deadline, linked,
                        use_mirror=True,
                    )
                    result.failovers += 1
                ended = clock() if clock is not None else 0.0
                return i, result, started, ended

            return task

        results = gather_partitions(
            [make_task(i) for i in live], len(live), self.cancel
        )
        results.sort(key=lambda item: item[0])

        out: List[Pair] = []
        specs = {spec[0]: spec for spec in self.storage.layout(outer_name).specs()}
        for i, result, started, ended in results:
            self.stats.merge(result.stats)
            self.storage.nodes[i].stats.merge(result.stats)
            self.failovers += result.failovers
            out.extend(result.pairs)
            if self.metrics is not None:
                from ..observe.metrics import PartitionMetrics

                outer_heap = self.storage.primary(i, outer_name)
                self.metrics.record_shard(PartitionMetrics(
                    index=i,
                    lower=specs[i][1],
                    upper=specs[i][2],
                    outer_tuples=outer_heap.n_tuples,
                    inner_tuples=result.slice_tuples,
                    outer_pages=outer_heap.n_pages,
                    inner_pages=result.slice_pages,
                    rows_out=len(result.pairs),
                    stats=result.stats,
                    failovers=result.failovers,
                ))
            if self.tracer is not None:
                self.tracer.record(
                    f"shard {i}", started, ended, rows=len(result.pairs)
                )
        if self.metrics is not None:
            self.metrics.shard_failovers += self.failovers
        return out

    def _run_shard(
        self,
        i: int,
        outer_name: str,
        outer_attr: str,
        inner_name: str,
        inner_attr: str,
        inner_layout,
        pair_degree: PairDegree,
        tag: int,
        deadline,
        linked: CancelToken,
        use_mirror: bool,
    ) -> "_ShardResult":
        """One shard task: reach band → inner slice → shard-local join.

        In mirror mode the home moves to the next node and the outer side
        reads the mirrored primary; inner-shard reads fail over to their
        mirrors individually either way.
        """
        storage = self.storage
        if use_mirror:
            home = storage.mirror_node(i)
            outer_heap = storage.mirror_primary(i, outer_name)
        else:
            home = storage.nodes[i]
            outer_heap = storage.primary(i, outer_name)
        worker_stats = OperationStats()
        worker_guard = QueryGuard(deadline=deadline, token=linked)
        failovers = 0
        with ExitStack() as stack:
            # Disk accounting and guards are thread-local *per disk*; a
            # shard task touches its home node plus every inner node it
            # slices from, so install on all of them.
            for node in storage.nodes:
                stack.enter_context(node.disk.use_stats(worker_stats))
                stack.enter_context(node.disk.use_guard(worker_guard))
            with worker_stats.enter_phase(SHARD_PHASE):
                low, high = self._reach_band(home, outer_heap, outer_attr, worker_stats)
                slice_name = f"__slice_{inner_name}_{tag}_{i}"
                slice_heap, read_failovers = self._build_slice(
                    home, slice_name, inner_name, inner_attr, inner_layout,
                    low, high, worker_stats,
                )
                failovers += read_failovers
            slice_shape = (slice_heap.n_tuples, slice_heap.n_pages)
            try:
                join = MergeJoin(
                    home.disk, self.buffer_pages, worker_stats, kernel=self.kernel
                )
                pairs = list(join.pairs(
                    outer_heap, outer_attr, slice_heap, inner_attr, pair_degree
                ))
            finally:
                home.disk.delete(slice_name)
        return _ShardResult(pairs, worker_stats, failovers, *slice_shape)

    def _reach_band(
        self, home: ShardNode, outer_heap: HeapFile, outer_attr: str,
        stats: OperationStats,
    ):
        """The ``(min b, max e)`` reach of the shard's outer primaries."""
        key_index = outer_heap.schema.index_of(outer_attr)
        low = high = None
        for page_index in range(outer_heap.n_pages):
            page = home.disk.read_page(outer_heap.name, page_index)
            for record in page.records():
                b, e = sort_key(outer_heap.serializer.decode(record)[key_index])
                stats.count_crisp(2)
                low = b if low is None or b < low else low
                high = e if high is None or e > high else high
        return low, high

    def _build_slice(
        self,
        home: ShardNode,
        slice_name: str,
        inner_name: str,
        inner_attr: str,
        inner_layout,
        low,
        high,
        stats: OperationStats,
    ) -> Tuple[HeapFile, int]:
        """Materialize the shard's inner slice from the durable placement.

        ``band(j_lo)`` plus the primaries of inner shards ``j_lo .. j_hi``,
        filtered by the reach band — see the module docstring for why this
        is exactly the serial slice.  Each source heap read fails over to
        its mirror on a :class:`~repro.errors.StorageFaultError`.
        """
        storage = self.storage
        last = storage.n_shards - 1
        j_lo = min(inner_layout.shard_of_b(low), last)
        j_hi = min(inner_layout.shard_of_b(high), last)
        sources = [
            (j_lo, storage.band(j_lo, inner_name), storage.mirror_band(j_lo, inner_name))
        ]
        for j in range(j_lo, j_hi + 1):
            sources.append(
                (j, storage.primary(j, inner_name), storage.mirror_primary(j, inner_name))
            )
        template = sources[0][1] or sources[0][2]
        writer = RunWriter(home.disk, slice_name, template.serializer)
        key_index = template.schema.index_of(inner_attr)
        failovers = 0
        count = 0
        ok = False
        try:
            for j, heap, mirror in sources:
                try:
                    tuples = self._read_slice_source(j, heap, stats)
                except StorageFaultError:
                    failovers += 1
                    tuples = self._read_slice_source(j, mirror, stats)
                for s in tuples:
                    b, e = sort_key(s[key_index])
                    stats.count_crisp()
                    if e >= low and b <= high:
                        stats.count_move()
                        writer.append(s)
                        count += 1
            writer.close()
            ok = True
        finally:
            if not ok:
                writer.discard()
                home.disk.delete(slice_name)
        slice_heap = HeapFile(
            slice_name, template.schema, home.disk, template.serializer.fixed_size
        )
        slice_heap.n_tuples = count
        return slice_heap, failovers

    def _read_slice_source(
        self, shard: int, heap: Optional[HeapFile], stats: OperationStats
    ) -> List[FuzzyTuple]:
        """Read one source heap of the slice off its node, fully."""
        if heap is None or heap.n_tuples == 0:
            return []
        out: List[FuzzyTuple] = []
        for page_index in range(heap.n_pages):
            page = heap.disk.read_page(heap.name, page_index)
            for record in page.records():
                out.append(heap.serializer.decode(record))
        return out


class _ShardResult:
    """What one shard task hands back to the coordinator."""

    def __init__(self, pairs, stats, failovers, slice_tuples, slice_pages):
        self.pairs = pairs
        self.stats = stats
        self.failovers = failovers
        self.slice_tuples = slice_tuples
        self.slice_pages = slice_pages
