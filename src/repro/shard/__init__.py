"""Sharded placement and scatter-gather execution over N simulated disks.

The package promotes PR 5's intra-query range partitioning to durable
*data placement*: :class:`ShardedStorage` spreads each placed relation
across independent disk nodes on ``b(v)`` range boundaries (with the
``Rng(r)`` overlap band replicated into adjacent shards and a factor-2
mirror on the next node), :class:`ShardCatalog` persists the layouts and
their tokens for plan-cache validation, and :class:`ShardedMergeJoin`
runs merge-joins shard-local and splices the per-shard pair lists in
shard order — bit-identical to the serial path, with replica failover
when a shard's disk dies.
"""

from .catalog import ShardCatalog, ShardLayout, select_boundaries
from .executor import ShardedMergeJoin, sharded_sort
from .storage import ShardedStorage, ShardNode

__all__ = [
    "ShardCatalog",
    "ShardLayout",
    "ShardNode",
    "ShardedMergeJoin",
    "ShardedStorage",
    "select_boundaries",
    "sharded_sort",
]
