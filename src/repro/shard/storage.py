"""Sharded placement: N independent disks, band replicas, factor-2 mirrors.

:class:`ShardedStorage` scatters each placed relation across ``n_shards``
independent :class:`~repro.storage.disk.SimulatedDisk` instances.  Node
``i`` carries four heap files per relation ``NAME``:

* ``NAME``            — the **primary** slice: tuples whose left endpoint
  ``b(v)`` falls in shard ``i``'s half-open range.
* ``NAME#band``       — the ``Rng(r)`` **overlap band**: replicas of
  tuples whose primary shard is *below* ``i`` but whose support ``[b, e]``
  crosses into shard ``i``'s range (``e >= lower_i``).  PR 5 replicated
  this band into per-query slice files; here it is part of the durable
  placement, so a shard-local merge-join never misses a boundary-crossing
  pair.
* ``NAME#mirror`` / ``NAME#mirrorband`` — a factor-2 **mirror** of node
  ``i-1``'s primary and band (indices mod N), giving every shard exactly
  one replica to fail over to when its home disk dies
  (:class:`~repro.errors.StorageFaultError`).  Primary and band are
  mirrored as separate files because outer-side failover must read the
  primaries *alone* — merging them would duplicate joining pairs.

Loading is charged to a scratch ledger (placement happens at
registration, like :meth:`StorageSession.register
<repro.session.StorageSession.register>`); every query-time page touch on
a node is charged to that node's cumulative :attr:`ShardNode.stats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..data.relation import FuzzyRelation
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .catalog import ShardCatalog, ShardLayout, select_boundaries
from ..fuzzy.interval_order import sort_key

#: Suffixes of the four per-relation files a node can carry.  None of
#: them start with ``__`` — placements are durable, not scratch, and the
#: chaos suite's leak check asserts exactly that.
BAND_SUFFIX = "#band"
MIRROR_SUFFIX = "#mirror"
MIRROR_BAND_SUFFIX = "#mirrorband"


class ShardNode:
    """One simulated disk plus its cumulative per-shard statistics."""

    def __init__(self, index: int, disk: SimulatedDisk):
        self.index = index
        self.disk = disk
        #: Cumulative query-time I/O and CPU charged to this shard across
        #: the session — the per-shard ``Statistics`` of the tentpole.
        self.stats = OperationStats()
        #: Heap handles by file name (primary, band, and mirror files).
        self.heaps: Dict[str, HeapFile] = {}

    def heap(self, name: str) -> Optional[HeapFile]:
        """The node's heap handle for ``name`` (``None`` if absent)."""
        return self.heaps.get(name)

    def __repr__(self) -> str:
        return f"ShardNode({self.index}, files={sorted(self.heaps)})"


class ShardedStorage:
    """Places relations across N disk nodes and owns their layouts."""

    def __init__(
        self,
        n_shards: int,
        page_size: int = 8 * 1024,
        fixed_tuple_size: Optional[int] = None,
        disks: Optional[List[SimulatedDisk]] = None,
    ):
        #: Pass ``disks`` to run specific nodes on caller-provided devices
        #: — e.g. one :class:`~repro.faults.FaultyDisk` for chaos testing.
        if disks is not None and len(disks) != n_shards:
            raise ValueError(
                f"expected {n_shards} disks, got {len(disks)}"
            )
        self.n_shards = max(2, n_shards)
        self.page_size = page_size
        self.fixed_tuple_size = fixed_tuple_size
        self.nodes = [
            ShardNode(i, disks[i] if disks is not None else SimulatedDisk(page_size=page_size))
            for i in range(self.n_shards)
        ]
        self.catalog = ShardCatalog()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place(
        self,
        name: str,
        relation: FuzzyRelation,
        attribute: str,
        boundaries: Optional[List] = None,
    ) -> ShardLayout:
        """(Re)place a relation across the nodes on ``attribute``.

        Boundaries default to the quantiles of *all* left endpoints
        (:func:`~repro.shard.catalog.select_boundaries`); pass an explicit
        list to pin the layout (the property tests drive adversarial
        cuts, :meth:`StorageSession.reshard
        <repro.session.StorageSession.reshard>` drives re-layouts).  Each
        tuple is written to its primary shard, replicated into every
        *adjacent* shard its support crosses into (the band), and both
        slices are mirrored onto the next node.  Load I/O is charged to a
        scratch ledger, like heap registration.
        """
        name = name.upper()
        key_index = relation.schema.index_of(attribute)
        tuples = list(relation.tuples())
        if boundaries is None:
            boundaries = select_boundaries(
                [sort_key(t[key_index])[0] for t in tuples], self.n_shards
            )
        layout = self.catalog.record(name, attribute, boundaries)

        primaries: List[List] = [[] for _ in range(self.n_shards)]
        bands: List[List] = [[] for _ in range(self.n_shards)]
        for t in tuples:
            first, last = layout.replica_range(t[key_index])
            first = min(first, self.n_shards - 1)
            last = min(last, self.n_shards - 1)
            primaries[first].append(t)
            for j in range(first + 1, last + 1):
                bands[j].append(t)

        scratch = OperationStats()
        for i, node in enumerate(self.nodes):
            mirror_of = self.nodes[(i + 1) % self.n_shards]
            with node.disk.use_stats(scratch), mirror_of.disk.use_stats(scratch):
                self._load(node, name, relation.schema, primaries[i])
                self._load(node, name + BAND_SUFFIX, relation.schema, bands[i])
                self._load(mirror_of, name + MIRROR_SUFFIX, relation.schema, primaries[i])
                self._load(
                    mirror_of, name + MIRROR_BAND_SUFFIX, relation.schema, bands[i]
                )
        return layout

    def _load(self, node: ShardNode, file_name: str, schema, tuples) -> HeapFile:
        node.disk.delete(file_name)
        heap = HeapFile(file_name, schema, node.disk, self.fixed_tuple_size)
        heap.load(tuples)
        node.heaps[file_name] = heap
        return heap

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def primary(self, shard: int, name: str) -> Optional[HeapFile]:
        """Shard ``shard``'s primary slice of ``name`` on its home node."""
        return self.nodes[shard].heap(name.upper())

    def band(self, shard: int, name: str) -> Optional[HeapFile]:
        """Shard ``shard``'s overlap-band slice on its home node."""
        return self.nodes[shard].heap(name.upper() + BAND_SUFFIX)

    def mirror_node(self, shard: int) -> ShardNode:
        """The node carrying shard ``shard``'s mirror (the next node)."""
        return self.nodes[(shard + 1) % self.n_shards]

    def mirror_primary(self, shard: int, name: str) -> Optional[HeapFile]:
        """The mirror of shard ``shard``'s primary slice, on the next node."""
        return self.mirror_node(shard).heap(name.upper() + MIRROR_SUFFIX)

    def mirror_band(self, shard: int, name: str) -> Optional[HeapFile]:
        """The mirror of shard ``shard``'s band slice, on the next node."""
        return self.mirror_node(shard).heap(name.upper() + MIRROR_BAND_SUFFIX)

    def layout(self, name: str) -> Optional[ShardLayout]:
        """The persisted layout of ``name`` (``None`` if never placed)."""
        return self.catalog.get(name)
