"""Block nested-loop join — the baseline every nested query is stuck with.

Following Section 9's setup: "one buffer page is allocated to the inner
relation and the rest to the outer relation in order to minimize I/O cost".
With ``M`` buffer pages, R is consumed in blocks of ``M - 1`` pages and S is
scanned once per block, giving the paper's
``b_R + ceil(b_R / (M-1)) * b_S`` page transfers and ``n_R * n_S`` fuzzy
predicate evaluations.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Tuple, TypeVar

from ..data.tuples import FuzzyTuple
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .predicates import PairDegree

NL_PHASE = "nested-loop"

State = TypeVar("State")


class NestedLoopJoin:
    """Block nested-loop join between two heap files."""

    def __init__(self, disk: SimulatedDisk, buffer_pages: int, stats: OperationStats):
        if buffer_pages < 2:
            raise ValueError("block nested loop needs at least 2 buffer pages")
        self.disk = disk
        self.buffer_pages = buffer_pages
        self.stats = stats

    # ------------------------------------------------------------------
    # High-level API
    # ------------------------------------------------------------------
    def pairs(
        self, outer: HeapFile, inner: HeapFile, pair_degree: PairDegree
    ) -> Iterator[Tuple[FuzzyTuple, FuzzyTuple, float]]:
        """All joining pairs ``(r, s, degree)`` with positive degree."""
        def init(_r: FuzzyTuple):
            return []

        def step(matches, s: FuzzyTuple, degree: float):
            if degree > 0.0:
                matches.append((s, degree))
            return matches

        for r, matches in self.fold(outer, inner, pair_degree, init, step):
            for s, degree in matches:
                yield r, s, degree

    def fold(
        self,
        outer: HeapFile,
        inner: HeapFile,
        pair_degree: PairDegree,
        init: Callable[[FuzzyTuple], State],
        step: Callable[[State, FuzzyTuple, float], State],
    ) -> Iterator[Tuple[FuzzyTuple, State]]:
        """Per-R-tuple fold over *every* S-tuple.

        Unlike the merge-join, the nested loop examines all ``n_R * n_S``
        pairs, so ``init`` needs no out-of-range allowance.
        """
        with self.disk.use_stats(self.stats), self.stats.enter_phase(NL_PHASE):
            block_frames = self.buffer_pages - 1
            for block_start in range(0, outer.n_pages, block_frames):
                block_end = min(block_start + block_frames, outer.n_pages)
                block: List[FuzzyTuple] = []
                for page_index in range(block_start, block_end):
                    page = self.disk.read_page(outer.name, page_index)
                    block.extend(outer.serializer.decode(rec) for rec in page.records())
                states = [init(r) for r in block]
                for s_page in range(inner.n_pages):
                    page = self.disk.read_page(inner.name, s_page)
                    for record in page.records():
                        s = inner.serializer.decode(record)
                        for i, r in enumerate(block):
                            states[i] = step(states[i], s, pair_degree(r, s, self.stats))
                for r, state in zip(block, states):
                    yield r, state

    # ------------------------------------------------------------------
    # Analytical cost (for cross-checking measured I/O)
    # ------------------------------------------------------------------
    def expected_page_ios(self, outer: HeapFile, inner: HeapFile) -> int:
        """Analytic page I/O: outer read once, inner re-read once per outer block."""
        blocks = math.ceil(outer.n_pages / (self.buffer_pages - 1)) if outer.n_pages else 0
        return outer.n_pages + blocks * inner.n_pages
