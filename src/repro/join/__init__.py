"""Fuzzy join algorithms: extended merge-join and block nested loop."""

from .merge_join import JOIN_PHASE, MergeJoin, WindowOverflowError
from .nested_loop import NL_PHASE, NestedLoopJoin
from .outer import left_outer_probe
from .predicates import (
    JoinPredicate,
    all_quantifier_degree,
    antijoin_degree,
    join_degree,
)

__all__ = [
    "MergeJoin",
    "WindowOverflowError",
    "JOIN_PHASE",
    "NestedLoopJoin",
    "NL_PHASE",
    "left_outer_probe",
    "JoinPredicate",
    "join_degree",
    "antijoin_degree",
    "all_quantifier_degree",
]
