"""Left outer join with an IF-THEN-ELSE degree (Query COUNT' of Section 6).

The COUNT unnesting preserves every R-tuple: when ``r`` joins a ``T2``
group tuple ``(u, A'(u))`` the THEN-branch degree applies, otherwise the
ELSE-branch degree (``d(r.Y op 0)``) does.  Since the probe side (``T2``)
is keyed by *binary* value identity, the probe is a hash lookup, which the
paper's "d(r.U = u) is binary, and there can be at most one tuple in T2"
observation licenses even in a fuzzy database.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, Optional, Tuple, TypeVar

from ..data.tuples import FuzzyTuple
from ..storage.stats import OperationStats

Probe = TypeVar("Probe")


def left_outer_probe(
    outer_tuples: Iterator[FuzzyTuple],
    probe_key: Callable[[FuzzyTuple], Hashable],
    lookup: Dict[Hashable, Probe],
    then_degree: Callable[[FuzzyTuple, Probe], float],
    else_degree: Callable[[FuzzyTuple], float],
    stats: Optional[OperationStats] = None,
) -> Iterator[Tuple[FuzzyTuple, float]]:
    """Yield ``(r, degree)`` for every outer tuple, matched or not."""
    for r in outer_tuples:
        if stats is not None:
            stats.count_crisp()  # the binary identity probe
        match = lookup.get(probe_key(r))
        if match is not None:
            yield r, then_degree(r, match)
        else:
            yield r, else_degree(r)
