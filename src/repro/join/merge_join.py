"""The extended merge-join of Section 3.

Both relations are sorted on the join attribute by the interval order
``(b(v), e(v))``; the join phase then walks R one page at a time while
sweeping a *window* of S-tuples.  For the current R-tuple ``r``:

* S-tuples at the window front with ``e(s.X) < b(r.X)`` are retired for
  good — R is sorted by ``b``, so no later R-tuple can reach back to them;
* the window extends rightward while ``b(s.X) <= e(r.X)``; the first
  S-tuple beginning after ``e(r.X)`` stops the scan for ``r`` (it stays in
  the window for later R-tuples);
* every window tuple scanned in between is *examined* (one fuzzy predicate
  evaluation), including the "dangling" ones whose supports don't actually
  intersect ``r.X`` — the inefficiency the paper discusses for very wide
  intervals.

Each page of S is read exactly once during the join phase, provided the
buffer can hold one R page plus the pages spanned by the largest window;
a wider window raises :class:`WindowOverflowError` (the paper assumes the
buffer is large enough to hold the largest ``Rng(r)``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Tuple, TypeVar

from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import ComparisonKernel, Op
from ..fuzzy.interval_order import sort_key
from ..sort.external import ExternalSorter
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.stats import OperationStats
from .predicates import PairDegree

JOIN_PHASE = "join"

State = TypeVar("State")


class WindowOverflowError(Exception):
    """The S window outgrew the buffer budget (largest Rng(r) too wide)."""


class _WindowEntry:
    __slots__ = ("tuple", "b", "e", "page")

    def __init__(self, t: FuzzyTuple, key, page: int):
        self.tuple = t
        self.b, self.e = key
        self.page = page


class MergeJoin:
    """Extended merge-join between two heap files.

    ``buffer_pages`` bounds the pages held during the join phase (1 for the
    current R page + the S window).  The same budget is given to the sort
    phase, mirroring the paper's shared 2 MB buffer.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        buffer_pages: int,
        stats: OperationStats,
        indicator: bool = False,
        metrics=None,
        tracer=None,
        kernel: "ComparisonKernel" = None,
    ):
        """``indicator=True`` enables the equality-indicator optimization
        in the spirit of Zhang & Wang (TKDE 2000), which the paper cites as
        "a further optimization of the merge-join": window tuples whose
        support interval provably cannot intersect the current R-tuple's
        (the "dangling" tuples) are rejected with a cheap crisp interval
        test instead of a full fuzzy-library evaluation.  This is safe for
        every fold in this codebase because a dangling pair's degree is
        the fold's neutral element (0 for joins, ``mu_R(r)`` for the
        grouped anti-joins).

        ``kernel`` attaches a :class:`~repro.fuzzy.compare.ComparisonKernel`:
        each window scan primes the kernel's memo with one *batched*
        equality evaluation of the probe value against the resident block,
        so a pair degree built over the same kernel hits the memo instead
        of recomputing.  Counters are unaffected (the kernel charges
        nothing; predicate evaluation keeps its own accounting), so
        kernel-on and kernel-off runs are bit-identical in both answers
        and EXPLAIN ANALYZE output."""
        self.disk = disk
        self.buffer_pages = buffer_pages
        self.stats = stats
        self.indicator = indicator
        self.metrics = metrics
        self.tracer = tracer
        self.kernel = kernel

    # ------------------------------------------------------------------
    # High-level API
    # ------------------------------------------------------------------
    def pairs(
        self,
        outer: HeapFile,
        outer_attr: str,
        inner: HeapFile,
        inner_attr: str,
        pair_degree: PairDegree,
    ) -> Iterator[Tuple[FuzzyTuple, FuzzyTuple, float]]:
        """All joining pairs ``(r, s, degree)`` with positive degree."""
        def init(_r: FuzzyTuple):
            return []

        def step(matches, s: FuzzyTuple, degree: float):
            if degree > 0.0:
                matches.append((s, degree))
            return matches

        for r, matches in self.fold(outer, outer_attr, inner, inner_attr, pair_degree, init, step):
            for s, degree in matches:
                yield r, s, degree

    def fold(
        self,
        outer: HeapFile,
        outer_attr: str,
        inner: HeapFile,
        inner_attr: str,
        pair_degree: PairDegree,
        init: Callable[[FuzzyTuple], State],
        step: Callable[[State, FuzzyTuple, float], State],
    ) -> Iterator[Tuple[FuzzyTuple, State]]:
        """Per-R-tuple fold over the examined S-window.

        ``init(r)`` seeds the accumulator (it must already account for the
        S-tuples *outside* ``Rng(r)``, whose predicates are unsatisfiable);
        ``step`` is invoked once per examined pair with its degree.  Yields
        ``(r, final_state)`` in R's sorted order.
        """
        from ..observe.trace import maybe_span

        with self.disk.use_stats(self.stats):
            sorter = ExternalSorter(
                self.disk, self.buffer_pages, self.stats,
                metrics=self.metrics, tracer=self.tracer,
            )
            sorted_r = sorted_s = None
            # The sorted temporaries are deleted in a finally so a fault
            # during the sort or join phase (or an abandoned generator)
            # cannot strand them on the shared disk.
            try:
                sorted_r = sorter.sort(outer, outer_attr)
                sorted_s = sorter.sort(inner, inner_attr)
                with self.stats.enter_phase(JOIN_PHASE), maybe_span(
                    self.tracer, f"probe {outer.name} x {inner.name}"
                ):
                    yield from self._join_phase(
                        sorted_r, outer_attr, sorted_s, inner_attr, pair_degree, init, step
                    )
            finally:
                if sorted_r is not None:
                    self.disk.delete(sorted_r.name)
                if sorted_s is not None:
                    self.disk.delete(sorted_s.name)

    # ------------------------------------------------------------------
    # Join phase
    # ------------------------------------------------------------------
    def _join_phase(
        self,
        sorted_r: HeapFile,
        outer_attr: str,
        sorted_s: HeapFile,
        inner_attr: str,
        pair_degree: PairDegree,
        init: Callable[[FuzzyTuple], State],
        step: Callable[[State, FuzzyTuple, float], State],
    ) -> Iterator[Tuple[FuzzyTuple, State]]:
        r_index = sorted_r.schema.index_of(outer_attr)
        s_index = sorted_s.schema.index_of(inner_attr)
        window: "deque[_WindowEntry]" = deque()
        window_pages = 0  # distinct S pages currently spanned by the window
        s_stream = self._s_tuples(sorted_s, s_index)
        exhausted = False

        for r_page in range(sorted_r.n_pages):
            page = self.disk.read_page(sorted_r.name, r_page)
            for record in page.records():
                r = sorted_r.serializer.decode(record)
                rb, re_ = sort_key(r[r_index])

                # Retire S-tuples that precede every remaining R-tuple.
                while window:
                    self.stats.count_crisp()
                    if window[0].e < rb:
                        retired = window.popleft()
                        if not window or window[0].page != retired.page:
                            window_pages = max(0, window_pages - 1)
                    else:
                        break

                state = init(r)

                # Examine resident window tuples beginning at or before e(r.X).
                scan_done = False
                if self.kernel is not None:
                    # Batched path: collect the resident block first (same
                    # crisp accounting as the per-entry scan), evaluate the
                    # probe against the whole block in one kernel call to
                    # prime the memo, then fold — the pair degree's own
                    # evaluations resolve to memo hits.
                    block = []
                    for entry in window:
                        self.stats.count_crisp()
                        if entry.b > re_:
                            scan_done = True
                            break
                        if self.indicator and entry.e < rb:
                            self.stats.count_crisp()  # the indicator test
                            continue  # dangling: provably non-intersecting
                        block.append(entry)
                    if block:
                        self.kernel.batch(
                            r[r_index], Op.EQ, [e.tuple[s_index] for e in block]
                        )
                    for entry in block:
                        state = step(
                            state, entry.tuple, pair_degree(r, entry.tuple, self.stats)
                        )
                else:
                    for entry in window:
                        self.stats.count_crisp()
                        if entry.b > re_:
                            scan_done = True
                            break
                        if self.indicator and entry.e < rb:
                            self.stats.count_crisp()  # the indicator test
                            continue  # dangling: provably non-intersecting
                        state = step(state, entry.tuple, pair_degree(r, entry.tuple, self.stats))

                # Extend the window from the S stream until past e(r.X).
                while not scan_done and not exhausted:
                    entry = next(s_stream, None)
                    if entry is None:
                        exhausted = True
                        break
                    if not window or window[-1].page != entry.page:
                        window_pages += 1
                        self._check_window(window_pages)
                    window.append(entry)
                    self.stats.count_crisp()
                    if entry.b > re_:
                        scan_done = True
                        break
                    if self.indicator and entry.e < rb:
                        self.stats.count_crisp()  # the indicator test
                        continue
                    state = step(state, entry.tuple, pair_degree(r, entry.tuple, self.stats))

                yield r, state

    def _s_tuples(self, sorted_s: HeapFile, s_index: int) -> Iterator[_WindowEntry]:
        for page_index in range(sorted_s.n_pages):
            page = self.disk.read_page(sorted_s.name, page_index)
            for record in page.records():
                t = sorted_s.serializer.decode(record)
                yield _WindowEntry(t, sort_key(t[s_index]), page_index)

    def _check_window(self, window_pages: int) -> None:
        # One frame is reserved for the current R page.
        if window_pages > self.buffer_pages - 1:
            raise WindowOverflowError(
                f"S window spans {window_pages} pages but only "
                f"{self.buffer_pages - 1} frames are available; "
                "the largest Rng(r) exceeds the buffer (see Section 3)"
            )
