"""Join predicate evaluation and degree composition.

Every pair degree the unnesting rewrites need is a composition of
``min``/``1-x`` over predicate satisfaction degrees:

* plain join (Queries N', J'):   ``min(mu_R(r), mu_S(s), d(p1..pk))``
* anti join (Query JX'):          ``min(mu_R(r), 1 - min(mu_S(s), d(p1..pk)))``
* ALL-quantifier join (JALL'):    ``min(mu_R(r), 1 - min(mu_S(s), d(join), 1 - d(compare)))``

Each evaluated predicate charges one fuzzy evaluation to the stats object;
conjunctions short-circuit on 0 exactly like a real evaluator would.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..data.schema import Schema
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import ComparisonKernel, Op, possibility
from ..storage.stats import OperationStats


class JoinPredicate:
    """``R.attr op S.attr`` with positions resolved against both schemas."""

    __slots__ = ("left_attr", "op", "right_attr", "left_index", "right_index", "similarity")

    def __init__(
        self,
        left_schema: Schema,
        left_attr: str,
        op: Op,
        right_schema: Schema,
        right_attr: str,
        similarity=None,
    ):
        self.left_attr = left_attr
        self.op = op
        self.right_attr = right_attr
        self.left_index = left_schema.index_of(left_attr)
        self.right_index = right_schema.index_of(right_attr)
        self.similarity = similarity
        if op is Op.SIMILAR and similarity is None:
            raise ValueError("a SIMILAR predicate needs a similarity relation")

    def degree(
        self,
        r: FuzzyTuple,
        s: FuzzyTuple,
        stats: Optional[OperationStats] = None,
        kernel: Optional[ComparisonKernel] = None,
    ) -> float:
        """Fuzzy degree of the predicate on ``(r, s)``, counting one fuzzy evaluation.

        ``kernel`` routes the possibility computation through a memoizing
        :class:`~repro.fuzzy.compare.ComparisonKernel`; the fuzzy-evaluation
        counter is charged either way so accounting stays kernel-agnostic.
        """
        if stats is not None:
            stats.count_fuzzy()
        left = r[self.left_index]
        right = s[self.right_index]
        if self.op is Op.SIMILAR:
            return self.similarity.degree(left, right)
        if kernel is not None:
            return kernel.possibility(left, self.op, right)
        return possibility(left, self.op, right)

    def __repr__(self) -> str:
        return f"JoinPredicate(R.{self.left_attr} {self.op.value} S.{self.right_attr})"


PairDegree = Callable[[FuzzyTuple, FuzzyTuple, Optional[OperationStats]], float]


def join_degree(
    predicates: Sequence[JoinPredicate], kernel: Optional[ComparisonKernel] = None
) -> PairDegree:
    """``min(mu_R(r), mu_S(s), d(p1), ..., d(pk))`` with short-circuiting."""

    def degree(r: FuzzyTuple, s: FuzzyTuple, stats: Optional[OperationStats] = None) -> float:
        d = min(r.degree, s.degree)
        for p in predicates:
            if d == 0.0:
                return 0.0
            d = min(d, p.degree(r, s, stats, kernel))
        return d

    return degree


def antijoin_degree(
    predicates: Sequence[JoinPredicate], kernel: Optional[ComparisonKernel] = None
) -> PairDegree:
    """Query JX' pair degree: ``min(mu_R(r), 1 - min(mu_S(s), d(p1..pk)))``.

    The group aggregate over all S-tuples is MIN; pairs whose predicates
    are unsatisfiable contribute the neutral-maximal value ``mu_R(r)``.
    """

    def degree(r: FuzzyTuple, s: FuzzyTuple, stats: Optional[OperationStats] = None) -> float:
        inner = s.degree
        for p in predicates:
            if inner == 0.0:
                break
            inner = min(inner, p.degree(r, s, stats, kernel))
        return min(r.degree, 1.0 - inner)

    return degree


def all_quantifier_degree(
    join_predicates: Sequence[JoinPredicate],
    compare: JoinPredicate,
    kernel: Optional[ComparisonKernel] = None,
) -> PairDegree:
    """Query JALL' pair degree.

    ``min(mu_R(r), 1 - min(mu_S(s), d(join preds), 1 - d(r.Y op s.Z)))`` —
    the doubly negated form of Section 7, grouped by MIN over S.
    """

    def degree(r: FuzzyTuple, s: FuzzyTuple, stats: Optional[OperationStats] = None) -> float:
        inner = s.degree
        for p in join_predicates:
            if inner == 0.0:
                break
            inner = min(inner, p.degree(r, s, stats, kernel))
        if inner > 0.0:
            inner = min(inner, 1.0 - compare.degree(r, s, stats, kernel))
        return min(r.degree, 1.0 - inner)

    return degree
