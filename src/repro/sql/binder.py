"""Name resolution for Fuzzy SQL queries.

The binder resolves column references against the FROM clauses of the
current block and its enclosing blocks (for correlation predicates), and
resolves quoted literals against the vocabulary in the domain of the
attribute they are compared with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..data.catalog import Catalog
from ..data.schema import Schema
from ..fuzzy.distribution import Distribution
from ..fuzzy.linguistic import lift
from .ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    ExistsPredicate,
    IdentityComparison,
    InPredicate,
    Literal,
    NegatedConjunction,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
)
from .errors import BindError


@dataclass(frozen=True)
class Resolution:
    """Where a column reference points.

    ``level`` is 0 for the current block, 1 for the immediately enclosing
    block, etc.; ``binding`` is the table alias; ``index`` the attribute
    position in the table's schema.
    """

    level: int
    binding: str
    index: int
    attribute: str
    domain: Optional[str]


class Scope:
    """The visible bindings of one block, chained to enclosing scopes."""

    def __init__(self, bindings: List[Tuple[str, Schema]], parent: Optional["Scope"] = None):
        self.bindings = bindings
        self.parent = parent
        self._by_name = {name: schema for name, schema in bindings}
        if len(self._by_name) != len(bindings):
            raise BindError("duplicate table bindings in FROM clause")

    @classmethod
    def for_query(cls, query: SelectQuery, catalog: Catalog, parent: Optional["Scope"] = None) -> "Scope":
        """The scope of ``query``'s FROM list, chained to ``parent`` for correlation."""
        bindings = []
        for table in query.from_tables:
            relation = catalog.get(table.name)
            bindings.append((table.binding, relation.schema))
        return cls(bindings, parent)

    def resolve(self, ref: ColumnRef) -> Resolution:
        """Resolve a column reference, searching outward through scopes."""
        level = 0
        scope: Optional[Scope] = self
        while scope is not None:
            hit = scope._resolve_local(ref)
            if hit is not None:
                binding, schema, index = hit
                attr = schema.attributes[index]
                return Resolution(level, binding, index, attr.name, attr.domain)
            scope = scope.parent
            level += 1
        raise BindError(f"cannot resolve column {ref}")

    def _resolve_local(self, ref: ColumnRef):
        if ref.relation is not None:
            schema = self._by_name.get(ref.relation)
            if schema is None or ref.attribute not in schema:
                return None
            return ref.relation, schema, schema.index_of(ref.attribute)
        candidates = [
            (name, schema, schema.index_of(ref.attribute))
            for name, schema in self.bindings
            if ref.attribute in schema
        ]
        if len(candidates) > 1:
            raise BindError(f"ambiguous column {ref.attribute!r}")
        return candidates[0] if candidates else None

    def is_local(self, ref: ColumnRef) -> bool:
        """True when the reference resolves in this block (not correlated)."""
        return self._resolve_local(ref) is not None


def resolve_literal(
    literal: Literal, catalog: Catalog, domain: Optional[str]
) -> Distribution:
    """Turn a literal into a distribution, via the vocabulary for strings."""
    return lift(literal.value, catalog.vocabulary, domain)


def expand_select_stars(query: SelectQuery, catalog: Catalog) -> SelectQuery:
    """Replace ``*`` / ``R.*`` select items with explicit qualified columns."""
    from .ast import Star

    if not any(isinstance(item, Star) for item in query.select):
        return query
    items = []
    for item in query.select:
        if not isinstance(item, Star):
            items.append(item)
            continue
        matched = False
        for table in query.from_tables:
            if item.relation is None or item.relation == table.binding:
                matched = True
                schema = catalog.get(table.name).schema
                items.extend(ColumnRef(table.binding, a.name) for a in schema)
        if not matched:
            raise BindError(f"no table {item.relation!r} for {item}")
    return SelectQuery(
        select=tuple(items),
        from_tables=query.from_tables,
        where=query.where,
        with_threshold=query.with_threshold,
        group_by=query.group_by,
        distinct=query.distinct,
        having=query.having,
    )


def validate(query: SelectQuery, catalog: Catalog, parent: Optional[Scope] = None) -> None:
    """Fully bind a query tree, raising :class:`BindError` on any problem."""
    query = expand_select_stars(query, catalog)
    scope = Scope.for_query(query, catalog, parent)
    for item in query.select:
        if isinstance(item, AggregateExpr):
            if item.argument.attribute != "D":
                scope.resolve(item.argument)
        else:
            scope.resolve(item)
    for col in query.group_by:
        scope.resolve(col)
    for predicate in query.where:
        _validate_predicate(predicate, scope, catalog)
    for predicate in query.having:
        for side in (predicate.left, predicate.right):
            if isinstance(side, AggregateExpr):
                if side.argument.attribute != "D":
                    scope.resolve(side.argument)
            elif isinstance(side, ColumnRef):
                scope.resolve(side)


def _validate_predicate(predicate, scope: Scope, catalog: Catalog) -> None:
    if isinstance(predicate, Comparison):
        for side in (predicate.left, predicate.right):
            if isinstance(side, ColumnRef):
                scope.resolve(side)
    elif isinstance(predicate, (InPredicate, QuantifiedComparison, ScalarSubqueryComparison)):
        scope.resolve(predicate.column)
        validate(predicate.query, catalog, scope)
    elif isinstance(predicate, ExistsPredicate):
        validate(predicate.query, catalog, scope)
    elif isinstance(predicate, NegatedConjunction):
        for inner in predicate.predicates:
            _validate_predicate(inner, scope, catalog)
    elif isinstance(predicate, IdentityComparison):
        scope.resolve(predicate.left)
        scope.resolve(predicate.right)
    elif isinstance(predicate, DegreePredicate):
        pass
    else:
        raise BindError(f"unsupported predicate {predicate!r}")


def references_outer(query: SelectQuery, catalog: Catalog, parent: Scope) -> bool:
    """True when ``query`` (as a subquery under ``parent``) is correlated."""
    scope = Scope.for_query(query, catalog, parent)

    def column_is_outer(ref: ColumnRef) -> bool:
        return scope.resolve(ref).level > 0

    def predicate_refs(predicate) -> bool:
        if isinstance(predicate, Comparison):
            return any(
                isinstance(side, ColumnRef) and column_is_outer(side)
                for side in (predicate.left, predicate.right)
            )
        if isinstance(predicate, (InPredicate, QuantifiedComparison, ScalarSubqueryComparison)):
            if column_is_outer(predicate.column):
                return True
            return references_outer(predicate.query, catalog, scope)
        if isinstance(predicate, ExistsPredicate):
            return references_outer(predicate.query, catalog, scope)
        if isinstance(predicate, NegatedConjunction):
            return any(predicate_refs(p) for p in predicate.predicates)
        return False

    return any(predicate_refs(p) for p in query.where)
