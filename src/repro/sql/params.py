"""Placeholder bookkeeping for prepared statements.

A prepared query is parsed (and classified, rewritten, compiled) once
with ``?`` placeholders left as :class:`~repro.sql.ast.Parameter` nodes;
each execution then substitutes the bound values back into the AST with
:func:`bind_parameters` — a cheap structural copy, nowhere near the cost
of a re-parse or re-rewrite.  Substitution is purely syntactic, which is
exactly why it is safe to do *after* the unnesting rewrite: the paper's
theorems transform query structure and never look at literal values.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence, Set, Union

from .ast import (
    Comparison,
    ExistsPredicate,
    InPredicate,
    Literal,
    NegatedConjunction,
    Parameter,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
)
from .errors import BindError


class ParameterError(BindError):
    """A placeholder count/value mismatch at bind time."""


def count_parameters(query: SelectQuery) -> int:
    """The number of distinct ``?`` placeholders in ``query``."""
    return len(collect_parameters(query))


def collect_parameters(query: SelectQuery) -> List[Parameter]:
    """Every :class:`Parameter` in ``query``, de-duplicated, by index."""
    found = {}

    def visit_term(term) -> None:
        if isinstance(term, Parameter):
            found[term.index] = term

    def visit_predicate(predicate) -> None:
        if isinstance(predicate, Comparison):
            visit_term(predicate.left)
            visit_term(predicate.right)
        elif isinstance(predicate, (InPredicate, QuantifiedComparison,
                                    ScalarSubqueryComparison, ExistsPredicate)):
            visit_query(predicate.query)
        elif isinstance(predicate, NegatedConjunction):
            for p in predicate.predicates:
                visit_predicate(p)

    def visit_query(q: SelectQuery) -> None:
        for predicate in q.where:
            visit_predicate(predicate)
        for predicate in q.having:
            visit_predicate(predicate)
        visit_term(q.with_threshold)

    visit_query(query)
    return [found[i] for i in sorted(found)]


def bind_parameters(query: SelectQuery, values: Sequence) -> SelectQuery:
    """Substitute ``values`` for the ``?`` placeholders of ``query``.

    ``values[i]`` replaces ``Parameter(i)``.  Values become
    :class:`Literal` terms (numbers or linguistic-term strings), except in
    the ``WITH D >= ?`` position where the raw float is kept.  Raises
    :class:`ParameterError` when a placeholder index has no value — the
    caller passed too few parameters.
    """

    def bind_term(term):
        if not isinstance(term, Parameter):
            return term
        if term.index >= len(values):
            raise ParameterError(
                f"query needs {term.index + 1} parameter(s) "
                f"but only {len(values)} given"
            )
        return Literal(values[term.index])

    def bind_predicate(predicate):
        if isinstance(predicate, Comparison):
            left, right = bind_term(predicate.left), bind_term(predicate.right)
            if left is predicate.left and right is predicate.right:
                return predicate
            return replace(predicate, left=left, right=right)
        if isinstance(predicate, (InPredicate, QuantifiedComparison,
                                  ScalarSubqueryComparison, ExistsPredicate)):
            inner = bind_query(predicate.query)
            if inner is predicate.query:
                return predicate
            return replace(predicate, query=inner)
        if isinstance(predicate, NegatedConjunction):
            bound = tuple(bind_predicate(p) for p in predicate.predicates)
            if all(b is p for b, p in zip(bound, predicate.predicates)):
                return predicate
            return NegatedConjunction(bound)
        return predicate

    def bind_query(q: SelectQuery) -> SelectQuery:
        where = tuple(bind_predicate(p) for p in q.where)
        having = tuple(bind_predicate(p) for p in q.having)
        threshold = q.with_threshold
        if isinstance(threshold, Parameter):
            bound = bind_term(threshold)
            threshold = float(bound.value)
        if (
            all(b is p for b, p in zip(where, q.where))
            and all(b is p for b, p in zip(having, q.having))
            and threshold is q.with_threshold
        ):
            return q
        return replace(q, where=where, having=having, with_threshold=threshold)

    return bind_query(query)


def referenced_tables(query: SelectQuery) -> Set[str]:
    """Upper-cased names of every relation the query (or a subquery) reads.

    The plan cache keys validity on these: a cached plan is stale as soon
    as the statistics version of any referenced relation moves.
    """
    names: Set[str] = set()

    def visit_predicate(predicate) -> None:
        if isinstance(predicate, (InPredicate, QuantifiedComparison,
                                  ScalarSubqueryComparison, ExistsPredicate)):
            visit_query(predicate.query)
        elif isinstance(predicate, NegatedConjunction):
            for p in predicate.predicates:
                visit_predicate(p)

    def visit_query(q: SelectQuery) -> None:
        for table in q.from_tables:
            names.add(table.name.upper())
        for predicate in q.where:
            visit_predicate(predicate)
        for predicate in q.having:
            visit_predicate(predicate)

    visit_query(query)
    return names


Bindable = Union[SelectQuery]
