"""Abstract syntax of the Fuzzy SQL subset used in the paper.

The supported fragment follows Sections 2-8: SELECT blocks whose WHERE
clause is a conjunction of predicates ``X theta Y`` (with fuzzy
satisfaction degrees), optional ``WITH D >= z`` thresholds, nesting via
``[IS] [NOT] IN``, quantified comparisons (``op ALL/SOME/ANY``), scalar
aggregate subqueries (``R.Y op (SELECT AGG(S.Z) ...)``), EXISTS, and
GROUPBY with aggregate select items (needed to *express* the unnested
forms JX', JA', JALL').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..fuzzy.compare import Op


# ----------------------------------------------------------------------
# Terms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnRef:
    """``R.X`` or a bare ``X`` (resolved by the binder)."""

    relation: Optional[str]
    attribute: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute}" if self.relation else self.attribute


@dataclass(frozen=True)
class Literal:
    """A number, a quoted linguistic term, or a plain label."""

    value: Union[int, float, str]

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Parameter:
    """A ``?`` placeholder, bound to a literal value per execution.

    Placeholders are the raw material of prepared statements
    (:mod:`repro.service.prepared`): the parser numbers them left to
    right in text order, and
    :func:`repro.sql.params.bind_parameters` substitutes the bound
    values back in as :class:`Literal` terms.  A query containing an
    unbound :class:`Parameter` cannot be evaluated — every execution
    path resolves terms through :class:`Literal`/:class:`ColumnRef`
    only, so a forgotten binding fails loudly rather than silently.
    """

    index: int

    def __str__(self) -> str:
        return "?"


Term = Union[ColumnRef, Literal, Parameter]


@dataclass(frozen=True)
class Star:
    """``*`` or ``R.*`` in a SELECT list; expanded during binding."""

    relation: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.relation}.*" if self.relation else "*"


@dataclass(frozen=True)
class AggregateExpr:
    """``AGG(S.Z)`` — one of COUNT, SUM, AVG, MIN, MAX."""

    func: str
    argument: ColumnRef

    def __str__(self) -> str:
        return f"{self.func}({self.argument})"


@dataclass(frozen=True)
class DegreeRef:
    """``R.D`` — an explicit reference to a membership-degree attribute.

    Used by the unnested forms of Sections 5 and 7, where the degree itself
    acts as a predicate ("a membership degree attribute can be used by
    itself as a predicate").
    """

    relation: Optional[str]

    def __str__(self) -> str:
        return f"{self.relation}.D" if self.relation else "D"


# ----------------------------------------------------------------------
# Predicates (the WHERE clause is a conjunction of these)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Comparison:
    """``X theta Y`` between columns/literals (fuzzy satisfaction degree)."""

    left: Term
    op: Op
    right: Term

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


@dataclass(frozen=True)
class InPredicate:
    """``R.Y [IS] [NOT] IN (subquery)`` — set (ex/in)clusion."""

    column: ColumnRef
    query: "SelectQuery"
    negated: bool = False

    def __str__(self) -> str:
        kw = "is not in" if self.negated else "is in"
        return f"{self.column} {kw} ({self.query})"


@dataclass(frozen=True)
class QuantifiedComparison:
    """``R.Y op ALL|SOME|ANY (subquery)``."""

    column: ColumnRef
    op: Op
    quantifier: str  # "ALL" | "SOME" | "ANY"
    query: "SelectQuery"

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.quantifier} ({self.query})"


@dataclass(frozen=True)
class ScalarSubqueryComparison:
    """``R.Y op (SELECT AGG(S.Z) ...)`` — the type-A/JA shape."""

    column: ColumnRef
    op: Op
    query: "SelectQuery"

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} ({self.query})"


@dataclass(frozen=True)
class ExistsPredicate:
    """``[NOT] EXISTS (subquery)``."""

    query: "SelectQuery"
    negated: bool = False

    def __str__(self) -> str:
        kw = "not exists" if self.negated else "exists"
        return f"{kw} ({self.query})"


@dataclass(frozen=True)
class DegreePredicate:
    """``R.D`` used as a predicate (satisfied to the tuple's degree)."""

    degree: DegreeRef

    def __str__(self) -> str:
        return str(self.degree)


@dataclass(frozen=True)
class IdentityComparison:
    """Binary identity of value representations: ``R.U == T1.U``.

    Used by the JA rewrite (Section 6), where "d(r.U = u) is binary" — the
    tuple joins the group tuple built from *exactly* its own ``U`` value,
    not any fuzzily-equal one.  Satisfied at degree 1 when the two
    distributions have the same canonical representation, else 0.
    """

    left: ColumnRef
    right: ColumnRef

    def __str__(self) -> str:
        return f"{self.left} == {self.right}"


@dataclass(frozen=True)
class NegatedConjunction:
    """``NOT (p1 AND p2 AND ...)`` — needed by the JX'/JALL' rewrites."""

    predicates: tuple

    def __str__(self) -> str:
        inner = " AND ".join(str(p) for p in self.predicates)
        return f"not ({inner})"


Predicate = Union[
    Comparison,
    InPredicate,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    ExistsPredicate,
    DegreePredicate,
    IdentityComparison,
    NegatedConjunction,
]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry: relation name plus optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by inside the query."""
        return self.alias if self.alias is not None else self.name

    def __str__(self) -> str:
        return f"{self.name} {self.alias}" if self.alias else self.name


SelectItem = Union[ColumnRef, AggregateExpr]


@dataclass(frozen=True)
class SelectQuery:
    """One SELECT block.

    ``where`` is a conjunction.  ``with_threshold`` reflects an explicit
    ``WITH D >= z`` / ``WITH D > z`` clause (None means the implicit
    ``WITH D > 0``; a :class:`Parameter` means ``WITH D >= ?``, bound per
    execution).  ``group_by`` supports the unnested JX'/JALL'/JA'
    forms; ``having`` holds fuzzy comparisons over group aggregates whose
    satisfaction degrees join each group's conjunction.
    """

    select: tuple  # of SelectItem
    from_tables: tuple  # of TableRef
    where: tuple = ()  # of Predicate
    with_threshold: Optional[Union[float, Parameter]] = None
    group_by: tuple = ()  # of ColumnRef
    distinct: bool = False
    having: tuple = ()  # of Comparison (sides may be AggregateExpr)

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(s) for s in self.select))
        parts.append("FROM " + ", ".join(str(t) for t in self.from_tables))
        if self.where:
            parts.append("WHERE " + " AND ".join(str(p) for p in self.where))
        if self.with_threshold is not None:
            parts.append(f"WITH D >= {self.with_threshold}")
        if self.group_by:
            parts.append("GROUPBY " + ", ".join(str(c) for c in self.group_by))
        if self.having:
            parts.append("HAVING " + " AND ".join(str(p) for p in self.having))
        return " ".join(parts)


def subqueries_of(query: SelectQuery) -> List[SelectQuery]:
    """Direct subqueries appearing in the WHERE clause."""
    out: List[SelectQuery] = []
    for p in query.where:
        if isinstance(p, (InPredicate, QuantifiedComparison, ScalarSubqueryComparison, ExistsPredicate)):
            out.append(p.query)
    return out


def nesting_depth(query: SelectQuery) -> int:
    """1 for a flat query, 2 for one level of nesting, and so on."""
    subs = subqueries_of(query)
    if not subs:
        return 1
    return 1 + max(nesting_depth(s) for s in subs)
