"""Errors raised by the Fuzzy SQL frontend."""

from __future__ import annotations


class FuzzySQLError(Exception):
    """Base class for all frontend errors."""


class LexError(FuzzySQLError):
    """Invalid character sequence in the query text."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(FuzzySQLError):
    """The token stream does not form a valid Fuzzy SQL query."""


class BindError(FuzzySQLError):
    """Name resolution failed (unknown relation, attribute, or term)."""
