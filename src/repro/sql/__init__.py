"""The Fuzzy SQL frontend: lexer, parser, binder, nesting classifier."""

from .ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    DegreeRef,
    ExistsPredicate,
    InPredicate,
    Literal,
    NegatedConjunction,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
    TableRef,
    nesting_depth,
    subqueries_of,
)
from .binder import Resolution, Scope, references_outer, resolve_literal, validate
from .classify import NestingType, classify
from .errors import BindError, FuzzySQLError, LexError, ParseError
from .lexer import Token, TokenType, tokenize
from .parser import parse
from .statements import (
    ColumnDef,
    CreateTable,
    DefineTerm,
    DropTable,
    InsertInto,
    Statement,
    parse_statement,
)

__all__ = [
    "parse",
    "parse_statement",
    "Statement",
    "CreateTable",
    "ColumnDef",
    "InsertInto",
    "DefineTerm",
    "DropTable",
    "tokenize",
    "Token",
    "TokenType",
    "SelectQuery",
    "TableRef",
    "ColumnRef",
    "Literal",
    "DegreeRef",
    "AggregateExpr",
    "Comparison",
    "InPredicate",
    "QuantifiedComparison",
    "ScalarSubqueryComparison",
    "ExistsPredicate",
    "DegreePredicate",
    "NegatedConjunction",
    "subqueries_of",
    "nesting_depth",
    "Scope",
    "Resolution",
    "validate",
    "references_outer",
    "resolve_literal",
    "NestingType",
    "classify",
    "FuzzySQLError",
    "LexError",
    "ParseError",
    "BindError",
]
