"""Nesting-type classification (Kim's taxonomy extended to Fuzzy SQL).

The rewriter dispatches on the type of the outermost nesting:

* ``FLAT``   — no subquery;
* ``TYPE_N`` — uncorrelated ``IN`` (Section 4, Theorem 4.1);
* ``TYPE_J`` — correlated ``IN`` (Section 4, Theorem 4.2);
* ``TYPE_XN``/``TYPE_JX`` — ``NOT IN``, un-/correlated (Section 5);
* ``TYPE_A``/``TYPE_JA`` — scalar aggregate subquery, un-/correlated
  (Section 6);
* ``TYPE_ALL``/``TYPE_JALL`` — ``op ALL`` quantifier (Section 7);
* ``TYPE_SOME``/``TYPE_JSOME`` — ``op SOME/ANY`` (unnests like N/J with
  ``op`` as the join operator);
* ``CHAIN``  — a K-level linear query (Section 8);
* ``GENERAL`` — anything else (evaluated by the naive engine only).
"""

from __future__ import annotations

import enum

from ..data.catalog import Catalog
from .ast import (
    AggregateExpr,
    Comparison,
    ExistsPredicate,
    InPredicate,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
)
from .binder import Scope, references_outer
from .errors import BindError


class NestingType(enum.Enum):
    """The paper's nesting taxonomy: Kim's N/J/XN/JX/A/JA extended with the ALL and
    SOME families, multi-level chains, and a GENERAL fallback.
    """
    FLAT = "flat"
    TYPE_N = "N"
    TYPE_J = "J"
    TYPE_XN = "XN"
    TYPE_JX = "JX"
    TYPE_A = "A"
    TYPE_JA = "JA"
    TYPE_ALL = "ALL"
    TYPE_JALL = "JALL"
    TYPE_SOME = "SOME"
    TYPE_JSOME = "JSOME"
    CHAIN = "chain"
    GENERAL = "general"


def _subquery_predicates(query: SelectQuery):
    return [
        p
        for p in query.where
        if isinstance(p, (InPredicate, QuantifiedComparison, ScalarSubqueryComparison, ExistsPredicate))
    ]


def classify(query: SelectQuery, catalog: Catalog) -> NestingType:
    """The nesting type of the outermost level of ``query``."""
    preds = _subquery_predicates(query)
    if not preds:
        return NestingType.FLAT
    if query.having:
        return NestingType.GENERAL
    if len(preds) > 1:
        return NestingType.GENERAL
    predicate = preds[0]
    scope = Scope.for_query(query, catalog)
    inner = predicate.query
    correlated = references_outer(inner, catalog, scope)
    inner_nested = bool(_subquery_predicates(inner))

    if isinstance(predicate, InPredicate):
        if inner_nested:
            return NestingType.CHAIN if _is_chain(query, catalog) else NestingType.GENERAL
        if predicate.negated:
            return NestingType.TYPE_JX if correlated else NestingType.TYPE_XN
        return NestingType.TYPE_J if correlated else NestingType.TYPE_N

    if inner_nested:
        return NestingType.GENERAL

    if isinstance(predicate, ScalarSubqueryComparison):
        if not _selects_single_aggregate(inner):
            return NestingType.GENERAL
        return NestingType.TYPE_JA if correlated else NestingType.TYPE_A

    if isinstance(predicate, QuantifiedComparison):
        if predicate.quantifier == "ALL":
            return NestingType.TYPE_JALL if correlated else NestingType.TYPE_ALL
        return NestingType.TYPE_JSOME if correlated else NestingType.TYPE_SOME

    if isinstance(predicate, ExistsPredicate):
        # EXISTS is expressible through the quantifier machinery but is not
        # one of the paper's rewrite targets; keep it with the naive engine.
        return NestingType.GENERAL

    return NestingType.GENERAL


def _selects_single_aggregate(query: SelectQuery) -> bool:
    return len(query.select) == 1 and isinstance(query.select[0], AggregateExpr)


def _is_chain(query: SelectQuery, catalog: Catalog, parent: Scope = None) -> bool:
    """Section 8 chain shape: one block per level, IN-linked, with only
    comparison predicates (correlation allowed to *any* outer block), no
    aggregates, quantifiers, or set exclusion."""
    if len(query.from_tables) != 1:
        return False
    if query.distinct or query.group_by:
        return False
    if len(query.select) != 1 or isinstance(query.select[0], AggregateExpr):
        return False
    scope = Scope.for_query(query, catalog, parent)
    in_preds = []
    for p in query.where:
        if isinstance(p, Comparison):
            continue
        if isinstance(p, InPredicate) and not p.negated:
            in_preds.append(p)
        else:
            return False
    if len(in_preds) > 1:
        return False
    if in_preds:
        try:
            if scope.resolve(in_preds[0].column).level != 0:
                return False
        except BindError:
            return False
        return _is_chain(in_preds[0].query, catalog, scope)
    return True
