"""Tokenizer for the Fuzzy SQL subset."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Union

from .errors import LexError

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "AND", "NOT", "IS", "IN",
    "EXISTS", "ALL", "SOME", "ANY", "WITH", "GROUPBY", "GROUP", "BY",
    "HAVING", "COUNT", "SUM", "AVG", "MIN", "MAX", "D",
    # DDL / DML statements
    "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "DEFINE", "AS", "ON",
    "DROP", "NUMERIC", "LABEL", "DELETE", "UPDATE", "SET",
}

OPERATORS = ("<=", ">=", "<>", "!=", "~=", "=", "<", ">")


class TokenType(enum.Enum):
    """Lexical categories produced by :func:`tokenize`."""
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DOT = "."
    STAR = "*"
    PARAM = "?"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexeme: its category, value, and character offset in the source."""
    type: TokenType
    value: Union[str, float]
    position: int

    def matches_keyword(self, *names: str) -> bool:
        """Whether the token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names


def tokenize(text: str) -> List[Token]:
    """Lex query text into tokens (keywords are case-insensitive)."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch in "'\"":
            end = text.find(ch, i + 1)
            if end == -1:
                raise LexError("unterminated string literal", i)
            yield Token(TokenType.STRING, text[i + 1:end], i)
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is a qualifier dot.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token(TokenType.NUMBER, float(text[i:j]), i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                yield Token(TokenType.KEYWORD, upper, i)
            else:
                yield Token(TokenType.IDENT, word, i)
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                yield Token(TokenType.OPERATOR, op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        simple = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "*": TokenType.STAR,
            "?": TokenType.PARAM,
        }
        if ch in simple:
            yield Token(simple[ch], ch, i)
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, "", n)
