"""DDL/DML statements: CREATE/DROP TABLE, INSERT, UPDATE, DELETE, DEFINE.

The paper's Fuzzy SQL paper ([25]) describes a full database library; for
this reproduction the data-definition surface is the minimum a user needs
to build a fuzzy database from scratch in the shell or programmatically:

    CREATE TABLE M (ID NUMERIC, NAME LABEL, AGE NUMERIC ON 'AGE')
    DEFINE 'medium young' ON 'AGE' AS '[20, 25, 30, 35]'
    INSERT INTO M VALUES (201, 'Allen', 24)
    INSERT INTO M VALUES (202, 'Allen', 'about 50') WITH D 0.9
    UPDATE M SET AGE = 25 WHERE M.ID = 201
    DELETE FROM M WHERE M.AGE = 'medium young' WITH D >= 0.5
    DROP TABLE M

Values in INSERT / UPDATE use the textual value syntax of
:mod:`repro.data.io` (numbers, linguistic terms, '[a,b,c,d]' trapezoids,
'{"x": 1.0}' discrete distributions).  The ``WHERE`` conjunction of
UPDATE / DELETE reuses the SELECT predicate grammar but the engine
accepts only flat comparisons there (no subqueries); the optional
``WITH D >= z`` clause thresholds the *match degree*
``min(μ(row), μ(predicate))`` that marks a row as affected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .ast import Predicate, SelectQuery
from .errors import ParseError
from .lexer import TokenType, tokenize
from .parser import _Parser


@dataclass(frozen=True)
class ColumnDef:
    """One column of a ``CREATE TABLE``: name, type, optional linguistic domain."""
    name: str
    type_name: str  # "NUMERIC" | "LABEL"
    domain: Optional[str] = None

    def __str__(self) -> str:
        domain = f" ON '{self.domain}'" if self.domain else ""
        return f"{self.name} {self.type_name}{domain}"


@dataclass(frozen=True)
class CreateTable:
    """A parsed ``CREATE TABLE`` statement."""
    name: str
    columns: Tuple[ColumnDef, ...]

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        return f"CREATE TABLE {self.name} ({cols})"


@dataclass(frozen=True)
class InsertInto:
    """A parsed ``INSERT INTO``; an optional ``WITH D`` degree covers all rows."""
    table: str
    rows: Tuple[Tuple[object, ...], ...]
    degree: Optional[float] = None  # WITH D <z> applies to all rows

    def __str__(self) -> str:
        rows = ", ".join("(" + ", ".join(repr(v) for v in row) + ")" for row in self.rows)
        suffix = f" WITH D {self.degree}" if self.degree is not None else ""
        return f"INSERT INTO {self.table} VALUES {rows}{suffix}"


@dataclass(frozen=True)
class DefineTerm:
    """A parsed ``DEFINE`` statement binding a linguistic term to a shape."""
    term: str
    shape: str  # textual value syntax, e.g. "[20, 25, 30, 35]"
    domain: Optional[str] = None

    def __str__(self) -> str:
        domain = f" ON '{self.domain}'" if self.domain else ""
        return f"DEFINE '{self.term}'{domain} AS '{self.shape}'"


@dataclass(frozen=True)
class DropTable:
    """A parsed ``DROP TABLE`` statement."""
    name: str

    def __str__(self) -> str:
        return f"DROP TABLE {self.name}"


@dataclass(frozen=True)
class DeleteFrom:
    """A parsed ``DELETE FROM`` with an optional predicate and threshold."""
    table: str
    where: Tuple[Predicate, ...] = ()
    threshold: Optional[float] = None  # WITH D >= z on the match degree

    def __str__(self) -> str:
        where = " WHERE " + " AND ".join(str(p) for p in self.where) if self.where else ""
        suffix = f" WITH D >= {self.threshold}" if self.threshold is not None else ""
        return f"DELETE FROM {self.table}{where}{suffix}"


@dataclass(frozen=True)
class Update:
    """A parsed ``UPDATE ... SET`` with an optional predicate and threshold."""
    table: str
    assignments: Tuple[Tuple[str, object], ...]
    where: Tuple[Predicate, ...] = ()
    threshold: Optional[float] = None  # WITH D >= z on the match degree

    def __str__(self) -> str:
        sets = ", ".join(f"{name} = {value!r}" for name, value in self.assignments)
        where = " WHERE " + " AND ".join(str(p) for p in self.where) if self.where else ""
        suffix = f" WITH D >= {self.threshold}" if self.threshold is not None else ""
        return f"UPDATE {self.table} SET {sets}{where}{suffix}"


Statement = Union[
    SelectQuery, CreateTable, InsertInto, Update, DeleteFrom, DefineTerm, DropTable
]


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement (SELECT, CREATE, INSERT, UPDATE, DELETE, DEFINE, or DROP)."""
    parser = _StatementParser(tokenize(text))
    statement = parser.parse_statement()
    parser.expect(TokenType.EOF)
    return statement


class _StatementParser(_Parser):
    def parse_statement(self) -> Statement:
        if self.check_keyword("SELECT"):
            return self.parse_query()
        if self.check_keyword("CREATE"):
            return self._create_table()
        if self.check_keyword("INSERT"):
            return self._insert()
        if self.check_keyword("UPDATE"):
            return self._update()
        if self.check_keyword("DELETE"):
            return self._delete()
        if self.check_keyword("DEFINE"):
            return self._define()
        if self.check_keyword("DROP"):
            return self._drop()
        raise ParseError(
            "expected SELECT/CREATE/INSERT/UPDATE/DELETE/DEFINE/DROP, "
            f"found {self.current.value!r}"
        )

    # ------------------------------------------------------------------
    # CREATE TABLE name (col TYPE [ON 'domain'], ...)
    # ------------------------------------------------------------------
    def _create_table(self) -> CreateTable:
        self.expect_keyword("CREATE")
        self.expect_keyword("TABLE")
        name = self.expect(TokenType.IDENT).value
        self.expect(TokenType.LPAREN)
        columns = [self._column_def()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            columns.append(self._column_def())
        self.expect(TokenType.RPAREN)
        return CreateTable(name, tuple(columns))

    def _column_def(self) -> ColumnDef:
        name = self.expect(TokenType.IDENT).value
        type_token = self.expect_keyword("NUMERIC", "LABEL")
        domain = None
        if self.accept_keyword("ON"):
            domain = self.expect(TokenType.STRING).value
        return ColumnDef(name, type_token.value, domain)

    # ------------------------------------------------------------------
    # INSERT INTO name VALUES (...), (...) [WITH D z]
    # ------------------------------------------------------------------
    def _insert(self) -> InsertInto:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect(TokenType.IDENT).value
        self.expect_keyword("VALUES")
        rows = [self._value_row()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            rows.append(self._value_row())
        degree = None
        if self.accept_keyword("WITH"):
            self.expect_keyword("D")
            degree = float(self.expect(TokenType.NUMBER).value)
        return InsertInto(table, tuple(rows), degree)

    def _value_row(self) -> Tuple[object, ...]:
        self.expect(TokenType.LPAREN)
        values: List[object] = [self._insert_value()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            values.append(self._insert_value())
        self.expect(TokenType.RPAREN)
        return tuple(values)

    def _insert_value(self):
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return token.value
        if token.type is TokenType.STRING:
            self.advance()
            return token.value
        if token.type is TokenType.OPERATOR and token.value == "<":
            raise ParseError("use '[a,b,c,d]' strings for fuzzy values")
        raise ParseError(f"expected a value, found {token.value!r}")

    # ------------------------------------------------------------------
    # UPDATE name SET col = value, ... [WHERE conj] [WITH D >= z]
    # DELETE FROM name [WHERE conj] [WITH D >= z]
    # ------------------------------------------------------------------
    def _update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect(TokenType.IDENT).value
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            assignments.append(self._assignment())
        where, threshold = self._dml_suffix()
        return Update(table, tuple(assignments), where, threshold)

    def _assignment(self) -> Tuple[str, object]:
        name = self.expect(TokenType.IDENT).value
        op = self.expect(TokenType.OPERATOR)
        if op.value != "=":
            raise ParseError(f"SET needs '=', found {op.value!r}")
        return name, self._insert_value()

    def _delete(self) -> DeleteFrom:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect(TokenType.IDENT).value
        where, threshold = self._dml_suffix()
        return DeleteFrom(table, where, threshold)

    def _dml_suffix(self) -> Tuple[Tuple[Predicate, ...], Optional[float]]:
        """The shared ``[WHERE conj] [WITH D >= z]`` tail of UPDATE/DELETE."""
        where: Tuple[Predicate, ...] = ()
        if self.accept_keyword("WHERE"):
            where = tuple(self._conjunction())
        threshold = self._with_clause()
        if threshold is not None and not isinstance(threshold, float):
            raise ParseError("UPDATE/DELETE thresholds cannot be '?' placeholders")
        return where, threshold

    # ------------------------------------------------------------------
    # DEFINE 'term' [ON 'domain'] AS 'shape'
    # ------------------------------------------------------------------
    def _define(self) -> DefineTerm:
        self.expect_keyword("DEFINE")
        term = self.expect(TokenType.STRING).value
        domain = None
        if self.accept_keyword("ON"):
            domain = self.expect(TokenType.STRING).value
        self.expect_keyword("AS")
        shape = self.expect(TokenType.STRING).value
        return DefineTerm(term, shape, domain)

    # ------------------------------------------------------------------
    # DROP TABLE name
    # ------------------------------------------------------------------
    def _drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        return DropTable(self.expect(TokenType.IDENT).value)
