"""Recursive-descent parser for the Fuzzy SQL subset.

Grammar (conjunctive WHERE clauses only, per the paper's assumption)::

    query     := SELECT [DISTINCT] items FROM tables
                 [WHERE pred (AND pred)*] [WITH D (>|>=) number]
                 [GROUPBY cols | GROUP BY cols]
    items     := item (',' item)*          item := agg '(' column ')' | column
    tables    := name [alias] (',' name [alias])*
    pred      := [NOT] EXISTS '(' query ')'
               | column [IS] [NOT] IN '(' query ')'
               | term op ALL|SOME|ANY '(' query ')'
               | term op '(' query ')'                 -- scalar aggregate
               | term op term
               | degree_ref                            -- R.D as a predicate
               | NOT '(' pred (AND pred)* ')'
    term      := column | degree_ref | number | string
    column    := ident ['.' ident]
    degree_ref:= [ident '.'] D

``MIN(D)`` in a SELECT list (the JX'/JALL' form) parses as an aggregate
over the degree pseudo-column.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..fuzzy.compare import Op
from .ast import (
    AggregateExpr,
    ColumnRef,
    Comparison,
    DegreePredicate,
    DegreeRef,
    ExistsPredicate,
    InPredicate,
    Literal,
    NegatedConjunction,
    Parameter,
    Predicate,
    QuantifiedComparison,
    ScalarSubqueryComparison,
    SelectQuery,
    TableRef,
)
from .errors import ParseError
from .lexer import Token, TokenType, tokenize

AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def parse(text: str) -> SelectQuery:
    """Parse query text into a :class:`SelectQuery` AST."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    parser.expect(TokenType.EOF)
    return query


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        #: ``?`` placeholders are numbered left to right in text order.
        self.n_params = 0

    def _parameter(self) -> Parameter:
        self.expect(TokenType.PARAM)
        param = Parameter(self.n_params)
        self.n_params += 1
        return param

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def check_keyword(self, *names: str) -> bool:
        return self.current.matches_keyword(*names)

    def accept_keyword(self, *names: str) -> bool:
        if self.check_keyword(*names):
            self.advance()
            return True
        return False

    def expect_keyword(self, *names: str) -> Token:
        if not self.check_keyword(*names):
            raise ParseError(f"expected {'/'.join(names)}, found {self.current.value!r}")
        return self.advance()

    def expect(self, token_type: TokenType) -> Token:
        if self.current.type is not token_type:
            raise ParseError(f"expected {token_type.value}, found {self.current.value!r}")
        return self.advance()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def parse_query(self) -> SelectQuery:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select = self._select_items()
        self.expect_keyword("FROM")
        tables = self._table_refs()
        where: tuple = ()
        if self.accept_keyword("WHERE"):
            where = tuple(self._conjunction())
        threshold = self._with_clause()
        group_by = self._group_by()
        having: tuple = ()
        if self.accept_keyword("HAVING"):
            having = tuple(self._having_conjunction())
        return SelectQuery(
            select=tuple(select),
            from_tables=tuple(tables),
            where=where,
            with_threshold=threshold,
            group_by=tuple(group_by),
            distinct=distinct,
            having=having,
        )

    def _select_items(self) -> List:
        items = [self._select_item()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            items.append(self._select_item())
        return items

    def _select_item(self):
        from .ast import Star

        if self.current.type is TokenType.STAR:
            self.advance()
            return Star(None)
        if (
            self.current.type is TokenType.IDENT
            and self.pos + 2 < len(self.tokens)
            and self.tokens[self.pos + 1].type is TokenType.DOT
            and self.tokens[self.pos + 2].type is TokenType.STAR
        ):
            relation = self.advance().value
            self.advance()  # dot
            self.advance()  # star
            return Star(relation)
        if self.check_keyword(*AGG_FUNCS):
            func = self.advance().value
            self.expect(TokenType.LPAREN)
            if self.check_keyword("D"):
                self.advance()
                argument = ColumnRef(None, "D")
            else:
                argument = self._column()
            self.expect(TokenType.RPAREN)
            return AggregateExpr(func, argument)
        return self._column()

    def _table_refs(self) -> List[TableRef]:
        tables = [self._table_ref()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> TableRef:
        name = self.expect(TokenType.IDENT).value
        alias = None
        if self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return TableRef(name, alias)

    def _with_clause(self) -> Optional[Union[float, Parameter]]:
        if not self.accept_keyword("WITH"):
            return None
        self.expect_keyword("D")
        op = self.expect(TokenType.OPERATOR).value
        if op not in (">", ">="):
            raise ParseError(f"WITH clause needs > or >=, found {op!r}")
        if self.current.type is TokenType.PARAM:
            return self._parameter()
        value = self.expect(TokenType.NUMBER).value
        return float(value)

    def _group_by(self) -> List[ColumnRef]:
        if self.accept_keyword("GROUPBY"):
            pass
        elif self.check_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
        else:
            return []
        cols = [self._column()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            cols.append(self._column())
        return cols

    # ------------------------------------------------------------------
    # HAVING
    # ------------------------------------------------------------------
    def _having_conjunction(self) -> List[Comparison]:
        predicates = [self._having_predicate()]
        while self.accept_keyword("AND"):
            predicates.append(self._having_predicate())
        return predicates

    def _having_predicate(self) -> Comparison:
        left = self._having_term()
        op = Op.from_symbol(self.expect(TokenType.OPERATOR).value)
        right = self._having_term()
        return Comparison(left, op, right)

    def _having_term(self):
        if self.check_keyword(*AGG_FUNCS):
            return self._select_item()  # parses AGG(col)
        return self._term()

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _conjunction(self) -> List[Predicate]:
        predicates = [self._predicate()]
        while self.accept_keyword("AND"):
            predicates.append(self._predicate())
        return predicates

    def _predicate(self) -> Predicate:
        if self.check_keyword("NOT"):
            return self._not_predicate()
        if self.check_keyword("EXISTS"):
            self.advance()
            return ExistsPredicate(self._parenthesized_query(), negated=False)
        left = self._term()
        # "column IS [NOT] IN (...)" / "column [NOT] IN (...)"
        if isinstance(left, ColumnRef) and (self.check_keyword("IS", "IN", "NOT")):
            return self._membership_predicate(left)
        if isinstance(left, DegreeRef) and self.current.type is not TokenType.OPERATOR:
            return DegreePredicate(left)
        op_token = self.expect(TokenType.OPERATOR)
        op = Op.from_symbol(op_token.value)
        if self.check_keyword("ALL", "SOME", "ANY"):
            quantifier = self.advance().value
            if not isinstance(left, ColumnRef):
                raise ParseError("quantified comparison needs a column on the left")
            return QuantifiedComparison(left, op, quantifier, self._parenthesized_query())
        if self.current.type is TokenType.LPAREN and self._peek_is_select():
            if not isinstance(left, ColumnRef):
                raise ParseError("scalar subquery comparison needs a column on the left")
            return ScalarSubqueryComparison(left, op, self._parenthesized_query())
        right = self._term()
        return Comparison(left, op, right)

    def _not_predicate(self) -> Predicate:
        self.expect_keyword("NOT")
        if self.check_keyword("EXISTS"):
            self.advance()
            return ExistsPredicate(self._parenthesized_query(), negated=True)
        if self.current.type is TokenType.LPAREN:
            self.advance()
            inner = self._conjunction()
            self.expect(TokenType.RPAREN)
            return NegatedConjunction(tuple(inner))
        raise ParseError("NOT must be followed by EXISTS or a parenthesized conjunction")

    def _membership_predicate(self, column: ColumnRef) -> Predicate:
        self.accept_keyword("IS")
        negated = self.accept_keyword("NOT")
        self.expect_keyword("IN")
        return InPredicate(column, self._parenthesized_query(), negated)

    def _parenthesized_query(self) -> SelectQuery:
        self.expect(TokenType.LPAREN)
        query = self.parse_query()
        self.expect(TokenType.RPAREN)
        return query

    def _peek_is_select(self) -> bool:
        return (
            self.pos + 1 < len(self.tokens)
            and self.tokens[self.pos + 1].matches_keyword("SELECT")
        )

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------
    def _term(self) -> Union[ColumnRef, DegreeRef, Literal, Parameter]:
        token = self.current
        if token.type is TokenType.PARAM:
            return self._parameter()
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.matches_keyword("D"):
            self.advance()
            return DegreeRef(None)
        if token.type is TokenType.IDENT:
            return self._column_or_degree()
        raise ParseError(f"expected a term, found {token.value!r}")

    def _column_or_degree(self) -> Union[ColumnRef, DegreeRef]:
        first = self.expect(TokenType.IDENT).value
        if self.current.type is TokenType.DOT:
            self.advance()
            if self.check_keyword("D"):
                self.advance()
                return DegreeRef(first)
            second = self.expect(TokenType.IDENT).value
            return ColumnRef(first, second)
        return ColumnRef(None, first)

    def _column(self) -> ColumnRef:
        ref = self._column_or_degree()
        if isinstance(ref, DegreeRef):
            return ColumnRef(ref.relation, "D")
        return ref
