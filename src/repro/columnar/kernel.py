"""Vectorized trapezoid comparison kernels over column batches.

One probe distribution is compared against a whole columnar page in a
single pass over the ``(a, b, e, d)`` columns, instead of lifting each
entry back into a :class:`~repro.fuzzy.trapezoid.TrapezoidalNumber` and
dispatching through :func:`repro.fuzzy.compare.possibility` one value at
a time.

**Bit-identicality contract.**  ``batch_eq_possibility(probe, ...)[i]``
equals ``possibility(value_i, Op.EQ, probe)`` *bit for bit*, where
``value_i`` is the distribution the columns encode.  The kernel only uses
closed forms for the cases where they provably reproduce the scalar
library's float arithmetic exactly:

* both sides points — value equality, degree 1.0 or 0.0;
* point vs trapezoid — the trapezoid membership formula, replicated
  branch-for-branch from :meth:`TrapezoidalNumber.membership`;
* disjoint supports — 0.0 (the scalar path's ``intervals_intersect``
  gate);
* overlapping cores — exactly 1.0 (normal trapezoids: the sup-min of two
  membership curves whose cores share a point is attained there at
  height 1.0, and the piecewise-linear evaluation yields exactly 1.0 at
  core abscissae).

The one genuinely geometric case — two proper trapezoids whose supports
overlap but whose cores do not, so the degree is a ramp intersection —
falls back to the scalar library on a trapezoid reconstructed from the
columns.  f64 values round-trip the columnar encoding exactly, so the
fallback is bit-identical by construction.  The kernels therefore never
approximate: they just skip object construction and dispatch for the
overwhelmingly common cheap cases.
"""

from __future__ import annotations

from typing import List, Sequence

from ..fuzzy.compare import Op, possibility
from ..fuzzy.trapezoid import TrapezoidalNumber
from .pages import KIND_POINT

__all__ = [
    "batch_eq_possibility",
    "batch_eq_necessity",
    "batch_lt_possibility",
    "batch_le_possibility",
]


def _probe_shape(probe) -> tuple:
    """``(is_point, value, a, b, e, d)`` for a numeric probe distribution.

    Accepts :class:`~repro.fuzzy.crisp.CrispNumber` and
    :class:`TrapezoidalNumber` (the only shapes the support-interval index
    stores or is probed with); degenerate trapezoids (``a == d``) count as
    points, mirroring ``_as_point`` in the scalar library.
    """
    if isinstance(probe, TrapezoidalNumber):
        if probe.a == probe.d:
            return (True, probe.a, probe.a, probe.a, probe.a, probe.a)
        return (False, None, probe.a, probe.b, probe.c, probe.d)
    value = getattr(probe, "value", None)
    if value is not None and probe.is_numeric:
        return (True, value, value, value, value, value)
    raise TypeError(
        f"vectorized kernel expects a numeric crisp or trapezoidal probe, "
        f"got {type(probe).__name__}"
    )


def batch_eq_possibility(
    probe,
    col_a: Sequence[float],
    col_b: Sequence[float],
    col_e: Sequence[float],
    col_d: Sequence[float],
    kinds: Sequence[int],
    probe_on_left: bool = False,
) -> List[float]:
    """``[possibility(value_i, Op.EQ, probe)]`` over a column batch.

    ``col_e`` is the core-end column (the row trapezoid's ``c``); the
    default operand order matches compiled predicates, which place the
    stored attribute on the left and the query literal on the right.
    ``probe_on_left=True`` flips the scalar-fallback orientation to
    ``possibility(probe, Op.EQ, value_i)`` — the
    :class:`~repro.fuzzy.compare.ComparisonKernel` convention — so memo
    entries stay bit-identical to the scalar path either way (the closed
    forms are exactly symmetric; only the ramp fallback cares).
    """
    is_point, pv, pa, pb, pe, pd = _probe_shape(probe)
    degrees: List[float] = []
    fallback = None
    for i in range(len(col_a)):
        a = col_a[i]
        entry_point = kinds[i] == KIND_POINT
        if is_point:
            if entry_point:
                degrees.append(1.0 if a == pv else 0.0)
                continue
            # Point probe against trapezoid entry: the entry's membership
            # at pv, branch-for-branch as TrapezoidalNumber.membership.
            b, e, d = col_b[i], col_e[i], col_d[i]
            if pv < a or pv > d:
                degrees.append(0.0)
            elif b <= pv <= e:
                degrees.append(1.0)
            elif pv < b:
                degrees.append((pv - a) / (b - a))
            else:
                degrees.append((d - pv) / (d - e))
            continue
        if entry_point:
            # Point entry against trapezoid probe: probe membership at the
            # entry's value (the library's own exact formula).
            degrees.append(probe.membership(a))
            continue
        b, e, d = col_b[i], col_e[i], col_d[i]
        if d < pa or pd < a:
            degrees.append(0.0)          # disjoint supports
        elif max(b, pb) <= min(e, pe):
            degrees.append(1.0)          # overlapping cores
        else:
            # Ramp intersection: defer to the scalar library on the
            # reconstructed trapezoid for bitwise-identical arithmetic.
            if fallback is None:
                fallback = probe
            value = TrapezoidalNumber(a, b, e, d)
            if probe_on_left:
                degrees.append(possibility(fallback, Op.EQ, value))
            else:
                degrees.append(possibility(value, Op.EQ, fallback))
    return degrees


def _sup_below_cols(a: float, b: float, v: float, strict: bool) -> float:
    """``sup_{x < v} mu(x)`` of a trapezoid rising ramp ``(a, b)``.

    Branch-for-branch the scalar library's ``_sup_below`` for trapezoids
    (the non-strict middle branch is ``membership(v)``, which on
    ``[a, b)`` is exactly the rising-ramp expression used here).
    """
    if strict:
        if v <= a:
            return 0.0
        if v >= b:
            return 1.0
        return (v - a) / (b - a)
    if v < a:
        return 0.0
    if v >= b:
        return 1.0
    return (v - a) / (b - a)


def _sup_above_cols(e: float, d: float, v: float, strict: bool) -> float:
    """``sup_{y > v} mu(y)`` of a trapezoid falling ramp ``(e, d)``."""
    if strict:
        if v >= d:
            return 0.0
        if v <= e:
            return 1.0
        return (d - v) / (d - e)
    if v > d:
        return 0.0
    if v <= e:
        return 1.0
    return (d - v) / (d - e)


def _batch_order(
    probe,
    col_a: Sequence[float],
    col_b: Sequence[float],
    col_e: Sequence[float],
    col_d: Sequence[float],
    kinds: Sequence[int],
    strict: bool,
    probe_on_left: bool,
) -> List[float]:
    """Shared body of the LT / LE kernels.

    Computes ``possibility(value_i, op, probe)`` (``probe_on_left=False``;
    the compiled-predicate orientation: stored attribute on the left) or
    ``possibility(probe, op, value_i)`` (``probe_on_left=True``; the
    :class:`~repro.fuzzy.compare.ComparisonKernel` orientation), with
    ``op`` = ``<`` when ``strict`` else ``<=``.  Unlike equality, order is
    *not* symmetric, so the flag swaps the whole comparison, not just the
    fallback operand order.  Every point-involved case uses the scalar
    library's ``_sup_below`` / ``_sup_above`` envelopes replicated
    branch-for-branch; the one genuinely geometric case — two proper
    trapezoids, where the degree is a sup-min against a running-max
    envelope — falls back to the scalar library on the reconstructed
    trapezoid, which is bit-identical because f64 columns round-trip.
    """
    is_point, pv, pa, pb, pe, pd = _probe_shape(probe)
    op = Op.LT if strict else Op.LE
    degrees: List[float] = []
    for i in range(len(col_a)):
        a = col_a[i]
        entry_point = kinds[i] == KIND_POINT
        if probe_on_left:
            if is_point and entry_point:
                ok = pv < a if strict else pv <= a
                degrees.append(1.0 if ok else 0.0)
            elif is_point:
                degrees.append(_sup_above_cols(col_e[i], col_d[i], pv, strict))
            elif entry_point:
                degrees.append(_sup_below_cols(pa, pb, a, strict))
            else:
                value = TrapezoidalNumber(a, col_b[i], col_e[i], col_d[i])
                degrees.append(possibility(probe, op, value))
        else:
            if is_point and entry_point:
                ok = a < pv if strict else a <= pv
                degrees.append(1.0 if ok else 0.0)
            elif entry_point:
                degrees.append(_sup_above_cols(pe, pd, a, strict))
            elif is_point:
                degrees.append(_sup_below_cols(a, col_b[i], pv, strict))
            else:
                value = TrapezoidalNumber(a, col_b[i], col_e[i], col_d[i])
                degrees.append(possibility(value, op, probe))
    return degrees


def batch_lt_possibility(
    probe,
    col_a: Sequence[float],
    col_b: Sequence[float],
    col_e: Sequence[float],
    col_d: Sequence[float],
    kinds: Sequence[int],
    probe_on_left: bool = False,
) -> List[float]:
    """``[possibility(value_i, Op.LT, probe)]`` over a column batch.

    ``probe_on_left=True`` computes ``possibility(probe, Op.LT, value_i)``
    instead.  ``GT`` needs no kernel of its own: the scalar library
    evaluates ``x > y`` as ``y < x``, so a GT caller passes the *other*
    orientation flag (``possibility(value, Op.GT, probe)`` is exactly
    ``batch_lt_possibility(probe, ..., probe_on_left=True)``).
    """
    return _batch_order(probe, col_a, col_b, col_e, col_d, kinds, True, probe_on_left)


def batch_le_possibility(
    probe,
    col_a: Sequence[float],
    col_b: Sequence[float],
    col_e: Sequence[float],
    col_d: Sequence[float],
    kinds: Sequence[int],
    probe_on_left: bool = False,
) -> List[float]:
    """``[possibility(value_i, Op.LE, probe)]`` over a column batch.

    ``probe_on_left=True`` computes ``possibility(probe, Op.LE, value_i)``;
    ``GE`` callers flip the flag, mirroring :func:`batch_lt_possibility`.
    """
    return _batch_order(probe, col_a, col_b, col_e, col_d, kinds, False, probe_on_left)


def batch_eq_necessity(
    probe,
    col_a: Sequence[float],
    col_b: Sequence[float],
    col_e: Sequence[float],
    col_d: Sequence[float],
    kinds: Sequence[int],
) -> List[float]:
    """``[necessity(value_i, Op.EQ, probe)]`` over a column batch.

    ``Nec(u = v) = 1 - Poss(u != v)`` collapses to a pure closed form for
    the shapes the index stores: the inequality possibility is 1.0 unless
    *both* sides are points (a continuous distribution always admits some
    ``x != y`` at full height), so the necessity is 1.0 exactly when both
    sides are the same point and 0.0 otherwise.
    """
    is_point, pv, _pa, _pb, _pe, _pd = _probe_shape(probe)
    degrees: List[float] = []
    for i in range(len(col_a)):
        if is_point and kinds[i] == KIND_POINT and col_a[i] == pv:
            degrees.append(1.0)
        else:
            degrees.append(0.0)
    return degrees
