"""Index-assisted physical operators: range scans and entry merge-joins.

Both operators answer *exactly* the same relation as their row-at-a-time
counterparts (:class:`~repro.engine.operators.Scan` with a pushed-down
equality, and :class:`~repro.engine.operators.MergeJoinOp`); they differ
only in how much work they do to get there:

* :class:`IndexScan` walks the fence-key directory of a
  :class:`~repro.columnar.SupportIntervalIndex` to the index pages whose
  entries can overlap the probe's support, computes every comparison
  degree with one vectorized kernel call per page, and fetches only the
  data pages of qualifying rows;
* :class:`IndexMergeJoinOp` merges the two attributes' *index entry*
  streams with the paper's sliding-window algorithm, pruning pairs whose
  supports are provably disjoint (equality degree 0) or whose degree
  bound ``min(mu_R(r), mu_S(s))`` cannot meet the query's ``WITH D >= z``
  cut, and evaluates the full pair degree — through the ordinary
  predicate machinery, for bit-identical floats — only for survivors.

Neither path sorts anything: the index *is* the interval order, which is
where the page-read savings come from.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Iterator, List, Optional, Sequence, Tuple

from ..data.tuples import FuzzyTuple
from ..engine.operators import ExecutionContext, MergeJoinOp, Operator, Scan, TuplePredicate
from ..fuzzy.compare import Op
from ..fuzzy.logic import meets_threshold
from ..join.merge_join import JOIN_PHASE, WindowOverflowError
from ..join.predicates import JoinPredicate
from ..storage.heap import HeapFile
from .index import IndexEntry, SupportIntervalIndex, probe_support
from .kernel import batch_eq_possibility, batch_le_possibility, batch_lt_possibility


class _PageCache:
    """A tiny LRU of decoded heap pages for row-id fetches.

    Index access paths touch data pages by ``(page, slot)`` rather than
    sequentially; this cache makes repeated hits on the same page cost one
    read, bounded so the budget accounting stays honest (``frames`` plays
    the role of buffer frames dedicated to the fetch side).
    """

    def __init__(self, heap: HeapFile, ctx: ExecutionContext, frames: int):
        self.heap = heap
        self.ctx = ctx
        self.frames = max(1, frames)
        self._pages: "OrderedDict[int, List[FuzzyTuple]]" = OrderedDict()

    def tuple_at(self, page_index: int, slot: int) -> FuzzyTuple:
        """The decoded tuple at ``(page_index, slot)``, reading on miss."""
        tuples = self._pages.get(page_index)
        if tuples is None:
            page = self.ctx.disk.read_page(self.heap.name, page_index)
            tuples = [self.heap.serializer.decode(r) for r in page.records()]
            self._pages[page_index] = tuples
            while len(self._pages) > self.frames:
                self._pages.popitem(last=False)
        else:
            self._pages.move_to_end(page_index)
        return tuples[slot]


class IndexScan(Scan):
    """Index scan replacing a full scan with one ``attr op literal`` filter.

    Subclasses :class:`Scan` so cardinality estimation and plan rendering
    treat it as a (filtered) leaf; ``predicates`` keeps the row-path
    predicate so the answer's provenance stays visible in EXPLAIN.  The
    stream yields the same tuples at the same degrees as the row path,
    minus those that provably cannot meet the query threshold — which the
    downstream :class:`~repro.engine.operators.Threshold` would drop
    anyway, so the query answer is bit-identical.

    ``op`` is one of ``=``, ``<``, ``<=``, ``>``, ``>=`` (with the stored
    attribute on the left); each op has its own page prune
    (:meth:`SupportIntervalIndex.probe_pages`), its own provably-zero
    entry prefilter, and its own vectorized kernel.
    """

    def __init__(
        self,
        heap: HeapFile,
        predicates: Sequence[TuplePredicate],
        index: SupportIntervalIndex,
        probe,
        threshold: float = 0.0,
        op: Op = Op.EQ,
    ):
        super().__init__(heap, predicates)
        self.index = index
        self.probe = probe
        self.threshold = threshold
        self.op = op

    def _zero_entry(self, a: float, d: float, begin: float, end: float) -> bool:
        """Whether the entry's degree is provably 0 on supports alone."""
        if self.op in (Op.LT, Op.LE):
            # Every x in the entry's support exceeds every y in the
            # probe's: the entry is certainly greater.
            return a > end
        if self.op in (Op.GT, Op.GE):
            return d < begin
        return d < begin or end < a

    def _batch_degrees(self, col_a, col_b, col_e, col_d, kinds) -> List[float]:
        """The op's kernel over one candidate batch (attribute on the left)."""
        if self.op is Op.EQ:
            return batch_eq_possibility(self.probe, col_a, col_b, col_e, col_d, kinds)
        # The scalar library evaluates x > y as y < x, so GT/GE reuse the
        # LT/LE kernels with the probe on the left.
        if self.op in (Op.LT, Op.GT):
            return batch_lt_possibility(
                self.probe, col_a, col_b, col_e, col_d, kinds,
                probe_on_left=(self.op is Op.GT),
            )
        return batch_le_possibility(
            self.probe, col_a, col_b, col_e, col_d, kinds,
            probe_on_left=(self.op is Op.GE),
        )

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        om = ctx.metrics.op(self) if ctx.metrics is not None else None
        stats = ctx.stats
        begin, end = probe_support(self.probe)
        qualifying: List[Tuple[int, int, float]] = []
        with ctx.disk.use_stats(stats):
            for idx_page in self.index.probe_pages(self.op, begin, end):
                columnar = self.index.fetch(ctx.disk, idx_page)
                # Crisp prefilter over the (a, d) columns: entries whose
                # support relation to the probe's forces degree 0.
                candidates = []
                for i in range(len(columnar)):
                    stats.count_crisp()
                    if om is not None:
                        om.rows_in += 1
                    if self._zero_entry(columnar.col_a[i], columnar.col_d[i], begin, end):
                        if om is not None:
                            om.prunes += 1
                        continue
                    candidates.append(i)
                if not candidates:
                    continue
                stats.count_kernel_batch()
                stats.count_columns(4)
                stats.count_fuzzy(len(candidates))
                degrees = self._batch_degrees(
                    [columnar.col_a[i] for i in candidates],
                    [columnar.col_b[i] for i in candidates],
                    [columnar.col_e[i] for i in candidates],
                    [columnar.col_d[i] for i in candidates],
                    [columnar.kinds[i] for i in candidates],
                )
                for i, eq in zip(candidates, degrees):
                    degree = min(columnar.degrees[i], eq)
                    if meets_threshold(degree, self.threshold):
                        qualifying.append((columnar.pages[i], columnar.slots[i], degree))
                    elif om is not None:
                        om.prunes += 1
            # Fetch qualifying rows in heap order so each data page is
            # read at most once.
            qualifying.sort()
            current: Optional[int] = None
            tuples: List[FuzzyTuple] = []
            for page_index, slot, degree in qualifying:
                if page_index != current:
                    page = ctx.disk.read_page(self.heap.name, page_index)
                    tuples = [self.heap.serializer.decode(r) for r in page.records()]
                    current = page_index
                yield tuples[slot].with_degree(degree)

    def describe(self) -> str:
        """One-line label: index key, operator, and the probed support."""
        begin, end = probe_support(self.probe)
        return (
            f"IndexScan({self.heap.name}, {self.index.attribute} {self.op.value} "
            f"probe[{begin:g}, {end:g}], threshold={self.threshold:g})"
        )


class IndexMergeJoinOp(MergeJoinOp):
    """Merge-join driven by two support-interval indexes instead of sorts.

    The paper's join phase needs both inputs in the interval order; the
    indexes already are, so the sliding-window merge runs directly over
    their entry streams — no external sort, no scratch writes.  Window
    entries carry the full trapezoid and the tuple degree, which enables
    two result-preserving prunes before any data page is touched:

    * support-disjoint pairs (the row path's "dangling" window tuples)
      have equality degree 0 and are dropped on a crisp interval test;
    * pairs whose degree bound ``min(mu_R(r), mu_S(s))`` cannot meet the
      ``WITH D >= z`` cut are dropped — the row path emits them only for
      the Threshold operator to discard.

    Survivor pairs fetch their tuples by row id and run the ordinary
    ``pair_degree`` closure, so every emitted degree is bit-identical to
    the sort-merge path.  Under sharded execution, or if the entry window
    outgrows the buffer, the operator delegates to the parent sort-merge
    plan unchanged.
    """

    def __init__(
        self,
        left: Operator,
        left_attr: str,
        right: Operator,
        right_attr: str,
        left_index: SupportIntervalIndex,
        right_index: SupportIntervalIndex,
        residual: Sequence[JoinPredicate] = (),
        threshold: float = 0.0,
    ):
        super().__init__(left, left_attr, right, right_attr, residual=residual)
        self.left_index = left_index
        self.right_index = right_index
        self.threshold = threshold

    def _tuples(self, ctx: ExecutionContext) -> Iterator[FuzzyTuple]:
        if ctx.shards > 1 and ctx.sharded is not None:
            # Placed relations join shard-locally; the scatter-gather path
            # is already bit-identical and keeps per-shard accounting.
            yield from super()._tuples(ctx)
            return
        try:
            # Materialized before yielding so a window overflow can still
            # fall back to the parent plan without double-emitting.
            with ctx.disk.use_stats(ctx.stats), ctx.stats.enter_phase(JOIN_PHASE):
                pairs = list(self._index_pairs(ctx))
        except WindowOverflowError:
            ctx.mark_degraded(
                "index merge-join entry window exceeded the buffer; "
                "sort-merge fallback"
            )
            yield from super()._tuples(ctx)
            return
        for r, s, degree in pairs:
            yield r.concat(s, degree)

    def _index_pairs(
        self, ctx: ExecutionContext
    ) -> Iterator[Tuple[FuzzyTuple, FuzzyTuple, float]]:
        """The sliding-window merge over the two index entry streams."""
        stats = ctx.stats
        pair_degree = self.pair_degree_with(ctx.kernel)
        fetch_frames = max(1, (ctx.buffer_pages - 1) // 2)
        left_rows = _PageCache(self.left.heap, ctx, fetch_frames)
        right_rows = _PageCache(self.right.heap, ctx, fetch_frames)

        window: "deque[IndexEntry]" = deque()
        window_pages = 0  # distinct S index pages spanned by the window
        s_stream = self.right_index.scan_entries(ctx.disk)
        exhausted = False
        budget = ctx.buffer_pages - 1

        for r_entry in self.left_index.scan_entries(ctx.disk):
            rb, re_ = r_entry.a, r_entry.d

            # Retire S entries that precede every remaining R entry.
            while window:
                stats.count_crisp()
                if window[0].d < rb:
                    retired = window.popleft()
                    if not window or window[0].idx_page != retired.idx_page:
                        window_pages = max(0, window_pages - 1)
                else:
                    break

            # Examine resident entries beginning at or before e(r.X).
            scan_done = False
            for entry in window:
                stats.count_crisp()
                if entry.a > re_:
                    scan_done = True
                    break
                yield from self._examine(r_entry, entry, pair_degree, left_rows, right_rows, stats)

            # Extend the window from the S entry stream.
            while not scan_done and not exhausted:
                entry = next(s_stream, None)
                if entry is None:
                    exhausted = True
                    break
                if not window or window[-1].idx_page != entry.idx_page:
                    window_pages += 1
                    if window_pages > budget:
                        raise WindowOverflowError(
                            f"index entry window spans {window_pages} pages "
                            f"but only {budget} frames are available"
                        )
                window.append(entry)
                stats.count_crisp()
                if entry.a > re_:
                    scan_done = True
                    break
                yield from self._examine(r_entry, entry, pair_degree, left_rows, right_rows, stats)

    def _examine(
        self,
        r_entry: IndexEntry,
        s_entry: IndexEntry,
        pair_degree,
        left_rows: _PageCache,
        right_rows: _PageCache,
        stats,
    ) -> Iterator[Tuple[FuzzyTuple, FuzzyTuple, float]]:
        """Prune one ``(r, s)`` entry pair, or evaluate it fully."""
        # Dangling pair: supports provably disjoint, equality degree 0.
        stats.count_crisp()
        if s_entry.d < r_entry.a or r_entry.d < s_entry.a:
            return
        # The pair degree is a min-fold starting at min(mu_R, mu_S); a
        # bound below the WITH cut can only shrink further, and the row
        # path's Threshold operator would discard it.
        stats.count_crisp()
        bound = min(r_entry.degree, s_entry.degree)
        if not meets_threshold(bound, self.threshold):
            return
        r = left_rows.tuple_at(r_entry.page, r_entry.slot)
        s = right_rows.tuple_at(s_entry.page, s_entry.slot)
        degree = pair_degree(r, s, stats)
        if degree > 0.0:
            yield r, s, degree

    def describe(self) -> str:
        """One-line label: the indexed band attributes and the WITH cut."""
        return (
            f"IndexMergeJoin({self.left_attr} = {self.right_attr}, "
            f"threshold={self.threshold:g})"
        )
