"""Columnar pages: trapezoid attributes as contiguous parallel columns.

A :class:`ColumnarPage` stores one attribute of many tuples column-major:
the four trapezoid abscissae as parallel ``(a, b, e, d)`` float columns
(``a``/``d`` bound the support, ``b``/``e`` the core — ``e`` is the
row-format trapezoid's ``c``), the tuple's membership degree, the row id
``(heap page, slot)`` it came from, and a one-byte kind tag.  A crisp
number ``v`` is the degenerate column entry ``a = b = e = d = v``.

The layout exists for the vectorized kernel
(:mod:`repro.columnar.kernel`): a probe is compared against a whole page
by sweeping each column once, instead of decoding and dispatching one
tuple object at a time.  Entries are ~47 bytes, so one columnar page holds
roughly four times as many values as a heap page holds tuples — the
density argument behind the index's I/O savings.

On disk a columnar page is carried as the *single record* of an ordinary
slotted :class:`~repro.storage.page.Page`, so it inherits the CRC32
checksum, the fault-injection hooks, and the per-access I/O accounting of
the storage layer unchanged.
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterator, Tuple

_HEADER = struct.Struct(">H")  # entry count

#: Bytes one entry occupies in the serialized column layout:
#: 4 abscissae + degree (5 f64) + page (u32) + slot (u16) + kind (u8).
ENTRY_BYTES = 5 * 8 + 4 + 2 + 1

#: Kind tags for the ``kind`` column.
KIND_POINT = 0      # crisp number, or a trapezoid degenerated to a == d
KIND_TRAPEZOID = 1  # proper trapezoid (a < d)


class ColumnarPage:
    """One page worth of column-major ``(a, b, e, d)`` entries.

    Append entries with :meth:`append` until :meth:`fits` says the page is
    full, then serialize with :meth:`to_bytes`; :meth:`from_bytes` is the
    exact inverse (doubles round-trip bit-for-bit through the big-endian
    f64 encoding, which is what keeps the vectorized kernel's inputs
    identical to the row path's decoded values).
    """

    __slots__ = ("col_a", "col_b", "col_e", "col_d", "degrees", "pages", "slots", "kinds")

    def __init__(self):
        self.col_a = array("d")
        self.col_b = array("d")
        self.col_e = array("d")
        self.col_d = array("d")
        self.degrees = array("d")
        self.pages = array("L")
        self.slots = array("H")
        self.kinds = array("B")

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    @staticmethod
    def capacity(page_size: int) -> int:
        """Entries one serialized page can hold inside a slotted Page record."""
        from ..storage.page import Page

        usable = page_size - Page.HEADER_SIZE - Page.RECORD_OVERHEAD - _HEADER.size
        return max(1, usable // ENTRY_BYTES)

    def fits(self, page_size: int) -> bool:
        """Whether one more entry still fits at ``page_size``."""
        return len(self) < self.capacity(page_size)

    def append(
        self,
        a: float,
        b: float,
        e: float,
        d: float,
        degree: float,
        page: int,
        slot: int,
        kind: int,
    ) -> None:
        """Append one entry to every column."""
        self.col_a.append(a)
        self.col_b.append(b)
        self.col_e.append(e)
        self.col_d.append(d)
        self.degrees.append(degree)
        self.pages.append(page)
        self.slots.append(slot)
        self.kinds.append(kind)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.col_a)

    def entry(self, i: int) -> Tuple[float, float, float, float, float, int, int, int]:
        """Row ``i`` gathered back from the columns (tests and repr only)."""
        return (
            self.col_a[i], self.col_b[i], self.col_e[i], self.col_d[i],
            self.degrees[i], self.pages[i], self.slots[i], self.kinds[i],
        )

    def supports(self) -> Iterator[Tuple[float, float]]:
        """The ``(b(v), e(v))`` support intervals, i.e. the ``(a, d)`` columns."""
        return zip(self.col_a, self.col_d)

    @property
    def min_a(self) -> float:
        """Smallest support begin on the page (pages are sorted, so entry 0)."""
        return self.col_a[0]

    @property
    def max_a(self) -> float:
        """Largest support begin on the page (pages are sorted, so the last)."""
        return self.col_a[-1]

    @property
    def max_d(self) -> float:
        """Largest support end on the page — the fence key range scans prune on."""
        return max(self.col_d)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize column-major: count header, then each column contiguous."""
        n = len(self)
        parts = [_HEADER.pack(n)]
        for col in (self.col_a, self.col_b, self.col_e, self.col_d, self.degrees):
            parts.append(struct.pack(f">{n}d", *col))
        parts.append(struct.pack(f">{n}L", *self.pages))
        parts.append(struct.pack(f">{n}H", *self.slots))
        parts.append(bytes(self.kinds))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColumnarPage":
        """Parse a serialized columnar page (inverse of :meth:`to_bytes`)."""
        (n,) = _HEADER.unpack_from(data, 0)
        offset = _HEADER.size
        page = cls()
        for name in ("col_a", "col_b", "col_e", "col_d", "degrees"):
            col = array("d", struct.unpack_from(f">{n}d", data, offset))
            setattr(page, name, col)
            offset += 8 * n
        page.pages = array("L", struct.unpack_from(f">{n}L", data, offset))
        offset += 4 * n
        page.slots = array("H", struct.unpack_from(f">{n}H", data, offset))
        offset += 2 * n
        page.kinds = array("B", data[offset:offset + n])
        return page

    def __repr__(self) -> str:
        return f"ColumnarPage({len(self)} entries)"
