"""Columnar storage, vectorized trapezoid kernels, and the support-interval index.

The paper replaces tuple-at-a-time nested iteration with sort-merge over
the support-interval order ``(b(v), e(v))``; this package pushes the same
idea one layer down.  Trapezoid attributes are stored column-at-a-time
(:mod:`~repro.columnar.pages`), comparison degrees for a probe against a
whole column batch are computed in one pass by a pure-python vectorized
kernel (:mod:`~repro.columnar.kernel`), and a persistent secondary index
keyed on the interval order (:mod:`~repro.columnar.index`) turns selective
``WITH D >= z`` predicates and joins into index range scans and
index-assisted merge-joins (:mod:`~repro.columnar.operators`) instead of
full external sorts.
"""

from .index import SupportIntervalIndex, UnsupportedIndexError, index_file_name
from .kernel import (
    batch_eq_necessity,
    batch_eq_possibility,
    batch_le_possibility,
    batch_lt_possibility,
)
from .operators import IndexMergeJoinOp, IndexScan
from .pages import ColumnarPage, KIND_POINT, KIND_TRAPEZOID

__all__ = [
    "ColumnarPage",
    "IndexMergeJoinOp",
    "IndexScan",
    "KIND_POINT",
    "KIND_TRAPEZOID",
    "SupportIntervalIndex",
    "UnsupportedIndexError",
    "batch_eq_necessity",
    "batch_eq_possibility",
    "batch_le_possibility",
    "batch_lt_possibility",
    "index_file_name",
]
