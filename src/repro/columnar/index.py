"""A persistent secondary index on the support-interval order ``(b(v), e(v))``.

The paper's Definition 3.1 orders fuzzy values lexicographically by
support begin and end — the same key every external sort in the engine
uses (``sort_key(value) = value.interval()``).  This module persists that
order once per ``(table, attribute)`` as a file of
:class:`~repro.columnar.pages.ColumnarPage` images, so a selective probe
no longer needs to sort anything: the entries overlapping the probe's
support form a contiguous range of the index, found by fence keys without
touching the rest.

Each entry carries the full trapezoid ``(a, b, e, d)``, the tuple's
membership degree, and the row id ``(heap page, slot)``; an index range
scan can therefore compute the comparison degree *before* fetching a
single data page, and fetch only the pages of qualifying rows.

The index lives on the same :class:`~repro.storage.SimulatedDisk` as the
relation (file ``__idx_{table}_{attribute}``) so its page reads are
charged like any other I/O; :meth:`SupportIntervalIndex.fetch`
additionally tags the read via ``stats.count_index_read`` so EXPLAIN
ANALYZE can split index traffic from data traffic.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Tuple

from ..errors import FuzzyQueryError
from ..fuzzy.crisp import CrispNumber
from ..fuzzy.trapezoid import TrapezoidalNumber
from ..storage.disk import SimulatedDisk
from ..storage.heap import HeapFile
from ..storage.page import Page
from .pages import ColumnarPage, KIND_POINT, KIND_TRAPEZOID


class UnsupportedIndexError(FuzzyQueryError):
    """The attribute holds values the interval order cannot index.

    Only numeric crisp and trapezoidal values have the single-interval
    support the ``(b(v), e(v))`` key requires; labels and discrete
    distributions do not.
    """


def index_file_name(table: str, attribute: str) -> str:
    """The disk file holding the index of ``table.attribute``."""
    return f"__idx_{table}_{attribute}"


class IndexEntry(NamedTuple):
    """One index posting, gathered back into row form for the join stream."""

    a: float        # support begin  b(v)
    b: float        # core begin
    e: float        # core end
    d: float        # support end    e(v)
    degree: float   # tuple membership degree mu_R(r)
    page: int       # heap page of the indexed tuple
    slot: int       # record slot within that page
    kind: int       # KIND_POINT or KIND_TRAPEZOID
    idx_page: int   # index page this posting came from


def probe_support(value) -> Tuple[float, float]:
    """The closed support interval ``[b(v), e(v)]`` of a probe value."""
    begin, end = value.interval()
    return begin, end


def _entry_of(value, degree: float, page: int, slot: int):
    """The ``(a, b, e, d, degree, page, slot, kind)`` posting for one value."""
    if isinstance(value, CrispNumber):
        v = value.value
        return (v, v, v, v, degree, page, slot, KIND_POINT)
    if isinstance(value, TrapezoidalNumber):
        kind = KIND_POINT if value.a == value.d else KIND_TRAPEZOID
        return (value.a, value.b, value.c, value.d, degree, page, slot, kind)
    raise UnsupportedIndexError(
        f"cannot index {type(value).__name__} values on the support-interval order"
    )


class SupportIntervalIndex:
    """Columnar postings of one attribute, sorted by ``(b(v), e(v))``.

    Built with :meth:`build` from a heap file, persisted on the disk as
    one :class:`ColumnarPage` per disk page, with an in-memory fence-key
    directory (``first_a``, ``last_a``, ``max_d`` per page) that
    :meth:`overlapping_pages` prunes range scans with.  The directory is
    the analogue of a B-tree's inner levels; at the simulated scale one
    flat level suffices and keeps the page-count accounting honest (only
    leaf pages are charged, as inner nodes would be pinned in any real
    buffer pool).
    """

    def __init__(self, table: str, attribute: str, column: int, file_name: Optional[str] = None):
        self.table = table
        self.attribute = attribute
        #: Position of the indexed attribute in the relation's schema.
        self.column = column
        #: Versioned indexes (the write path) override the default name
        #: with an epoch-suffixed one so in-flight snapshot reads keep a
        #: consistent index while a new version is staged.
        self.file = file_name or index_file_name(table, attribute)
        #: Fence keys per index page: ``(first_a, last_a, max_d, n_entries)``.
        self.directory: List[Tuple[float, float, float, int]] = []
        self.n_entries = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        table: str,
        attribute: str,
        heap: HeapFile,
        disk: SimulatedDisk,
        file_name: Optional[str] = None,
    ) -> "SupportIntervalIndex":
        """Scan ``heap`` and persist a fresh index of ``attribute``.

        The build reads every data page once and writes the sorted
        postings; its I/O charges into whatever stats context is active
        (sessions wrap builds in a scratch ledger so queries are not
        billed for index maintenance).  Raises
        :class:`UnsupportedIndexError` — leaving no file behind — when
        any value of the attribute lacks a single-interval support.
        """
        column = heap.schema.index_of(attribute)
        index = cls(table, attribute, column, file_name)
        postings = []
        for page_index in range(heap.n_pages):
            page = disk.read_page(heap.name, page_index)
            for slot, record in enumerate(page.records()):
                t = heap.serializer.decode(record)
                postings.append(_entry_of(t.values[column], t.degree, page_index, slot))
        index._persist(postings, disk)
        return index

    def _persist(self, postings: List[tuple], disk: SimulatedDisk) -> None:
        """Sort ``postings`` into interval order and (re)write the file.

        The sort key ends in ``(page, slot)`` — a unique tie-break — so
        the persisted image is a pure function of the posting *set*: a
        staged delta merge and a from-scratch rebuild produce
        bit-identical files (the recovery-idempotence property test
        leans on this).
        """
        # The interval order: support begin, then support end; page/slot
        # break ties deterministically.
        postings.sort(key=lambda p: (p[0], p[3], p[5], p[6]))

        disk.delete(self.file)
        disk.create(self.file)
        capacity = ColumnarPage.capacity(disk.page_size)
        self.directory = []
        for start in range(0, len(postings), capacity):
            columnar = ColumnarPage()
            for posting in postings[start:start + capacity]:
                columnar.append(*posting)
            carrier = Page(disk.page_size)
            carrier.append(columnar.to_bytes())
            disk.append_page(self.file, carrier)
            self.directory.append(
                (columnar.min_a, columnar.max_a, columnar.max_d, len(columnar))
            )
        self.n_entries = len(postings)

    @classmethod
    def from_rows(
        cls,
        table: str,
        attribute: str,
        schema,
        tuples,
        placements: List[Tuple[int, int]],
        disk: SimulatedDisk,
        file_name: Optional[str] = None,
    ) -> "SupportIntervalIndex":
        """Persist an index from in-memory rows and their known row ids.

        The write path already holds the installed version's tuples in
        memory *and* their ``(page, slot)`` placements (recorded by
        :meth:`~repro.storage.heap.HeapFile.load`), so small update /
        delete transactions can patch the index image without re-reading
        a single heap page.  :meth:`_persist` sorts deterministically, so
        the result is bit-identical to a full :meth:`build` over the same
        heap — the patch is pure I/O savings, never a different file.
        """
        column = schema.index_of(attribute)
        index = cls(table, attribute, column, file_name)
        postings = [
            _entry_of(t.values[column], t.degree, page, slot)
            for t, (page, slot) in zip(tuples, placements)
        ]
        index._persist(postings, disk)
        return index

    def merged_with_tail(
        self,
        heap: HeapFile,
        disk: SimulatedDisk,
        first_new_page: int,
        skip_slots: int,
        file_name: str,
    ) -> "SupportIntervalIndex":
        """Staged delta + merge for an append-only heap change.

        When a committed transaction only *appended* tuples, every
        existing posting's ``(page, slot)`` row id is still valid — the
        deterministic greedy repack leaves the shared prefix of pages
        untouched.  The delta is the postings of the appended tail:
        heap pages from ``first_new_page`` on, skipping the first
        ``skip_slots`` records of that page (they predate the append).
        Existing postings are read back from this index (charged as
        index reads), merged with the delta, and persisted under
        ``file_name`` as a new index version — no full heap rescan.
        """
        postings = [
            (e.a, e.b, e.e, e.d, e.degree, e.page, e.slot, e.kind)
            for e in self.scan_entries(disk)
        ]
        for page_index in range(first_new_page, heap.n_pages):
            page = disk.read_page(heap.name, page_index)
            for slot, record in enumerate(page.records()):
                if page_index == first_new_page and slot < skip_slots:
                    continue
                t = heap.serializer.decode(record)
                postings.append(_entry_of(t.values[self.column], t.degree, page_index, slot))
        merged = SupportIntervalIndex(self.table, self.attribute, self.column, file_name)
        merged._persist(postings, disk)
        return merged

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_pages(self) -> int:
        """Number of index pages on disk."""
        return len(self.directory)

    def overlapping_pages(self, begin: float, end: float) -> List[int]:
        """Index pages that may hold entries with support ∩ ``[begin, end]`` ≠ ∅.

        Pages are sorted by first support begin, so the walk stops at the
        first page opening past ``end``; pages whose largest support end
        falls short of ``begin`` cannot overlap and are skipped.
        """
        hits = []
        for i, (first_a, _last_a, max_d, _n) in enumerate(self.directory):
            if first_a > end:
                break
            if max_d < begin:
                continue
            hits.append(i)
        return hits

    def pages_below(self, end: float) -> List[int]:
        """Index pages that may hold entries with support begin ≤ ``end``.

        The page prune for ``attr < probe`` / ``attr <= probe``: a tuple
        whose support starts above the probe's support end is certainly
        greater, degree 0.  Pages are sorted by first support begin, so
        the qualifying pages are a prefix.
        """
        hits = []
        for i, (first_a, _last_a, _max_d, _n) in enumerate(self.directory):
            if first_a > end:
                break
            hits.append(i)
        return hits

    def pages_above(self, begin: float) -> List[int]:
        """Index pages that may hold entries with support end ≥ ``begin``.

        The page prune for ``attr > probe`` / ``attr >= probe``: a tuple
        whose support ends below the probe's support begin is certainly
        smaller, degree 0.  Support *ends* are not sorted, so there is no
        early stop — only the per-page ``max_d`` fence skips pages.
        """
        return [
            i
            for i, (_first_a, _last_a, max_d, _n) in enumerate(self.directory)
            if max_d >= begin
        ]

    def probe_pages(self, op, begin: float, end: float) -> List[int]:
        """The index pages an ``attr op probe[begin, end]`` scan must visit."""
        from ..fuzzy.compare import Op

        if op in (Op.LT, Op.LE):
            return self.pages_below(end)
        if op in (Op.GT, Op.GE):
            return self.pages_above(begin)
        return self.overlapping_pages(begin, end)

    def candidate_entries(self, begin: float, end: float) -> int:
        """Postings on the pages a range scan for ``[begin, end]`` would touch.

        The planner's cardinality input: an upper bound on how many entries
        the vectorized kernel will actually examine.
        """
        return sum(self.directory[i][3] for i in self.overlapping_pages(begin, end))

    def candidate_entries_for(self, op, begin: float, end: float) -> int:
        """Postings on the pages an ``op`` probe scan would touch."""
        return sum(self.directory[i][3] for i in self.probe_pages(op, begin, end))

    def fetch(self, disk: SimulatedDisk, page_index: int) -> ColumnarPage:
        """Read one index page, charging a (tagged) page read."""
        page = disk.read_page(self.file, page_index)
        disk.stats.count_index_read()
        return ColumnarPage.from_bytes(next(page.records()))

    def scan_entries(self, disk: SimulatedDisk) -> Iterator[IndexEntry]:
        """Every posting in interval order, reading index pages lazily."""
        for page_index in range(self.n_pages):
            columnar = self.fetch(disk, page_index)
            for i in range(len(columnar)):
                yield IndexEntry(*columnar.entry(i), page_index)

    def __repr__(self) -> str:
        return (
            f"SupportIntervalIndex({self.table}.{self.attribute}, "
            f"{self.n_entries} entries, {self.n_pages} pages)"
        )
