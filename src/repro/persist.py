"""Saving and loading a fuzzy database as a directory of JSON files.

Layout::

    <path>/
      catalog.json            table schemas + vocabulary definitions
      tables/<NAME>.json      one JSON array of records per relation

Everything round-trips through the textual value syntax of
:mod:`repro.data.io`, so saved databases are human-readable and editable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .data.io import LoadError, _value_to_json, dump_json, load_json, parse_value
from .data.schema import Attribute, Schema
from .data.types import AttributeType
from .db import FuzzyDatabase
from .fuzzy.linguistic import Vocabulary

FORMAT_VERSION = 1


def save_database(db: FuzzyDatabase, path: Union[str, Path]) -> None:
    """Write the database's catalog, vocabulary, and tables under ``path``."""
    root = Path(path)
    tables_dir = root / "tables"
    tables_dir.mkdir(parents=True, exist_ok=True)

    manifest = {
        "format_version": FORMAT_VERSION,
        "tables": {},
        "vocabulary": [],
    }
    for name in db.tables():
        relation = db.table(name)
        manifest["tables"][name] = [
            {
                "name": attr.name,
                "type": attr.type.value,
                "domain": attr.domain,
            }
            for attr in relation.schema
        ]
        (tables_dir / f"{name}.json").write_text(dump_json(relation))
    for term, domain, dist in db.catalog.vocabulary.export():
        manifest["vocabulary"].append(
            {"term": term, "domain": domain, "shape": _value_to_json(dist)}
        )
    (root / "catalog.json").write_text(json.dumps(manifest, indent=2, sort_keys=True))


def load_database(path: Union[str, Path], **db_kwargs) -> FuzzyDatabase:
    """Reconstruct a :class:`FuzzyDatabase` saved by :func:`save_database`."""
    root = Path(path)
    manifest_path = root / "catalog.json"
    if not manifest_path.exists():
        raise LoadError(f"no catalog.json under {root}")
    manifest = json.loads(manifest_path.read_text())
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise LoadError(f"unsupported format version {version!r}")

    vocabulary = Vocabulary()
    for entry in manifest.get("vocabulary", []):
        vocabulary.define(
            entry["term"],
            parse_value(entry["shape"]),
            entry.get("domain"),
        )

    db = FuzzyDatabase(vocabulary, **db_kwargs)
    for name, columns in manifest.get("tables", {}).items():
        attrs = [
            Attribute(c["name"], AttributeType(c["type"]), c.get("domain"))
            for c in columns
        ]
        schema = Schema(attrs)
        table_path = root / "tables" / f"{name}.json"
        if not table_path.exists():
            raise LoadError(f"missing table file {table_path}")
        db.register(name, load_json(table_path.read_text(), schema, vocabulary))
    return db
