"""Parameterizations of the paper's Tables 1-4 and Fig. 3.

Each ``table*``/``fig3`` function runs the experiment at a configurable
*scale divisor* (default 32): tuple counts and buffer pages shrink by that
factor while the physical geometry (8 KB pages, 128-2048 B tuples) stays
fixed, so every page-count ratio the algorithms see matches the paper's
setup.  Results carry the paper's reference numbers next to ours; the
reproduction targets are the *shapes* — who wins, how the speedup moves
with size, where time is spent — not 1992 wall-clock seconds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sort.external import SORT_PHASE
from ..workload.generator import WorkloadSpec, build_workload
from .methods import run_merge_join, run_nested_loop

#: Paper geometry constants.
PAGE_SIZE = 8 * 1024
TUPLES_PER_MB = 8000          # 128-byte tuples
PAPER_BUFFER_PAGES = 256      # 2 MB of 8 KB pages


def default_scale() -> int:
    """Scale divisor, overridable with the REPRO_SCALE environment variable."""
    return int(os.environ.get("REPRO_SCALE", "32"))


@dataclass
class ExperimentResult:
    """One table/figure: measured rows plus the paper's reference rows."""

    name: str
    headers: List[str]
    rows: List[Dict[str, object]]
    paper: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def format(self) -> str:
        """Render the result as an aligned fixed-width table with a title."""
        lines = [f"== {self.name} =="]
        if self.notes:
            lines.append(self.notes)
        widths = {h: len(h) for h in self.headers}
        rendered = []
        for row in self.rows:
            cells = {h: _fmt(row.get(h)) for h in self.headers}
            rendered.append(cells)
            for h in self.headers:
                widths[h] = max(widths[h], len(cells[h]))
        lines.append(" | ".join(h.ljust(widths[h]) for h in self.headers))
        lines.append("-+-".join("-" * widths[h] for h in self.headers))
        for cells in rendered:
            lines.append(" | ".join(cells[h].ljust(widths[h]) for h in self.headers))
        if self.paper:
            lines.append("")
            lines.append("-- paper reference --")
            pheaders = list(self.paper[0].keys())
            pw = {h: max(len(h), max(len(_fmt(r.get(h))) for r in self.paper)) for h in pheaders}
            lines.append(" | ".join(h.ljust(pw[h]) for h in pheaders))
            for row in self.paper:
                lines.append(" | ".join(_fmt(row.get(h)).ljust(pw[h]) for h in pheaders))
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def _scaled(n: int, scale: int) -> int:
    return max(16, n // scale)


def _buffer_pages(scale: int) -> int:
    # Floor at 8 pages: below that the scaled buffer violates the paper's
    # standing assumption that the largest Rng(r) fits in memory.
    return max(8, PAPER_BUFFER_PAGES // scale)


# ----------------------------------------------------------------------
# Table 1 — equal relation sizes, 1 to 32 MB
# ----------------------------------------------------------------------

TABLE1_PAPER = [
    {"size_mb": 1, "nested_loop_s": 501, "merge_join_s": 40, "speedup": 12.5},
    {"size_mb": 2, "nested_loop_s": 1965, "merge_join_s": 84, "speedup": 23.4},
    {"size_mb": 4, "nested_loop_s": 7754, "merge_join_s": 223, "speedup": 34.8},
    {"size_mb": 8, "nested_loop_s": 30879, "merge_join_s": 852, "speedup": 36.2},
    {"size_mb": 16, "nested_loop_s": None, "merge_join_s": 1897, "speedup": None},
    {"size_mb": 32, "nested_loop_s": None, "merge_join_s": 3733, "speedup": None},
]

#: Beyond this size the paper reports "the nested loop method takes too
#: long to terminate"; we skip it there too.
TABLE1_NL_LIMIT_MB = 8


def table1(scale: Optional[int] = None, sizes_mb=(1, 2, 4, 8, 16, 32)) -> ExperimentResult:
    """Response time of both methods as equal relation sizes double."""
    scale = scale or default_scale()
    buffer_pages = _buffer_pages(scale)
    rows = []
    for mb in sizes_mb:
        n = _scaled(mb * TUPLES_PER_MB, scale)
        spec = WorkloadSpec(n_outer=n, n_inner=n, join_fanout=7, tuple_size=128)
        workload = build_workload(spec, page_size=PAGE_SIZE)
        mj = run_merge_join(workload, buffer_pages)
        row: Dict[str, object] = {
            "size_mb": mb,
            "n_tuples": n,
            "merge_join_s": mj.response_seconds,
            "mj_ios": mj.page_ios,
        }
        if mb <= TABLE1_NL_LIMIT_MB:
            nl = run_nested_loop(workload, buffer_pages)
            row["nested_loop_s"] = nl.response_seconds
            row["nl_ios"] = nl.page_ios
            row["speedup"] = nl.response_seconds / mj.response_seconds
            if nl.n_answers != mj.n_answers:
                raise AssertionError("methods disagree on the answer cardinality")
        else:
            row["nested_loop_s"] = None
            row["nl_ios"] = None
            row["speedup"] = None
        rows.append(row)
    return ExperimentResult(
        name="Table 1: response time vs relation size (equal relations, C=7)",
        headers=["size_mb", "n_tuples", "nested_loop_s", "merge_join_s", "speedup", "nl_ios", "mj_ios"],
        rows=rows,
        paper=TABLE1_PAPER,
        notes=f"scale divisor {scale}: {TUPLES_PER_MB}//{scale} tuples per paper-MB, "
        f"buffer {_buffer_pages(scale)} pages",
    )


# ----------------------------------------------------------------------
# Table 2 — fixed 4 MB outer, growing inner
# ----------------------------------------------------------------------

TABLE2_PAPER = [
    {"inner_mb": 2, "nested_loop_s": 3912, "merge_join_s": 156, "speedup": 25.1},
    {"inner_mb": 4, "nested_loop_s": 7790, "merge_join_s": 205, "speedup": 38.0},
    {"inner_mb": 8, "nested_loop_s": 15489, "merge_join_s": 476, "speedup": 32.5},
    {"inner_mb": 16, "nested_loop_s": 31049, "merge_join_s": 2152, "speedup": 14.4},
]

TABLE3_PAPER = [
    {"inner_mb": 2, "cpu_pct": 76, "sorting_pct": 38.7},
    {"inner_mb": 4, "cpu_pct": 63, "sorting_pct": 52.5},
    {"inner_mb": 8, "cpu_pct": 51, "sorting_pct": 61.9},
    {"inner_mb": 16, "cpu_pct": 24, "sorting_pct": 84.1},
]


def _table2_runs(scale: int, inner_sizes_mb):
    buffer_pages = _buffer_pages(scale)
    n_outer = _scaled(4 * TUPLES_PER_MB, scale)
    runs = []
    for mb in inner_sizes_mb:
        n_inner = _scaled(mb * TUPLES_PER_MB, scale)
        spec = WorkloadSpec(n_outer=n_outer, n_inner=n_inner, join_fanout=7, tuple_size=128)
        workload = build_workload(spec, page_size=PAGE_SIZE)
        nl = run_nested_loop(workload, buffer_pages)
        mj = run_merge_join(workload, buffer_pages)
        runs.append((mb, nl, mj))
    return runs


def table2(scale: Optional[int] = None, inner_sizes_mb=(2, 4, 8, 16)) -> ExperimentResult:
    """Response time with the outer relation fixed at 4 MB."""
    scale = scale or default_scale()
    rows = []
    for mb, nl, mj in _table2_runs(scale, inner_sizes_mb):
        rows.append(
            {
                "inner_mb": mb,
                "nested_loop_s": nl.response_seconds,
                "merge_join_s": mj.response_seconds,
                "speedup": nl.response_seconds / mj.response_seconds,
            }
        )
    return ExperimentResult(
        name="Table 2: response time vs inner relation size (outer fixed at 4 MB)",
        headers=["inner_mb", "nested_loop_s", "merge_join_s", "speedup"],
        rows=rows,
        paper=TABLE2_PAPER,
        notes=f"scale divisor {scale}",
    )


def table3(scale: Optional[int] = None, inner_sizes_mb=(2, 4, 8, 16)) -> ExperimentResult:
    """Merge-join time breakdown: CPU share and sorting share."""
    scale = scale or default_scale()
    rows = []
    for mb, _nl, mj in _table2_runs(scale, inner_sizes_mb):
        rows.append(
            {
                "inner_mb": mb,
                "cpu_pct": 100.0 * mj.cpu_fraction,
                "sorting_pct": 100.0 * mj.phase_fraction(SORT_PHASE),
            }
        )
    return ExperimentResult(
        name="Table 3: merge-join time breakdown (CPU %, sorting %)",
        headers=["inner_mb", "cpu_pct", "sorting_pct"],
        rows=rows,
        paper=TABLE3_PAPER,
        notes=f"scale divisor {scale}; sorting share includes its CPU and I/O",
    )


# ----------------------------------------------------------------------
# Table 4 — tuple size sweep (I/O impact)
# ----------------------------------------------------------------------

TABLE4_PAPER = [
    {"tuple_bytes": 128, "nested_loop_s": 485, "merge_join_s": 20},
    {"tuple_bytes": 256, "nested_loop_s": 514, "merge_join_s": 37},
    {"tuple_bytes": 512, "nested_loop_s": 584, "merge_join_s": 94},
    {"tuple_bytes": 1024, "nested_loop_s": 729, "merge_join_s": 487},
    {"tuple_bytes": 2048, "nested_loop_s": 1077, "merge_join_s": 896},
]


def table4(scale: Optional[int] = None, tuple_sizes=(128, 256, 512, 1024, 2048)) -> ExperimentResult:
    """8,000 tuples, C=1, tuple size 128 to 2048 bytes."""
    scale = scale or default_scale()
    buffer_pages = _buffer_pages(scale)
    n = _scaled(8000, scale)
    rows = []
    for size in tuple_sizes:
        spec = WorkloadSpec(n_outer=n, n_inner=n, join_fanout=1, tuple_size=size)
        workload = build_workload(spec, page_size=PAGE_SIZE)
        nl = run_nested_loop(workload, buffer_pages)
        mj = run_merge_join(workload, buffer_pages)
        rows.append(
            {
                "tuple_bytes": size,
                "nested_loop_s": nl.response_seconds,
                "merge_join_s": mj.response_seconds,
                "nl_cpu_pct": 100.0 * nl.cpu_fraction,
                "mj_cpu_pct": 100.0 * mj.cpu_fraction,
            }
        )
    return ExperimentResult(
        name="Table 4: response time vs tuple size (8,000 tuples, C=1)",
        headers=["tuple_bytes", "nested_loop_s", "merge_join_s", "nl_cpu_pct", "mj_cpu_pct"],
        rows=rows,
        paper=TABLE4_PAPER,
        notes=f"scale divisor {scale}; CPU share drops as tuples grow (I/O dominates)",
    )


# ----------------------------------------------------------------------
# Fig. 3 — join fan-out sweep for the merge-join
# ----------------------------------------------------------------------

def fig3(scale: Optional[int] = None, fanouts=(1, 2, 4, 8, 16, 32, 64, 128)) -> ExperimentResult:
    """Merge-join response time, #IOs, and CPU time as C grows (8 MB)."""
    scale = scale or default_scale()
    buffer_pages = _buffer_pages(scale)
    n = _scaled(8 * TUPLES_PER_MB, scale)
    rows = []
    for c in fanouts:
        spec = WorkloadSpec(n_outer=n, n_inner=n, join_fanout=c, tuple_size=128)
        workload = build_workload(spec, page_size=PAGE_SIZE)
        mj = run_merge_join(workload, buffer_pages)
        rows.append(
            {
                "fanout_c": c,
                "response_s": mj.response_seconds,
                "cpu_s": mj.cpu_seconds,
                "page_ios": mj.page_ios,
                "fuzzy_evals": mj.stats.total.fuzzy_evaluations,
            }
        )
    return ExperimentResult(
        name="Fig. 3: merge-join vs join fan-out C (8 MB relations)",
        headers=["fanout_c", "response_s", "cpu_s", "page_ios", "fuzzy_evals"],
        rows=rows,
        notes=(
            f"scale divisor {scale}; paper shape: IOs stay flat while CPU "
            "time grows with C"
        ),
    )


ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig3": fig3,
}
