"""The two evaluation methods the experiments compare.

For the type-J query shape used throughout Section 9 —

    SELECT R.ID FROM R WHERE R.Y in (SELECT S.Z FROM S WHERE S.V = R.U)

— the satisfaction degree of an outer tuple is

    d_r = min(mu_R(r), max_s min(mu_S(s), d(joins)))

so both methods reduce to a per-R-tuple *max* fold over pair degrees:

* :func:`run_nested_loop` — the only strategy available to the nested
  form: block nested loop, examining all ``n_R * n_S`` pairs;
* :func:`run_merge_join` — the unnested form on the extended merge-join,
  examining only the pairs inside each ``Rng(r)``.

Both return a :class:`MethodResult` with the answer cardinality, raw event
counters, cost-model response time, and wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..data.relation import FuzzyRelation
from ..data.schema import Schema
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import Op, intervals_intersect, possibility
from ..join.merge_join import MergeJoin
from ..join.nested_loop import NestedLoopJoin
from ..storage.costs import PAPER_1992, CostModel
from ..storage.stats import OperationStats
from ..workload.generator import JoinWorkload


@dataclass
class MethodResult:
    """Everything one method run reports."""

    method: str
    n_answers: int
    stats: OperationStats
    wall_seconds: float
    cost_model: CostModel = PAPER_1992

    @property
    def page_ios(self) -> int:
        """Total page reads plus writes across all phases."""
        return self.stats.total.page_ios

    @property
    def response_seconds(self) -> float:
        """Modelled response time (I/O + CPU) under the 1992 cost model."""
        return self.cost_model.response_time(self.stats)

    @property
    def cpu_seconds(self) -> float:
        """Modelled CPU seconds across all phases."""
        return self.cost_model.cpu_seconds(self.stats.total)

    @property
    def io_seconds(self) -> float:
        """Modelled I/O seconds across all phases."""
        return self.cost_model.io_seconds(self.stats.total)

    @property
    def cpu_fraction(self) -> float:
        """CPU time as a fraction of response time (Table 3 row 1)."""
        return self.cost_model.cpu_fraction(self.stats)

    def phase_fraction(self, phase: str) -> float:
        """Fraction of modelled response time spent in the named phase."""
        return self.cost_model.phase_fraction(self.stats, phase)


def _pair_degree_factory(left_index: int, right_index: int, op: Op):
    """Equi-join pair degree with a support-overlap fast path.

    The overlap test mirrors what a real fuzzy library does first; the
    evaluation is charged as one fuzzy evaluation either way.
    """

    def degree(r: FuzzyTuple, s: FuzzyTuple, stats: Optional[OperationStats]) -> float:
        if stats is not None:
            stats.count_fuzzy()
        left, right = r[left_index], s[right_index]
        if op is Op.EQ and not intervals_intersect(left, right):
            return 0.0
        return min(r.degree, s.degree, possibility(left, op, right))

    return degree


def _project_answers(
    results, outer_schema: Schema, project_attr: str
) -> FuzzyRelation:
    """max-dedup projection of ``(r, degree)`` results onto one attribute."""
    index = outer_schema.index_of(project_attr)
    out = FuzzyRelation(outer_schema.project([project_attr]))
    for r, degree in results:
        if degree > 0.0:
            out.add(FuzzyTuple((r[index],), degree))
    return out


def run_nested_loop(
    workload: JoinWorkload,
    buffer_pages: int,
    join_attr: str = "X",
    project_attr: str = "ID",
    op: Op = Op.EQ,
    cost_model: CostModel = PAPER_1992,
) -> MethodResult:
    """Evaluate the nested query with the block nested-loop strategy."""
    stats = OperationStats()
    outer, inner = workload.outer, workload.inner
    pair = _pair_degree_factory(
        outer.schema.index_of(join_attr), inner.schema.index_of(join_attr), op
    )
    join = NestedLoopJoin(workload.disk, buffer_pages, stats)
    start = time.perf_counter()
    folded = join.fold(
        outer,
        inner,
        pair,
        init=lambda r: 0.0,
        step=lambda best, s, degree: degree if degree > best else best,
    )
    answers = _project_answers(folded, outer.schema, project_attr)
    wall = time.perf_counter() - start
    return MethodResult("nested-loop", len(answers), stats, wall, cost_model)


def run_merge_join(
    workload: JoinWorkload,
    buffer_pages: int,
    join_attr: str = "X",
    project_attr: str = "ID",
    op: Op = Op.EQ,
    cost_model: CostModel = PAPER_1992,
) -> MethodResult:
    """Evaluate the unnested query with the extended merge-join."""
    stats = OperationStats()
    outer, inner = workload.outer, workload.inner
    pair = _pair_degree_factory(
        outer.schema.index_of(join_attr), inner.schema.index_of(join_attr), op
    )
    join = MergeJoin(workload.disk, buffer_pages, stats)
    start = time.perf_counter()
    folded = join.fold(
        outer,
        join_attr,
        inner,
        join_attr,
        pair,
        init=lambda r: 0.0,
        step=lambda best, s, degree: degree if degree > best else best,
    )
    answers = _project_answers(folded, outer.schema, project_attr)
    wall = time.perf_counter() - start
    return MethodResult("merge-join", len(answers), stats, wall, cost_model)


def verify_methods_agree(
    workload: JoinWorkload, buffer_pages: int
) -> Tuple[MethodResult, MethodResult]:
    """Run both methods and assert identical fuzzy answers (for tests)."""
    stats_nl = OperationStats()
    stats_mj = OperationStats()
    outer, inner = workload.outer, workload.inner
    pair = _pair_degree_factory(1, 1, Op.EQ)
    nl: List[Tuple[float, float, float]] = sorted(
        (r[0].value, s[0].value, round(d, 9))
        for r, s, d in NestedLoopJoin(workload.disk, buffer_pages, stats_nl).pairs(
            outer, inner, pair
        )
    )
    mj = sorted(
        (r[0].value, s[0].value, round(d, 9))
        for r, s, d in MergeJoin(workload.disk, buffer_pages, stats_mj).pairs(
            outer, "X", inner, "X", pair
        )
    )
    if nl != mj:
        raise AssertionError("nested-loop and merge-join produced different joins")
    return (
        MethodResult("nested-loop", len(nl), stats_nl, 0.0),
        MethodResult("merge-join", len(mj), stats_mj, 0.0),
    )
