"""Storage-level evaluation of the JX and JALL rewrites.

Sections 5 and 7 argue the grouped anti-join forms still run in
``O(n_R log n_R + n_S log n_S)`` on the extended merge-join: "we join a
tuple r with all S-tuples in Rng(r) while they are in the main memory,
compute d_r and retrieve r.X when d_r > 0".  That is exactly a per-R-tuple
*min* fold with initial value ``mu_R(r)`` — pairs outside ``Rng(r)`` are
unsatisfiable and contribute the neutral-maximal ``mu_R(r)``.

The nested-loop baseline evaluates the same queries by scanning all of S
per block of R (the only strategy available to the nested forms).  These
functions power both correctness tests (against the naive evaluator) and
the beyond-the-paper benchmark ``test_bench_unnest_types``.
"""

from __future__ import annotations

import time

from ..data.relation import FuzzyRelation
from ..data.tuples import FuzzyTuple
from ..fuzzy.compare import Op
from ..join.merge_join import MergeJoin
from ..join.nested_loop import NestedLoopJoin
from ..join.predicates import JoinPredicate, all_quantifier_degree, antijoin_degree
from ..storage.costs import PAPER_1992, CostModel
from ..storage.stats import OperationStats
from ..workload.generator import JoinWorkload
from .methods import MethodResult


def _project(results, schema, attribute: str) -> FuzzyRelation:
    index = schema.index_of(attribute)
    out = FuzzyRelation(schema.project([attribute]))
    for r, degree in results:
        if degree > 0.0:
            out.add(FuzzyTuple((r[index],), degree))
    return out


def _jx_pair_degree(workload: JoinWorkload, join_attr: str):
    schema = workload.outer.schema
    return antijoin_degree(
        [JoinPredicate(schema, join_attr, Op.EQ, workload.inner.schema, join_attr)]
    )


def _jall_pair_degree(workload: JoinWorkload, join_attr: str, op: Op):
    schema = workload.outer.schema
    # The paper's JALL has a correlation join plus the quantified compare;
    # in the benchmark workload the join attribute doubles as both.
    join = [JoinPredicate(schema, join_attr, Op.EQ, workload.inner.schema, join_attr)]
    compare = JoinPredicate(schema, "ID", op, workload.inner.schema, "ID")
    return all_quantifier_degree(join, compare)


def run_jx_merge_join(
    workload: JoinWorkload,
    buffer_pages: int,
    join_attr: str = "X",
    project_attr: str = "ID",
    cost_model: CostModel = PAPER_1992,
) -> MethodResult:
    """``R.Y NOT IN (SELECT S.Z FROM S WHERE S.V = R.U)`` via merge-join."""
    stats = OperationStats()
    pair = _jx_pair_degree(workload, join_attr)
    join = MergeJoin(workload.disk, buffer_pages, stats)
    start = time.perf_counter()
    folded = join.fold(
        workload.outer,
        join_attr,
        workload.inner,
        join_attr,
        pair,
        init=lambda r: r.degree,       # pairs outside Rng(r) yield mu_R(r)
        step=lambda worst, s, d: d if d < worst else worst,
    )
    answers = _project(folded, workload.outer.schema, project_attr)
    wall = time.perf_counter() - start
    return MethodResult("jx-merge-join", len(answers), stats, wall, cost_model)


def run_jx_nested_loop(
    workload: JoinWorkload,
    buffer_pages: int,
    join_attr: str = "X",
    project_attr: str = "ID",
    cost_model: CostModel = PAPER_1992,
) -> MethodResult:
    """The nested NOT IN evaluated the only way it can be: nested loop."""
    stats = OperationStats()
    pair = _jx_pair_degree(workload, join_attr)
    join = NestedLoopJoin(workload.disk, buffer_pages, stats)
    start = time.perf_counter()
    folded = join.fold(
        workload.outer,
        workload.inner,
        pair,
        init=lambda r: r.degree,
        step=lambda worst, s, d: d if d < worst else worst,
    )
    answers = _project(folded, workload.outer.schema, project_attr)
    wall = time.perf_counter() - start
    return MethodResult("jx-nested-loop", len(answers), stats, wall, cost_model)


def run_jall_merge_join(
    workload: JoinWorkload,
    buffer_pages: int,
    op: Op = Op.LT,
    join_attr: str = "X",
    project_attr: str = "ID",
    cost_model: CostModel = PAPER_1992,
) -> MethodResult:
    """``R.Y op ALL (SELECT S.Z FROM S WHERE S.V = R.U)`` via merge-join."""
    stats = OperationStats()
    pair = _jall_pair_degree(workload, join_attr, op)
    join = MergeJoin(workload.disk, buffer_pages, stats)
    start = time.perf_counter()
    folded = join.fold(
        workload.outer,
        join_attr,
        workload.inner,
        join_attr,
        pair,
        init=lambda r: r.degree,
        step=lambda worst, s, d: d if d < worst else worst,
    )
    answers = _project(folded, workload.outer.schema, project_attr)
    wall = time.perf_counter() - start
    return MethodResult("jall-merge-join", len(answers), stats, wall, cost_model)


def run_jall_nested_loop(
    workload: JoinWorkload,
    buffer_pages: int,
    op: Op = Op.LT,
    join_attr: str = "X",
    project_attr: str = "ID",
    cost_model: CostModel = PAPER_1992,
) -> MethodResult:
    """Type-JALL baseline: evaluate the workload with a block nested loop."""
    stats = OperationStats()
    pair = _jall_pair_degree(workload, join_attr, op)
    join = NestedLoopJoin(workload.disk, buffer_pages, stats)
    start = time.perf_counter()
    folded = join.fold(
        workload.outer,
        workload.inner,
        pair,
        init=lambda r: r.degree,
        step=lambda worst, s, d: d if d < worst else worst,
    )
    answers = _project(folded, workload.outer.schema, project_attr)
    wall = time.perf_counter() - start
    return MethodResult("jall-nested-loop", len(answers), stats, wall, cost_model)
