"""Experiment driver: run every table/figure and render a report."""

from __future__ import annotations

import sys
import time
from typing import Dict, Iterable, Optional

from .experiments import ALL_EXPERIMENTS, ExperimentResult, default_scale


def run_all(
    scale: Optional[int] = None,
    only: Optional[Iterable[str]] = None,
    stream=None,
) -> Dict[str, ExperimentResult]:
    """Run all (or selected) experiments, printing each table as it lands."""
    stream = stream if stream is not None else sys.stdout
    names = list(only) if only else list(ALL_EXPERIMENTS)
    results: Dict[str, ExperimentResult] = {}
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        started = time.perf_counter()
        result = fn(scale=scale)
        elapsed = time.perf_counter() - started
        results[name] = result
        print(result.format(), file=stream)
        print(f"[{name} ran in {elapsed:.1f}s wall]", file=stream)
        print(file=stream)
    return results


def to_markdown(results: Dict[str, ExperimentResult], scale: Optional[int] = None) -> str:
    """Render experiment results as a Markdown report."""
    lines = ["# Experiment results", ""]
    lines.append(f"Scale divisor: {scale if scale is not None else default_scale()}")
    lines.append("")
    for name, result in results.items():
        lines.append(f"## {result.name}")
        if result.notes:
            lines.append("")
            lines.append(f"*{result.notes}*")
        lines.append("")
        headers = result.headers
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "---|" * len(headers))
        for row in result.rows:
            lines.append(
                "| " + " | ".join(_md_cell(row.get(h)) for h in headers) + " |"
            )
        if result.paper:
            lines.append("")
            lines.append("Paper reference:")
            lines.append("")
            pheaders = list(result.paper[0].keys())
            lines.append("| " + " | ".join(pheaders) + " |")
            lines.append("|" + "---|" * len(pheaders))
            for row in result.paper:
                lines.append(
                    "| " + " | ".join(_md_cell(row.get(h)) for h in pheaders) + " |"
                )
        lines.append("")
    return "\n".join(lines)


def _md_cell(value) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def main(argv=None) -> int:
    """CLI: ``python -m repro.bench.harness [--markdown FILE] [experiment ...]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    markdown_path = None
    if "--markdown" in argv:
        index = argv.index("--markdown")
        try:
            markdown_path = argv[index + 1]
        except IndexError:
            print("--markdown needs a file path")
            return 2
        del argv[index:index + 2]
    scale = default_scale()
    only = [a for a in argv if a in ALL_EXPERIMENTS]
    unknown = [a for a in argv if a not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {sorted(ALL_EXPERIMENTS)}")
        return 2
    results = run_all(scale=scale, only=only or None)
    if markdown_path is not None:
        with open(markdown_path, "w") as handle:
            handle.write(to_markdown(results, scale))
        print(f"markdown report written to {markdown_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
