"""Benchmark harness reproducing the paper's Tables 1-4 and Fig. 3."""

from .experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    default_scale,
    fig3,
    table1,
    table2,
    table3,
    table4,
)
from .methods import MethodResult, run_merge_join, run_nested_loop, verify_methods_agree

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "fig3",
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "default_scale",
    "MethodResult",
    "run_nested_loop",
    "run_merge_join",
    "verify_methods_agree",
]
