"""Reproduction of "Efficient Processing of Nested Fuzzy SQL Queries in a
Fuzzy Database" (Yang, Zhang, Liu, Wu, Yu, Nakajima, Rishe — ICDE 1995 /
IEEE TKDE 13(6), 2001).

Subpackages:

* :mod:`repro.fuzzy`    — possibility distributions, comparison degrees,
  fuzzy logic/arithmetic, the interval order, linguistic vocabularies;
* :mod:`repro.data`     — the fuzzy relational model;
* :mod:`repro.storage`  — paged storage with I/O accounting + cost model;
* :mod:`repro.sort`     — external merge sort on the interval order;
* :mod:`repro.join`     — the extended merge-join and the nested loop;
* :mod:`repro.sql`      — the Fuzzy SQL frontend;
* :mod:`repro.engine`   — naive nested-semantics evaluator, aggregates,
  physical operators, flat compiler, join-order optimizer;
* :mod:`repro.unnest`   — the unnesting rewrites (the paper's contribution);
* :mod:`repro.service`  — prepared statements and the LRU plan cache;
* :mod:`repro.wal`      — checksummed write-ahead log, group commit,
  epoch snapshots, crash recovery;
* :mod:`repro.faults`   — seeded fault plans and the fault-injecting disk;
* :mod:`repro.workload` — paper data and synthetic experiment workloads;
* :mod:`repro.bench`    — the Section 9 experiment harness.

Cross-cutting modules: :mod:`repro.errors` (the typed failure taxonomy),
:mod:`repro.resilience` (deadlines, cancellation, retry policies), and
:mod:`repro.shell` (the interactive SQL shell with ``\\log`` /
``\\metrics`` meta-commands).
"""

__version__ = "1.0.0"

from .data import Catalog, FuzzyRelation, FuzzyTuple, Schema
from .db import DatabaseError, FuzzyDatabase
from .errors import (
    DiskFullError,
    FuzzyQueryError,
    PageCorruptionError,
    QueryCancelledError,
    QueryTimeoutError,
    RecoveryError,
    ResourceExhaustedError,
    SnapshotTooOldError,
    TransientIOError,
    WalCorruptionError,
)
from .faults import CrashPointError, FaultPlan, FaultyDisk
from .wal import RecoveryReport, Snapshot, WriteAheadLog, WriteManager
from .resilience import CancelToken, Deadline, QueryGuard, RetryPolicy
from .persist import load_database, save_database
from .session import StorageSession
from .engine import NaiveEvaluator
from .fuzzy import (
    CrispLabel,
    CrispNumber,
    DiscreteDistribution,
    Op,
    TrapezoidalNumber,
    Vocabulary,
    possibility,
)
from .service import PlanCache, PreparedQuery, normalize_sql
from .shell import FuzzyShell
from .sql import parse
from .unnest import execute_unnested, unnest

__all__ = [
    "__version__",
    "FuzzyDatabase",
    "DatabaseError",
    "save_database",
    "load_database",
    "StorageSession",
    "Catalog",
    "FuzzyRelation",
    "FuzzyTuple",
    "Schema",
    "NaiveEvaluator",
    "CrispNumber",
    "CrispLabel",
    "DiscreteDistribution",
    "TrapezoidalNumber",
    "Vocabulary",
    "Op",
    "possibility",
    "parse",
    "unnest",
    "execute_unnested",
    "PlanCache",
    "PreparedQuery",
    "normalize_sql",
    "FuzzyShell",
    "FuzzyQueryError",
    "TransientIOError",
    "DiskFullError",
    "PageCorruptionError",
    "ResourceExhaustedError",
    "QueryTimeoutError",
    "QueryCancelledError",
    "CancelToken",
    "Deadline",
    "QueryGuard",
    "RetryPolicy",
    "FaultPlan",
    "FaultyDisk",
    "CrashPointError",
    "WalCorruptionError",
    "RecoveryError",
    "SnapshotTooOldError",
    "WriteAheadLog",
    "WriteManager",
    "Snapshot",
    "RecoveryReport",
]
