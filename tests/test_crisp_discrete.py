"""Tests for crisp values and discrete possibility distributions."""

import pytest

from repro.fuzzy.crisp import CrispLabel, CrispNumber
from repro.fuzzy.discrete import DiscreteDistribution


class TestCrispNumber:
    def test_membership(self):
        v = CrispNumber(28)
        assert v.membership(28) == 1.0
        assert v.membership(28.0) == 1.0
        assert v.membership(27.999) == 0.0

    def test_interval_is_singleton(self):
        assert CrispNumber(28).interval() == (28.0, 28.0)

    def test_is_crisp_and_numeric(self):
        v = CrispNumber(3)
        assert v.is_crisp
        assert v.is_numeric
        assert v.height == 1.0

    def test_defuzzify(self):
        assert CrispNumber(7).defuzzify() == 7.0

    def test_identity(self):
        assert CrispNumber(3) == CrispNumber(3.0)
        assert CrispNumber(3) != CrispNumber(4)
        assert hash(CrispNumber(3)) == hash(CrispNumber(3.0))

    def test_membership_of_garbage(self):
        assert CrispNumber(3).membership("x") == 0.0


class TestCrispLabel:
    def test_membership(self):
        v = CrispLabel("Ann")
        assert v.membership("Ann") == 1.0
        assert v.membership("ann") == 0.0

    def test_not_numeric(self):
        assert not CrispLabel("x").is_numeric
        assert CrispLabel("x").is_crisp

    def test_interval_lexicographic(self):
        assert CrispLabel("bob").interval() == ("bob", "bob")

    def test_identity_distinct_from_number(self):
        assert CrispLabel("3") != CrispNumber(3)


class TestDiscreteDistribution:
    def test_appendix_example(self):
        d = DiscreteDistribution({"y1": 1.0, "y2": 0.8})
        assert d.membership("y1") == 1.0
        assert d.membership("y2") == 0.8
        assert d.membership("y3") == 0.0

    def test_numeric_elements_coerced(self):
        d = DiscreteDistribution({1: 0.5, 2.0: 1.0})
        assert d.is_numeric
        assert d.membership(1) == 0.5
        assert d.membership(1.0) == 0.5

    def test_mixed_is_symbolic(self):
        d = DiscreteDistribution({"a": 1.0, "b": 0.3})
        assert not d.is_numeric

    def test_height(self):
        assert DiscreteDistribution({"a": 0.7, "b": 0.4}).height == 0.7

    def test_is_crisp_single_full_member(self):
        assert DiscreteDistribution({"a": 1.0}).is_crisp
        assert not DiscreteDistribution({"a": 0.9}).is_crisp
        assert not DiscreteDistribution({"a": 1.0, "b": 0.1}).is_crisp

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DiscreteDistribution({})

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            DiscreteDistribution({"a": 0.0})

    def test_rejects_excess_degree(self):
        with pytest.raises(ValueError):
            DiscreteDistribution({"a": 1.5})

    def test_interval_spans_elements(self):
        d = DiscreteDistribution({3.0: 1.0, 7.0: 0.2, 5.0: 0.5})
        assert d.interval() == (3.0, 7.0)

    def test_defuzzify_most_possible(self):
        d = DiscreteDistribution({3.0: 0.4, 7.0: 1.0})
        assert d.defuzzify() == 7.0

    def test_defuzzify_tie_breaks_low(self):
        d = DiscreteDistribution({3.0: 1.0, 7.0: 1.0})
        assert d.defuzzify() == 3.0

    def test_defuzzify_symbolic_raises(self):
        with pytest.raises(TypeError):
            DiscreteDistribution({"a": 1.0}).defuzzify()

    def test_identity(self):
        d1 = DiscreteDistribution({"a": 1.0, "b": 0.5})
        d2 = DiscreteDistribution({"b": 0.5, "a": 1.0})
        assert d1 == d2
        assert hash(d1) == hash(d2)
        assert d1 != DiscreteDistribution({"a": 1.0, "b": 0.6})
