"""Property-based equivalence tests for the unnesting theorems.

Each test realizes one theorem of the paper: for randomly generated fuzzy
relations, the unnested plan must produce *exactly* the same fuzzy relation
(same tuples, same membership degrees) as the naive nested-semantics
evaluation — Theorems 4.1, 4.2, 5.1, 6.1, 7.1, and 8.1.

The value pool deliberately mixes crisp numbers, overlapping trapezoids,
and discrete distributions around a few shared anchors so that partial
matches, duplicates, and empty groups all occur often.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import Attribute, Catalog, FuzzyRelation, FuzzyTuple, Schema
from repro.engine import NaiveEvaluator
from repro.fuzzy import CrispNumber, DiscreteDistribution, TrapezoidalNumber
from repro.sql import NestingType, classify, parse
from repro.unnest import execute_unnested, unnest

N = CrispNumber
T = TrapezoidalNumber

SCHEMA = Schema([Attribute("K"), Attribute("U"), Attribute("V")])

#: A small pool of overlapping values so random relations actually join.
VALUE_POOL = [
    N(0),
    N(5),
    N(10),
    T(0, 1, 2, 4),
    T(3, 5, 5, 7),
    T(4, 6, 8, 12),
    T(9, 10, 10, 11),
    T(0, 2, 8, 10),
    DiscreteDistribution({0.0: 1.0, 5.0: 0.7}),
    DiscreteDistribution({10.0: 0.9}),
]

DEGREES = [0.2, 0.5, 0.8, 1.0]


@st.composite
def relations(draw, min_size=0, max_size=5):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    rel = FuzzyRelation(SCHEMA)
    for i in range(n):
        u = draw(st.sampled_from(VALUE_POOL))
        v = draw(st.sampled_from(VALUE_POOL))
        degree = draw(st.sampled_from(DEGREES))
        rel.add(FuzzyTuple([N(i), u, v], degree))
    return rel


def check_equivalence(sql, r, s, expected_type=None):
    cat = Catalog()
    cat.register("R", r)
    cat.register("S", s)
    if expected_type is not None:
        assert classify(parse(sql), cat) is expected_type
    nested = NaiveEvaluator(cat).evaluate(sql)
    flat = execute_unnested(sql, cat)
    assert nested.same_as(flat, tolerance=1e-9), (
        f"nested:\n{nested.pretty()}\nunnested:\n{flat.pretty()}\n"
        f"plan:\n{unnest(sql, cat).explain()}"
    )


COMMON_SETTINGS = dict(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTheorem41_TypeN:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.U IN (SELECT S.V FROM S WHERE S.U = 5)",
            r,
            s,
            NestingType.TYPE_N,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence_without_p2(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.U IN (SELECT S.V FROM S)",
            r,
            s,
            NestingType.TYPE_N,
        )


class TestTheorem42_TypeJ:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_J,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence_with_p1(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.U > 2 AND "
            "R.V IN (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_J,
        )


class TestTheorem51_TypeJX:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V NOT IN (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JX,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_uncorrelated_xn(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V NOT IN (SELECT S.V FROM S WHERE S.U < 6)",
            r,
            s,
            NestingType.TYPE_XN,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_with_p1(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.U > 2 AND "
            "R.V NOT IN (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JX,
        )


class TestTheorem61_TypeJA:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations(), st.sampled_from(["MAX", "MIN", "SUM", "AVG"]))
    def test_equivalence_non_count(self, r, s, func):
        check_equivalence(
            f"SELECT R.K FROM R WHERE R.V > "
            f"(SELECT {func}(S.V) FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JA,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence_count_outer_join(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V > "
            "(SELECT COUNT(S.V) FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JA,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence_with_p1_p2(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.U > 2 AND R.V < "
            "(SELECT MAX(S.V) FROM S WHERE S.V > 1 AND S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JA,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_inequality_correlation(self, r, s):
        """op2 need not be equality: S.U < R.U still groups by R.U's value."""
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V > "
            "(SELECT MIN(S.V) FROM S WHERE S.U < R.U)",
            r,
            s,
            NestingType.TYPE_JA,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_two_correlation_predicates(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V > "
            "(SELECT MAX(S.V) FROM S WHERE S.U = R.U AND S.K <= R.K)",
            r,
            s,
            NestingType.TYPE_JA,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations(), st.sampled_from(["MAX", "AVG", "COUNT"]))
    def test_uncorrelated_type_a(self, r, s, func):
        check_equivalence(
            f"SELECT R.K FROM R WHERE R.V > (SELECT {func}(S.V) FROM S WHERE S.U > 3)",
            r,
            s,
            NestingType.TYPE_A,
        )


class TestTheorem71_TypeJALL:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_equivalence_lt(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V < ALL (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JALL,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations(), st.sampled_from(["<", "<=", ">", ">=", "="]))
    def test_equivalence_all_ops(self, r, s, op):
        check_equivalence(
            f"SELECT R.K FROM R WHERE R.V {op} ALL (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JALL,
        )

    @settings(**COMMON_SETTINGS)
    @given(relations(), relations())
    def test_uncorrelated_all(self, r, s):
        check_equivalence(
            "SELECT R.K FROM R WHERE R.V >= ALL (SELECT S.V FROM S WHERE S.U < 6)",
            r,
            s,
            NestingType.TYPE_ALL,
        )


class TestSomeQuantifier:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations(), st.sampled_from(["<", ">", "="]))
    def test_equivalence(self, r, s, op):
        check_equivalence(
            f"SELECT R.K FROM R WHERE R.V {op} SOME (SELECT S.V FROM S WHERE S.U = R.U)",
            r,
            s,
            NestingType.TYPE_JSOME,
        )


class TestTheorem81_Chain:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(relations(max_size=4), relations(max_size=4), relations(max_size=4))
    def test_three_level_chain(self, r, s, t):
        cat = Catalog()
        cat.register("R", r)
        cat.register("S", s)
        cat.register("T", t)
        sql = (
            "SELECT R.K FROM R WHERE R.U IN "
            "(SELECT S.V FROM S WHERE S.U = R.V AND S.K IN "
            "(SELECT T.V FROM T WHERE T.U = S.V AND T.K = R.K))"
        )
        assert classify(parse(sql), cat) is NestingType.CHAIN
        nested = NaiveEvaluator(cat).evaluate(sql)
        flat = execute_unnested(sql, cat)
        assert nested.same_as(flat, tolerance=1e-9)

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(relations(max_size=3), relations(max_size=3), relations(max_size=3), relations(max_size=3))
    def test_four_level_chain(self, r, s, t, w):
        cat = Catalog()
        for name, rel in [("R", r), ("S", s), ("T", t), ("W", w)]:
            cat.register(name, rel)
        sql = (
            "SELECT R.K FROM R WHERE R.U IN "
            "(SELECT S.V FROM S WHERE S.K IN "
            "(SELECT T.V FROM T WHERE T.U = S.U AND T.K IN "
            "(SELECT W.V FROM W WHERE W.U = R.V)))"
        )
        nested = NaiveEvaluator(cat).evaluate(sql)
        flat = execute_unnested(sql, cat)
        assert nested.same_as(flat, tolerance=1e-9)


class TestWithThreshold:
    @settings(**COMMON_SETTINGS)
    @given(relations(), relations(), st.sampled_from([0.0, 0.3, 0.5, 0.9]))
    def test_threshold_preserved(self, r, s, threshold):
        check_equivalence(
            f"SELECT R.K FROM R WHERE R.V IN "
            f"(SELECT S.V FROM S WHERE S.U = R.U) WITH D >= {threshold}",
            r,
            s,
        )


class TestGeneralFallback:
    def test_execute_unnested_falls_back(self):
        """GENERAL queries run through the naive engine transparently."""
        cat = Catalog()
        cat.register("R", FuzzyRelation.from_rows(SCHEMA, [(1, 5, 5)]))
        cat.register("S", FuzzyRelation.from_rows(SCHEMA, [(1, 5, 5)]))
        sql = "SELECT R.K FROM R WHERE EXISTS (SELECT S.K FROM S WHERE S.U = R.U)"
        out = execute_unnested(sql, cat)
        assert out.degree_of([N(1)]) == 1.0
