"""Tests for the interval order of Definition 3.1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzy.crisp import CrispNumber
from repro.fuzzy.discrete import DiscreteDistribution
from repro.fuzzy.interval_order import (
    begin,
    end,
    overlaps,
    precedes,
    precedes_eq,
    sort_key,
    strictly_before,
)
from repro.fuzzy.trapezoid import TrapezoidalNumber

T = TrapezoidalNumber
N = CrispNumber


@st.composite
def values(draw):
    kind = draw(st.sampled_from(["crisp", "trap", "disc"]))
    if kind == "crisp":
        return N(draw(st.floats(min_value=-100, max_value=100, allow_nan=False)))
    if kind == "trap":
        xs = sorted(
            draw(
                st.lists(
                    st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=4,
                    max_size=4,
                )
            )
        )
        return T(*xs)
    items = draw(
        st.dictionaries(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=0.1, max_value=1.0),
            min_size=1,
            max_size=3,
        )
    )
    return DiscreteDistribution(items)


class TestExample31:
    """Example 3.1 of the paper, verbatim."""

    def setup_method(self):
        self.r1 = T.rectangular(30, 35)
        self.r2 = T.rectangular(20, 28)
        self.r3 = T.rectangular(20, 35)
        self.s1 = T.rectangular(32, 34)
        self.s2 = T.rectangular(20, 25)
        self.s3 = T.rectangular(30, 40)

    def test_r_order(self):
        # [20,28] < [20,35] < [30,35]
        assert precedes(self.r2, self.r3)
        assert precedes(self.r3, self.r1)

    def test_s_order(self):
        # s2=[20,25] < s3=[30,40] < s1=[32,34]
        assert precedes(self.s2, self.s3)
        assert precedes(self.s3, self.s1)

    def test_r2_joins_s2(self):
        assert overlaps(self.r2.interval() and self.r2, self.s2)

    def test_r2_stops_at_s3(self):
        # [30,40] falls completely right of [20,28].
        assert strictly_before(self.r2, self.s3)


class TestBeginsEnds:
    def test_crisp(self):
        assert begin(N(28)) == 28 and end(N(28)) == 28

    def test_trapezoid(self):
        t = T(20, 25, 30, 35)
        assert begin(t) == 20 and end(t) == 35

    def test_discrete(self):
        d = DiscreteDistribution({3.0: 1.0, 9.0: 0.2})
        assert begin(d) == 3.0 and end(d) == 9.0


class TestOrderLaws:
    def test_lexicographic_tie_break(self):
        # Same begin: shorter interval first.
        assert precedes(T.rectangular(10, 12), T.rectangular(10, 20))

    def test_equal_intervals_not_strict(self):
        a = T(10, 11, 12, 20)
        b = T(10, 14, 15, 20)
        assert not precedes(a, b) and not precedes(b, a)
        assert precedes_eq(a, b) and precedes_eq(b, a)

    @settings(max_examples=100, deadline=None)
    @given(values(), values())
    def test_totality(self, u, v):
        assert precedes_eq(u, v) or precedes_eq(v, u)

    @settings(max_examples=100, deadline=None)
    @given(values(), values(), values())
    def test_transitivity(self, u, v, w):
        if precedes_eq(u, v) and precedes_eq(v, w):
            assert precedes_eq(u, w)

    @settings(max_examples=100, deadline=None)
    @given(values(), values())
    def test_strict_is_asymmetric(self, u, v):
        assert not (precedes(u, v) and precedes(v, u))

    @settings(max_examples=100, deadline=None)
    @given(values())
    def test_sort_key_matches_interval(self, u):
        assert sort_key(u) == u.interval()


class TestOverlap:
    def test_touching_counts(self):
        assert overlaps(T.rectangular(0, 5), T.rectangular(5, 10))

    def test_disjoint(self):
        assert not overlaps(T.rectangular(0, 5), T.rectangular(6, 10))
        assert strictly_before(T.rectangular(0, 5), T.rectangular(6, 10))

    @settings(max_examples=100, deadline=None)
    @given(values(), values())
    def test_overlap_symmetric(self, u, v):
        assert overlaps(u, v) == overlaps(v, u)

    @settings(max_examples=100, deadline=None)
    @given(values(), values())
    def test_trichotomy(self, u, v):
        states = [overlaps(u, v), strictly_before(u, v), strictly_before(v, u)]
        assert sum(states) == 1
