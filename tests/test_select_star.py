"""Tests for SELECT * / R.* expansion."""

import pytest

from repro import FuzzyDatabase
from repro.data import Catalog, FuzzyRelation, Schema
from repro.engine import NaiveEvaluator
from repro.fuzzy import CrispLabel, CrispNumber
from repro.session import StorageSession
from repro.sql import BindError, parse, validate
from repro.sql.ast import Star
from repro.unnest import execute_unnested
from repro.workload.paper_data import dating_catalog

N = CrispNumber


class TestParsing:
    def test_bare_star(self):
        q = parse("SELECT * FROM R")
        assert q.select == (Star(None),)

    def test_qualified_star(self):
        q = parse("SELECT R.* FROM R")
        assert q.select == (Star("R"),)

    def test_mixed(self):
        q = parse("SELECT F.*, M.NAME FROM F, M")
        assert isinstance(q.select[0], Star)
        assert q.select[0].relation == "F"

    def test_str_roundtrip(self):
        for sql in ["SELECT * FROM R", "SELECT R.* FROM R"]:
            assert parse(str(parse(sql))) == parse(sql)


class TestEvaluation:
    def test_star_expands_all_columns(self):
        catalog = dating_catalog()
        out = NaiveEvaluator(catalog).evaluate("SELECT * FROM F")
        assert out.schema.names() == ["ID", "NAME", "AGE", "INCOME"]
        assert len(out) == 4

    def test_star_multi_table(self):
        catalog = dating_catalog()
        out = NaiveEvaluator(catalog).evaluate("SELECT * FROM F, M WHERE F.AGE = M.AGE")
        assert len(out.schema) == 8

    def test_qualified_star_subset(self):
        catalog = dating_catalog()
        out = NaiveEvaluator(catalog).evaluate(
            "SELECT M.NAME, F.* FROM F, M WHERE F.AGE = M.AGE"
        )
        assert len(out.schema) == 5

    def test_star_in_subquery_block(self):
        catalog = dating_catalog()
        # The inner block still needs a single column; * would be 4 — the
        # outer star is fine though.
        out = NaiveEvaluator(catalog).evaluate(
            "SELECT * FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M)"
        )
        assert out.schema.names() == ["ID", "NAME", "AGE", "INCOME"]

    def test_unknown_relation_star(self):
        catalog = dating_catalog()
        with pytest.raises(BindError):
            NaiveEvaluator(catalog).evaluate("SELECT Z.* FROM F")

    def test_validate_accepts_star(self):
        validate(parse("SELECT * FROM F"), dating_catalog())


class TestStarThroughTheStack:
    def test_unnested_star_matches_naive(self):
        catalog = dating_catalog()
        sql = (
            "SELECT * FROM F WHERE F.INCOME IN "
            "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)"
        )
        nested = NaiveEvaluator(catalog).evaluate(sql)
        assert execute_unnested(sql, catalog).same_as(nested, 1e-9)

    def test_database_facade(self):
        db = FuzzyDatabase()
        db.execute("CREATE TABLE T (A NUMERIC, B NUMERIC)")
        db.execute("INSERT INTO T VALUES (1, 2), (3, 4)")
        out = db.execute("SELECT * FROM T")
        assert out.schema.names() == ["A", "B"]
        assert len(out) == 2

    def test_storage_session(self):
        catalog = dating_catalog()
        session = StorageSession(catalog.vocabulary, page_size=1024)
        session.register("F", catalog.get("F"))
        session.register("M", catalog.get("M"))
        sql = "SELECT * FROM F WHERE F.INCOME IN (SELECT M.INCOME FROM M)"
        expected = NaiveEvaluator(catalog).evaluate(sql)
        assert session.query(sql).same_as(expected, 1e-9)
