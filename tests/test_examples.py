"""Smoke tests: every shipped example must run and produce its key output."""

import io
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, stdin: str = "") -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Equivalent (same tuples, same degrees): True" in out
        assert "Ann" in out and "Betty" in out
        assert "0.75" in out  # Betty's Example 4.1 degree

    def test_hr_antijoin(self):
        out = run_example("hr_antijoin.py")
        assert "Equivalent: True" in out
        assert "__JXT" in out  # the Theorem 5.1 pipeline is shown

    def test_cities_aggregates(self):
        out = run_example("cities_aggregates.py")
        assert out.count("Equivalent: True") >= 2  # JA and COUNT variants
        assert "weighted" in out  # degree-policy sweep

    def test_join_methods_tour(self):
        out = run_example("join_methods_tour.py")
        assert "nested-loop" in out and "merge-join" in out
        assert "Speedup" in out

    def test_fuzzy_shell_queries(self):
        out = run_example(
            "fuzzy_shell.py",
            stdin=(
                "SELECT F.NAME FROM F WHERE F.INCOME > 50;\n"
                "CREATE TABLE T (A NUMERIC);\n"
                "INSERT INTO T VALUES (1), (2);\n"
                "SELECT T.A FROM T;\n"
                "\\tables\n"
            ),
        )
        assert "Ann" in out
        assert "table T created" in out
        assert "2 tuples inserted" in out
        assert "T (2 tuples)" in out

    def test_build_a_database(self):
        out = run_example("build_a_database.py")
        assert "loaded 5 readings from CSV" in out
        assert "reloaded answers identical: True" in out
        assert "__JALLT" in out  # the ALL rewrite is shown

    def test_fuzzy_shell_error_recovery(self):
        out = run_example(
            "fuzzy_shell.py",
            stdin="SELECT nonsense;\nSELECT F.NAME FROM F;\n",
        )
        assert "error:" in out
        assert "Ann" in out  # the session survives the error

    def test_fuzzy_shell_meta_commands(self):
        out = run_example(
            "fuzzy_shell.py",
            stdin=(
                "\\show F\n"
                "\\terms\n"
                "\\plan SELECT F.NAME FROM F WHERE F.INCOME NOT IN "
                "(SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)\n"
                "\\show NOPE\n"
                "\\unknown\n"
            ),
        )
        assert "Betty" in out                       # \show F
        assert "medium young" in out                # \terms
        assert "__JXT" in out                       # \plan shows the rewrite
        assert "no table" in out                    # \show NOPE
        assert "commands:" in out                   # help for unknown meta
