"""Tests for fuzzy aggregate functions (Section 6 semantics)."""

import pytest

from repro.engine.aggregates import DegreePolicy, aggregate_degrees, apply_aggregate
from repro.fuzzy import CrispNumber, TrapezoidalNumber

N = CrispNumber
T = TrapezoidalNumber


class TestCount:
    def test_counts_distinct_values(self):
        members = [(N(1), 0.5), (N(2), 0.9), (N(3), 0.1)]
        value, degree = apply_aggregate("COUNT", members)
        assert value == N(3)
        assert degree == 1.0

    def test_empty_is_zero(self):
        value, degree = apply_aggregate("COUNT", [])
        assert value == N(0)
        assert degree == 1.0


class TestSum:
    def test_fuzzy_addition(self):
        members = [(T(1, 2, 3, 4), 1.0), (T(10, 20, 30, 40), 0.5)]
        value, _ = apply_aggregate("SUM", members)
        assert (value.a, value.b, value.c, value.d) == (11, 22, 33, 44)

    def test_crisp_sum(self):
        value, _ = apply_aggregate("SUM", [(N(2), 1.0), (N(3), 1.0)])
        assert value.defuzzify() == 5.0

    def test_empty_is_null(self):
        assert apply_aggregate("SUM", []) is None


class TestAvg:
    def test_fuzzy_average(self):
        members = [(T(0, 0, 0, 0), 1.0), (T(10, 10, 10, 10), 1.0)]
        value, _ = apply_aggregate("AVG", members)
        assert value.defuzzify() == pytest.approx(5.0)

    def test_avg_of_one(self):
        value, _ = apply_aggregate("AVG", [(T(1, 2, 3, 4), 1.0)])
        assert (value.a, value.b, value.c, value.d) == (1, 2, 3, 4)

    def test_empty_is_null(self):
        assert apply_aggregate("AVG", []) is None


class TestMinMax:
    def test_defuzzified_ordering(self):
        # Centers of 1-cuts: 2.5 and 20; MIN picks the first value whole.
        low = T(1, 2, 3, 9)
        high = T(0, 15, 25, 30)
        members = [(high, 1.0), (low, 0.5)]
        value, _ = apply_aggregate("MIN", members)
        assert value == low
        value, _ = apply_aggregate("MAX", members)
        assert value == high

    def test_returns_original_distribution(self):
        t = T(1, 2, 3, 4)
        value, _ = apply_aggregate("MAX", [(t, 0.8)])
        assert value is t

    def test_tie_break_is_order_independent(self):
        """Distinct values sharing a defuzzified center must yield the same
        MIN/MAX regardless of member enumeration order (regression: the
        pipelined and naive evaluators disagreed on ties)."""
        a = T(3, 5, 5, 7)   # center 5
        b = N(5)            # center 5
        for func in ("MIN", "MAX"):
            v1, _ = apply_aggregate(func, [(a, 1.0), (b, 1.0)])
            v2, _ = apply_aggregate(func, [(b, 1.0), (a, 1.0)])
            assert v1 == v2

    def test_empty_is_null(self):
        assert apply_aggregate("MIN", []) is None


class TestDegreePolicies:
    MEMBERS = [(N(1), 0.4), (N(2), 0.8)]

    def test_one(self):
        _, degree = apply_aggregate("MAX", self.MEMBERS, DegreePolicy.ONE)
        assert degree == 1.0

    def test_average(self):
        _, degree = apply_aggregate("MAX", self.MEMBERS, DegreePolicy.AVERAGE)
        assert degree == pytest.approx(0.6)

    def test_weighted(self):
        _, degree = apply_aggregate("MAX", self.MEMBERS, DegreePolicy.WEIGHTED)
        assert degree == pytest.approx((0.16 + 0.64) / 1.2)

    def test_unknown_function(self):
        with pytest.raises(ValueError):
            apply_aggregate("MEDIAN", self.MEMBERS)


class TestDegreeAggregates:
    def test_min(self):
        assert aggregate_degrees("MIN", [0.4, 0.9, 0.6]) == 0.4

    def test_max(self):
        assert aggregate_degrees("MAX", [0.4, 0.9, 0.6]) == 0.9

    def test_avg(self):
        assert aggregate_degrees("AVG", [0.4, 0.8]) == pytest.approx(0.6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            aggregate_degrees("MIN", [])

    def test_sum_of_degrees_unsupported(self):
        with pytest.raises(ValueError):
            aggregate_degrees("SUM", [0.5])
