"""The paper's locality claim, checked page by page.

Section 3 argues the extended merge-join reads each page of the (sorted)
inner relation exactly once during the join phase: the S-window slides
strictly forward, so once the merge scan passes a page it is never fetched
again.  The block nested-loop join, by contrast, re-reads the whole inner
relation once per outer block.  The :class:`~repro.observe.metrics
.QueryMetrics` page trace makes both facts checkable directly.
"""

import random

from repro.data import Attribute, FuzzyRelation, FuzzyTuple, Schema
from repro.fuzzy import CrispNumber, Op, TrapezoidalNumber
from repro.join import JoinPredicate, MergeJoin, NestedLoopJoin, join_degree
from repro.observe import QueryMetrics
from repro.session import StorageSession
from repro.storage import BufferPool, HeapFile, OperationStats, SimulatedDisk

N = CrispNumber
T = TrapezoidalNumber
SCHEMA = Schema([Attribute("ID"), Attribute("V")])
POOL = [N(0), N(3), N(7), T(0, 1, 2, 4), T(2, 4, 5, 7), T(5, 7, 8, 10)]


def build_pair(n=40, seed=9, page_size=512):
    rng = random.Random(seed)
    disk = SimulatedDisk(page_size=page_size)

    def tuples(base):
        return [
            FuzzyTuple([N(base + i), rng.choice(POOL)], rng.uniform(0.3, 1.0))
            for i in range(n)
        ]

    r = HeapFile("R", SCHEMA, disk, fixed_tuple_size=96).load(tuples(0))
    s = HeapFile("S", SCHEMA, disk, fixed_tuple_size=96).load(tuples(1000))
    return disk, r, s


PRED = join_degree([JoinPredicate(SCHEMA, "V", Op.EQ, SCHEMA, "V")])


class TestMergeJoinLocality:
    def test_no_inner_page_reread_in_join_phase(self):
        """Every page of sorted S is read exactly once by the merge scan."""
        disk, r, s = build_pair()
        assert s.n_pages > 1, "the claim is only interesting across pages"
        metrics = QueryMetrics()
        join = MergeJoin(disk, 16, OperationStats(), metrics=metrics)
        with metrics.watch_disk(disk):
            pairs = list(join.pairs(r, "V", s, "V", PRED))
        assert pairs, "the workload must actually join"
        reads = metrics.page_reads("S__sorted_V", phase="join")
        assert len(reads) == s.n_pages, "the merge scan must cover all of S"
        assert metrics.reread_pages("S__sorted_V", phase="join") == []
        # The outer side is sequential too.
        assert metrics.reread_pages("R__sorted_V", phase="join") == []

    def test_lru_replay_sees_no_refetch(self):
        """An LRU pool of the same budget would never re-fetch in the join
        phase — the access sequence itself is one-pass."""
        disk, r, s = build_pair()
        metrics = QueryMetrics()
        join = MergeJoin(disk, 16, OperationStats(), metrics=metrics)
        with metrics.watch_disk(disk):
            list(join.pairs(r, "V", s, "V", PRED))
        replay = metrics.buffer_replay(16, phase="join")
        assert replay.re_fetches == 0
        assert replay.misses == len(set(
            (a.file, a.index)
            for a in metrics.page_trace
            if a.kind == "read" and a.phase == "join"
        ))

    def test_session_query_is_one_pass_over_inner(self):
        """The same claim holds end to end through the session."""
        rng = random.Random(5)
        rel_r, rel_s = FuzzyRelation(SCHEMA), FuzzyRelation(SCHEMA)
        for i in range(40):
            rel_r.add(FuzzyTuple([N(i), rng.choice(POOL)], 1.0))
            rel_s.add(FuzzyTuple([N(1000 + i), rng.choice(POOL)], 1.0))
        session = StorageSession(buffer_pages=16, page_size=512, fixed_tuple_size=96)
        session.register("R", rel_r)
        session.register("S", rel_s)
        metrics = QueryMetrics()
        session.query(
            "SELECT R.ID FROM R WHERE R.V IN (SELECT S.V FROM S)", metrics=metrics
        )
        assert metrics.strategy.startswith("flat/")
        assert metrics.reread_pages("S__sorted_V", phase="join") == []


class TestNestedLoopContrast:
    def test_inner_relation_is_reread_per_block(self):
        """With more outer blocks than one, the nested loop re-reads S."""
        disk, r, s = build_pair()
        metrics = QueryMetrics()
        join = NestedLoopJoin(disk, 3, OperationStats())  # 2-page outer blocks
        with metrics.watch_disk(disk):
            list(join.pairs(r, s, PRED))
        assert r.n_pages > 2, "need multiple outer blocks"
        rereads = metrics.reread_pages("S", phase="nested-loop")
        assert rereads == list(range(s.n_pages))
        blocks = -(-r.n_pages // 2)  # ceil
        assert metrics.page_reads("S", phase="nested-loop")[0] == blocks


class TestBufferPoolReporting:
    def test_pool_reports_hits_misses_and_refetches(self):
        disk, r, _ = build_pair()
        metrics = QueryMetrics()
        pool = BufferPool(disk, 2, metrics=metrics)
        pool.get_page("R", 0)
        pool.get_page("R", 0)  # hit
        pool.get_page("R", 1)
        pool.get_page("R", 2)  # evicts page 0 (capacity 2, LRU)
        pool.get_page("R", 0)  # miss again: a re-fetch
        assert pool.hits == 1 and pool.misses == 4
        assert metrics.buffer.hits == 1
        assert metrics.buffer.misses == 4
        assert metrics.buffer.re_fetches == 1

    def test_pool_without_metrics_unchanged(self):
        disk, r, _ = build_pair()
        pool = BufferPool(disk, 4)
        pool.get_page("R", 0)
        pool.get_page("R", 0)
        assert pool.hits == 1 and pool.misses == 1
