"""Tests for the unnesting pipeline plumbing and the bench harness CLI."""

import io

import pytest

from repro.bench.harness import main, run_all
from repro.data import Catalog, FuzzyRelation, Schema
from repro.engine import NaiveEvaluator
from repro.sql import parse
from repro.unnest.pipeline import Step, UnnestedPlan

SCHEMA = Schema(["K", "V"])


def make_catalog():
    cat = Catalog()
    cat.register("R", FuzzyRelation.from_rows(SCHEMA, [(1, 10, 0.5), (2, 20)]))
    return cat


def make_evaluator(catalog):
    return NaiveEvaluator(catalog)


class TestPipeline:
    def test_sql_step_registers_temp(self):
        plan = UnnestedPlan(
            final=parse("SELECT T.K FROM T"),
            steps=[Step("T", parse("SELECT R.K, R.V FROM R WHERE R.V > 15"))],
        )
        out = plan.execute(make_catalog(), make_evaluator)
        assert len(out) == 1

    def test_callable_step(self):
        def body(catalog, make_eval):
            return make_eval(catalog).evaluate("SELECT R.K FROM R")

        plan = UnnestedPlan(
            final=parse("SELECT T.K FROM T"),
            steps=[Step("T", body, description="custom step")],
        )
        out = plan.execute(make_catalog(), make_evaluator)
        assert len(out) == 2

    def test_callable_final(self):
        def final(catalog, make_eval):
            return make_eval(catalog).evaluate("SELECT R.V FROM R")

        plan = UnnestedPlan(final=final)
        out = plan.execute(make_catalog(), make_evaluator)
        assert len(out) == 2

    def test_steps_see_previous_steps(self):
        plan = UnnestedPlan(
            final=parse("SELECT B.K FROM B"),
            steps=[
                Step("A", parse("SELECT R.K, R.V FROM R")),
                Step("B", parse("SELECT A.K, A.V FROM A WHERE A.V < 15")),
            ],
        )
        out = plan.execute(make_catalog(), make_evaluator)
        assert len(out) == 1

    def test_original_catalog_untouched(self):
        catalog = make_catalog()
        plan = UnnestedPlan(
            final=parse("SELECT T.K FROM T"),
            steps=[Step("T", parse("SELECT R.K, R.V FROM R"))],
        )
        plan.execute(catalog, make_evaluator)
        assert "T" not in catalog

    def test_explain_lists_steps(self):
        plan = UnnestedPlan(
            final=parse("SELECT T.K FROM T"),
            steps=[Step("T", parse("SELECT R.K FROM R"), description="step one")],
            nesting_type="demo",
        )
        text = plan.explain()
        assert "demo" in text
        assert "T := SELECT R.K FROM R" in text
        assert "answer :=" in text


class TestHarness:
    def test_run_all_selected(self):
        stream = io.StringIO()
        results = run_all(scale=256, only=["table4"], stream=stream)
        assert set(results) == {"table4"}
        assert "Table 4" in stream.getvalue()

    def test_main_rejects_unknown(self, capsys):
        assert main(["not_an_experiment"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_main_runs_selection(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "256")
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out and "paper reference" in out
