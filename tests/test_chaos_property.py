"""Property test: survivable fault schedules never change an answer.

Hypothesis draws arbitrary transient-fault schedules whose bursts sit
strictly below the disk's retry budget.  Every such schedule is
*survivable* by construction — the retry loop must absorb each burst —
so the faulted merge-join run has to produce the tuple-for-tuple,
degree-for-degree identical answer of a fault-free run, leak nothing,
and account every re-issued transfer in ``io_retries``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.storage.disk import SimulatedDisk

from tests.test_chaos import CASES, build_faulted, build_session

#: Total tries the disk's default policy makes per logical read.
RETRY_BUDGET = SimulatedDisk(page_size=512).retry_policy.attempts


@settings(max_examples=30, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=10_000),
    burst=st.integers(min_value=1, max_value=RETRY_BUDGET - 1),
    rate=st.floats(min_value=0.0, max_value=0.2),
)
def test_survivable_schedules_are_invisible(fault_seed, burst, rate):
    sql = CASES["J"]
    expected = build_session(1).query(sql)
    plan = FaultPlan(seed=fault_seed, transient_read_rate=rate, transient_burst=burst)
    session = build_faulted(1, plan)
    got = session.query(sql)
    assert got.same_as(expected, 0.0), (
        f"burst={burst} < budget={RETRY_BUDGET} must be absorbed, "
        "but the answer changed"
    )
    assert session.last_stats.total.io_retries == plan.injected.transient_reads
    leftovers = [n for n in session.disk.files() if n.startswith("__")]
    assert leftovers == []


@settings(max_examples=15, deadline=None)
@given(
    fault_seed=st.integers(min_value=0, max_value=10_000),
    data_seed=st.integers(min_value=0, max_value=50),
)
def test_max_absorbable_burst_across_datasets(fault_seed, data_seed):
    """The worst still-absorbable burst, crossed with randomized data."""
    sql = CASES["J"]
    expected = build_session(data_seed).query(sql)
    plan = FaultPlan(
        seed=fault_seed,
        transient_read_rate=0.15,
        transient_burst=RETRY_BUDGET - 1,
    )
    session = build_faulted(data_seed, plan)
    got = session.query(sql)
    assert got.same_as(expected, 0.0)
