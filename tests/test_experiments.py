"""Shape tests for the paper-reproduction experiments (tiny scale).

These run the real experiment code at a very small scale and assert the
*qualitative* findings of Section 9 — the quantities the benchmarks then
measure at full (scaled) size.
"""

import pytest

from repro.bench.experiments import ExperimentResult, fig3, table1, table2, table3, table4

#: Large divisor = tiny runs; shape assertions only.
SCALE = 64


@pytest.fixture(scope="module")
def t1():
    return table1(scale=SCALE, sizes_mb=(4, 8))


@pytest.fixture(scope="module")
def t2_t3():
    return table2(scale=SCALE, inner_sizes_mb=(2, 8)), table3(scale=SCALE, inner_sizes_mb=(2, 8))


class TestTable1:
    def test_rows_and_headers(self, t1):
        assert len(t1.rows) == 2
        assert "speedup" in t1.headers

    def test_merge_join_wins_at_scale(self, t1):
        big = t1.rows[-1]
        assert big["merge_join_s"] < big["nested_loop_s"]

    def test_speedup_grows_with_size(self, t1):
        assert t1.rows[1]["speedup"] > t1.rows[0]["speedup"]

    def test_paper_reference_attached(self, t1):
        assert t1.paper[0]["nested_loop_s"] == 501

    def test_format_renders(self, t1):
        text = t1.format()
        assert "Table 1" in text and "paper reference" in text


class TestTable2:
    def test_nested_loop_grows_linearly_with_inner(self, t2_t3):
        t2, _ = t2_t3
        ratio = t2.rows[1]["nested_loop_s"] / t2.rows[0]["nested_loop_s"]
        # Inner size quadrupled; NL response should grow ~4x (CPU-bound).
        assert 2.5 <= ratio <= 6.0

    def test_merge_join_grows_subquadratically(self, t2_t3):
        t2, _ = t2_t3
        ratio = t2.rows[1]["merge_join_s"] / t2.rows[0]["merge_join_s"]
        assert ratio < 4.0


class TestTable3:
    def test_sorting_share_grows_with_inner_size(self, t2_t3):
        _, t3 = t2_t3
        assert t3.rows[1]["sorting_pct"] >= t3.rows[0]["sorting_pct"]

    def test_shares_are_percentages(self, t2_t3):
        _, t3 = t2_t3
        for row in t3.rows:
            assert 0 <= row["cpu_pct"] <= 100
            assert 0 <= row["sorting_pct"] <= 100


class TestTable4:
    @pytest.fixture(scope="class")
    def t4(self):
        return table4(scale=SCALE, tuple_sizes=(128, 1024))

    def test_both_methods_slow_down_with_tuple_size(self, t4):
        assert t4.rows[1]["nested_loop_s"] > t4.rows[0]["nested_loop_s"]
        assert t4.rows[1]["merge_join_s"] > t4.rows[0]["merge_join_s"]

    def test_cpu_share_drops_as_tuples_grow(self, t4):
        assert t4.rows[1]["nl_cpu_pct"] < t4.rows[0]["nl_cpu_pct"]


class TestFig3:
    @pytest.fixture(scope="class")
    def f3(self):
        return fig3(scale=SCALE, fanouts=(1, 16))

    def test_ios_stay_flat(self, f3):
        ios = [row["page_ios"] for row in f3.rows]
        assert max(ios) <= 1.25 * min(ios)

    def test_cpu_grows_with_fanout(self, f3):
        assert f3.rows[1]["cpu_s"] > f3.rows[0]["cpu_s"]

    def test_fuzzy_evals_track_fanout(self, f3):
        assert f3.rows[1]["fuzzy_evals"] > 4 * f3.rows[0]["fuzzy_evals"]


class TestFormatting:
    def test_none_renders_as_dash(self):
        result = ExperimentResult(
            name="x", headers=["a"], rows=[{"a": None}], paper=[], notes=""
        )
        assert "—" in result.format()
