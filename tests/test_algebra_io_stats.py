"""Tests for the fuzzy relational algebra, loaders, sampling statistics,
and the equality-indicator merge-join option."""

import random

import pytest

from repro.data import Catalog, FuzzyRelation, FuzzyTuple, Schema, Attribute, AttributeType
from repro.data import algebra
from repro.data.io import LoadError, dump_json, load_csv, load_json, parse_value
from repro.engine.statistics import estimate_fanout, sample_tuples
from repro.fuzzy import (
    CrispLabel,
    CrispNumber,
    DiscreteDistribution,
    Op,
    TrapezoidalNumber,
    paper_vocabulary,
)
from repro.join import JoinPredicate, MergeJoin, join_degree
from repro.storage import HeapFile, OperationStats, SimulatedDisk
from repro.workload.generator import WorkloadSpec, build_workload

N = CrispNumber
T = TrapezoidalNumber
SCHEMA = Schema(["A", "B"])


def rel(rows):
    return FuzzyRelation.from_rows(SCHEMA, rows)


# ----------------------------------------------------------------------
# Algebra
# ----------------------------------------------------------------------

class TestAlgebra:
    def test_select_compare(self):
        r = rel([(1, 10), (2, 20, 0.5)])
        out = algebra.select_compare(r, "B", Op.GT, N(15))
        assert len(out) == 1
        assert out.degree_of([N(2), N(20)]) == 0.5

    def test_project(self):
        r = rel([(1, 10, 0.4), (2, 10, 0.9)])
        out = algebra.project(r, ["B"])
        assert out.degree_of([N(10)]) == 0.9

    def test_cross_degrees_min(self):
        r = rel([(1, 10, 0.8)])
        s = rel([(2, 20, 0.3)])
        out = algebra.cross(r, s)
        assert len(out) == 1
        assert out.tuples()[0].degree == 0.3

    def test_join(self):
        r = rel([(1, 10)])
        s = rel([(2, 10), (3, 99)])
        out = algebra.join(r, "B", Op.EQ, s, "B")
        assert len(out) == 1

    def test_union_max(self):
        r = rel([(1, 10, 0.4)])
        s = rel([(1, 10, 0.7)])
        out = algebra.union(r, s)
        assert out.degree_of([N(1), N(10)]) == 0.7

    def test_intersect_min(self):
        r = rel([(1, 10, 0.4)])
        s = rel([(1, 10, 0.7), (2, 20, 1.0)])
        out = algebra.intersect(r, s)
        assert len(out) == 1
        assert out.tuples()[0].degree == 0.4

    def test_difference(self):
        r = rel([(1, 10, 0.9), (2, 20, 0.9)])
        s = rel([(1, 10, 0.7)])
        out = algebra.difference(r, s)
        assert out.degree_of([N(1), N(10)]) == pytest.approx(min(0.9, 0.3))
        assert out.degree_of([N(2), N(20)]) == 0.9

    def test_rename(self):
        out = algebra.rename(rel([(1, 2)]), {"A": "X"})
        assert out.schema.names() == ["X", "B"]

    def test_alpha_cut(self):
        r = rel([(1, 10, 0.4), (2, 20, 0.8)])
        out = algebra.alpha_cut(r, 0.5)
        assert len(out) == 1
        assert out.tuples()[0].degree == 1.0

    def test_alpha_cut_bounds(self):
        with pytest.raises(ValueError):
            algebra.alpha_cut(rel([]), 0.0)

    def test_incompatible_union(self):
        with pytest.raises(ValueError):
            algebra.union(rel([]), FuzzyRelation(Schema(["A"])))

    def test_composability(self):
        """Selection o projection o join composes into one fuzzy relation —
        the property the possibility-only measure buys (Section 2)."""
        r = rel([(1, 10, 0.9), (2, 20, 0.8)])
        s = rel([(5, 10, 0.7), (6, 20, 0.6)])
        composed = algebra.project(
            algebra.select_compare(
                algebra.join(r, "B", Op.EQ, s, "B"), "A", Op.LE, N(1)
            ),
            ["A"],
        )
        assert isinstance(composed, FuzzyRelation)
        assert composed.degree_of([N(1)]) == pytest.approx(0.7)


# ----------------------------------------------------------------------
# Loaders
# ----------------------------------------------------------------------

class TestParseValue:
    def test_number(self):
        assert parse_value("42.5") == N(42.5)

    def test_trapezoid(self):
        assert parse_value("[1, 2, 3, 4]") == T(1, 2, 3, 4)

    def test_triangle(self):
        assert parse_value("[1, 2, 4]") == T(1, 2, 2, 4)

    def test_interval(self):
        assert parse_value("[1, 4]") == T.rectangular(1, 4)

    def test_discrete_numeric(self):
        d = parse_value('{"5.0": 1.0, "7.5": 0.4}')
        assert d.is_numeric
        assert d.membership(7.5) == 0.4

    def test_discrete_symbolic(self):
        d = parse_value('{"y1": 1.0, "y2": 0.8}')
        assert not d.is_numeric

    def test_linguistic_with_domain(self):
        v = parse_value("medium young", paper_vocabulary(), "AGE")
        assert isinstance(v, TrapezoidalNumber)

    def test_unknown_term_is_label(self):
        assert parse_value("Ann", paper_vocabulary(), "NAME") == CrispLabel("Ann")

    def test_bad_trapezoid_arity(self):
        with pytest.raises(LoadError):
            parse_value("[1, 2, 3, 4, 5]")

    def test_malformed_json(self):
        with pytest.raises(LoadError):
            parse_value("[1, 2")

    def test_empty(self):
        with pytest.raises(LoadError):
            parse_value("  ")


class TestCSV:
    SCHEMA = Schema(
        [
            Attribute("NAME", AttributeType.LABEL, domain="NAME"),
            Attribute("AGE", AttributeType.NUMERIC, domain="AGE"),
        ]
    )

    def test_load(self):
        csv_text = "NAME,AGE,D\nAnn,medium young,1.0\nBob,41,0.5\n"
        out = load_csv(csv_text, self.SCHEMA, paper_vocabulary())
        assert len(out) == 2
        ann = [t for t in out if t[0] == CrispLabel("Ann")][0]
        assert isinstance(ann[1], TrapezoidalNumber)

    def test_degree_defaults_to_one(self):
        out = load_csv("NAME,AGE\nAnn,30\n", self.SCHEMA)
        assert out.tuples()[0].degree == 1.0

    def test_unknown_column_rejected(self):
        with pytest.raises(LoadError):
            load_csv("NAME,AGE,WRONG\nAnn,30,x\n", self.SCHEMA)

    def test_missing_header(self):
        with pytest.raises(LoadError):
            load_csv("", self.SCHEMA)


class TestJSON:
    def test_roundtrip(self):
        schema = Schema(["A", "B"])
        original = FuzzyRelation(schema)
        original.add(FuzzyTuple([N(1), T(0, 1, 2, 3)], 0.7))
        original.add(
            FuzzyTuple([N(2), DiscreteDistribution({5.0: 1.0, 6.0: 0.5})], 1.0)
        )
        back = load_json(dump_json(original), schema)
        assert back.same_as(original)

    def test_label_roundtrip(self):
        schema = Schema([("NAME", AttributeType.LABEL)])
        original = FuzzyRelation(schema)
        original.add(FuzzyTuple([CrispLabel("Ann")], 0.9))
        back = load_json(dump_json(original), schema)
        assert back.same_as(original)

    def test_not_a_list(self):
        with pytest.raises(LoadError):
            load_json('{"a": 1}', Schema(["A"]))

    def test_missing_attribute(self):
        with pytest.raises(LoadError):
            load_json('[{"A": 1}]', Schema(["A", "B"]))


# ----------------------------------------------------------------------
# Sampling statistics
# ----------------------------------------------------------------------

class TestSamplingStats:
    def _workload(self, c):
        spec = WorkloadSpec(n_outer=400, n_inner=400, join_fanout=c, tuple_size=128, seed=13)
        return build_workload(spec, page_size=1024)

    def test_sample_size(self):
        workload = self._workload(4)
        rng = random.Random(1)
        sample = sample_tuples(workload.outer, 50, rng)
        assert len(sample) == 50

    def test_sample_charges_reads(self):
        workload = self._workload(4)
        stats = OperationStats()
        sample_tuples(workload.outer, 10, random.Random(2), stats)
        assert stats.total.page_reads >= 1

    def test_estimate_tracks_true_fanout(self):
        for c in (2, 16):
            workload = self._workload(c)
            estimate = estimate_fanout(
                workload.outer, workload.inner, sample_size=128, seed=5
            )
            assert c / 3 <= estimate.fanout <= c * 3, (c, estimate)

    def test_estimate_orders_workloads(self):
        low = estimate_fanout(
            self._workload(2).outer, self._workload(2).inner, sample_size=128, seed=5
        )
        high = estimate_fanout(
            self._workload(32).outer, self._workload(32).inner, sample_size=128, seed=5
        )
        assert high.fanout > low.fanout

    def test_empty_relation(self):
        disk = SimulatedDisk(page_size=1024)
        empty = HeapFile("E", Schema(["ID", "X"]), disk, fixed_tuple_size=64)
        estimate = estimate_fanout(empty, empty)
        assert estimate.fanout == 0.0


# ----------------------------------------------------------------------
# Equality-indicator merge-join
# ----------------------------------------------------------------------

class TestIndicatorMergeJoin:
    def _wide_pair(self):
        """Uniform wide intervals: plenty of dangling tuples in Rng(r)."""
        rng = random.Random(3)
        disk = SimulatedDisk(page_size=1024)
        schema = Schema(["ID", "X"])

        def tuples(base):
            out = []
            for i in range(80):
                c = rng.uniform(0, 300)
                w = rng.uniform(10, 60)
                out.append(FuzzyTuple([N(base + i), T(c - w, c, c, c + w)], 1.0))
            return out

        r = HeapFile("R", schema, disk, fixed_tuple_size=64).load(tuples(0))
        s = HeapFile("S", schema, disk, fixed_tuple_size=64).load(tuples(1000))
        pred = join_degree([JoinPredicate(schema, "X", Op.EQ, schema, "X")])
        return disk, r, s, pred

    def test_same_results(self):
        disk, r, s, pred = self._wide_pair()
        plain = sorted(
            (a[0].value, b[0].value, round(d, 9))
            for a, b, d in MergeJoin(disk, 64, OperationStats()).pairs(r, "X", s, "X", pred)
        )
        fast = sorted(
            (a[0].value, b[0].value, round(d, 9))
            for a, b, d in MergeJoin(disk, 64, OperationStats(), indicator=True).pairs(
                r, "X", s, "X", pred
            )
        )
        assert plain == fast

    def test_fewer_fuzzy_evaluations(self):
        disk, r, s, pred = self._wide_pair()
        stats_plain = OperationStats()
        list(MergeJoin(disk, 64, stats_plain).pairs(r, "X", s, "X", pred))
        stats_fast = OperationStats()
        list(
            MergeJoin(disk, 64, stats_fast, indicator=True).pairs(r, "X", s, "X", pred)
        )
        assert (
            stats_fast.total.fuzzy_evaluations < stats_plain.total.fuzzy_evaluations
        )

    def test_fold_semantics_preserved(self):
        """The anti-join min fold is invariant under indicator skipping."""
        from repro.join.predicates import antijoin_degree

        disk, r, s, _ = self._wide_pair()
        schema = r.schema
        pair = antijoin_degree([JoinPredicate(schema, "X", Op.EQ, schema, "X")])

        def run(indicator):
            join = MergeJoin(disk, 64, OperationStats(), indicator=indicator)
            return {
                t[0].value: round(worst, 9)
                for t, worst in join.fold(
                    r, "X", s, "X", pair,
                    init=lambda x: x.degree,
                    step=lambda w, _s, d: min(w, d),
                )
            }

        assert run(False) == run(True)
