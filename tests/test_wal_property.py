"""Property tests: crash recovery is idempotent, at any workload and cut.

Hypothesis draws a random DML workload (inserts with random values and
degrees, updates, deletes — in random order) and a random byte offset to
tear the durable log at.  Whatever it draws:

* replaying the torn log twice yields **byte-identical** disk contents —
  heap versions, index files, and the truncated log itself;
* recovery after a *mid-replay crash* (a version file the first run
  installed goes missing before the second run) still converges to the
  same state: replay starts from the epoch-0 bases every time, so a
  half-finished install is simply overwritten.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.session import StorageSession
from repro.wal import WAL_FILE

DDL = [
    "CREATE TABLE R (K NUMERIC, U NUMERIC, V NUMERIC)",
]

VALUES = ["0", "2", "5", "9", "'[0, 1, 2, 4]'", "'[1, 3, 4, 6]'", "'[3, 5, 5, 7]'"]


def statements_from(draws):
    """Map Hypothesis draws onto a deterministic DML statement list."""
    statements = []
    for kind, a, b, degree in draws:
        if kind == 0:
            statements.append(
                f"INSERT INTO R VALUES ({a}, {VALUES[b % len(VALUES)]}, "
                f"{VALUES[(a + b) % len(VALUES)]}) WITH D {degree}"
            )
        elif kind == 1:
            statements.append(
                f"UPDATE R SET V = {VALUES[b % len(VALUES)]} WHERE K = {a}"
            )
        else:
            statements.append(f"DELETE FROM R WHERE K = {a}")
    return statements


def build_image(statements):
    """Ingest the workload and return its durable WAL image + schema."""
    session = StorageSession(page_size=512, buffer_pages=16)
    session.execute(DDL)
    session.create_index("R", "V")
    for sql in statements:
        session.execute(sql)
    return session.writes.wal.image()


def recovered_session(image, cut):
    """A fresh session whose disk holds the bases plus ``image[:cut]``."""
    session = StorageSession(page_size=512, buffer_pages=16)
    session.execute(DDL)
    session.create_index("R", "V")
    if cut:
        session.disk.create(WAL_FILE)
        session.disk.append_blob(WAL_FILE, image[:cut])
        session.disk.sync(WAL_FILE)
    return session


def disk_bytes(session):
    return {
        name: list(session.disk._files[name]) for name in session.disk.files()
    }


DRAW = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),    # insert / update / delete
        st.integers(min_value=1, max_value=9),    # key
        st.integers(min_value=0, max_value=9),    # value selector
        st.sampled_from([0.3, 0.6, 1.0]),         # membership degree
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=25, deadline=None)
@given(draws=DRAW, cut_fraction=st.floats(min_value=0.0, max_value=1.0))
def test_double_recovery_is_byte_identical(draws, cut_fraction):
    image = build_image(statements_from(draws))
    cut = round(len(image) * cut_fraction)
    session = recovered_session(image, cut)
    first = session.recover()
    after_one = disk_bytes(session)
    second = session.recover()
    assert first.tables == second.tables
    assert second.truncated_bytes == 0
    assert disk_bytes(session) == after_one


@settings(max_examples=15, deadline=None)
@given(draws=DRAW, cut_fraction=st.floats(min_value=0.5, max_value=1.0))
def test_recovery_converges_after_a_mid_replay_crash(draws, cut_fraction):
    """Losing an installed version file between runs changes nothing."""
    image = build_image(statements_from(draws))
    cut = round(len(image) * cut_fraction)
    reference = recovered_session(image, cut)
    reference.recover()
    crashed = recovered_session(image, cut)
    crashed.recover()
    # The "crash": every non-base version the first replay installed is
    # torn away, as if the process died mid-install on its next run.
    for name in list(crashed.disk.files()):
        if "@e" in name:
            crashed.disk.delete(name)
    crashed.recover()
    assert disk_bytes(crashed) == disk_bytes(reference)
