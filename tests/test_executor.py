"""Tests for the physical operators and the flat-query compiler."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import Attribute, Catalog, FuzzyRelation, FuzzyTuple, Schema
from repro.engine import (
    CompileError,
    ExecutionContext,
    FlatCompiler,
    NaiveEvaluator,
    execute_unnested_storage,
)
from repro.engine.operators import (
    MergeJoinOp,
    Project,
    Scan,
    Threshold,
    TuplePredicate,
    concat_schemas,
    unique_names,
)
from repro.fuzzy import CrispNumber, Op, TrapezoidalNumber, possibility
from repro.storage import HeapFile, SimulatedDisk

N = CrispNumber
T = TrapezoidalNumber
SCHEMA = Schema(["K", "U", "V"])

POOL = [N(0), N(5), N(10), T(0, 1, 2, 4), T(3, 5, 5, 7), T(4, 6, 8, 12), T(0, 2, 8, 10)]


def random_relation(rng, n, base):
    rel = FuzzyRelation(SCHEMA)
    for i in range(n):
        rel.add(
            FuzzyTuple(
                [N(base + i), rng.choice(POOL), rng.choice(POOL)],
                rng.choice([0.3, 0.6, 1.0]),
            )
        )
    return rel


def storage_setup(r, s):
    disk = SimulatedDisk(page_size=1024)
    tables = {
        "R": HeapFile.from_relation("R", r, disk, fixed_tuple_size=96),
        "S": HeapFile.from_relation("S", s, disk, fixed_tuple_size=96),
    }
    return disk, tables


class TestUniqueNames:
    def test_no_clash(self):
        assert unique_names(["A", "B"]) == ["A", "B"]

    def test_simple_clash(self):
        assert unique_names(["A", "A"]) == ["A", "A_1"]

    def test_clash_with_existing_suffix(self):
        assert unique_names(["A", "A_1", "A"]) == ["A", "A_1", "A_2"]

    def test_repeated_concat_stays_unique(self):
        s = concat_schemas(concat_schemas(SCHEMA, SCHEMA), SCHEMA)
        assert len(set(s.names())) == 9


class TestOperators:
    def test_scan_with_pushdown(self):
        rng = random.Random(1)
        r = random_relation(rng, 20, 0)
        disk, tables = storage_setup(r, r)
        predicate = TuplePredicate(
            lambda t: possibility(t[1], Op.GT, N(2)), label="U > 2"
        )
        ctx = ExecutionContext(disk, 8)
        out = Scan(tables["R"], [predicate]).to_relation(ctx)
        expected = NaiveEvaluator(_catalog(r, r)).evaluate(
            "SELECT R.K, R.U, R.V FROM R WHERE R.U > 2"
        )
        assert out.same_as(expected, 1e-9)
        assert ctx.stats.total.page_reads == tables["R"].n_pages
        assert ctx.stats.total.fuzzy_evaluations == 20

    def test_merge_join_op_concat_degrees(self):
        rng = random.Random(2)
        r = random_relation(rng, 15, 0)
        s = random_relation(rng, 15, 100)
        disk, tables = storage_setup(r, s)
        ctx = ExecutionContext(disk, 16)
        join = MergeJoinOp(Scan(tables["R"]), "V", Scan(tables["S"]), "V")
        out = join.to_relation(ctx)
        expected = NaiveEvaluator(_catalog(r, s)).evaluate(
            "SELECT R.K, R.U, R.V, S.K, S.U, S.V FROM R, S WHERE R.V = S.V"
        )
        assert len(out) == len(expected)

    def test_threshold(self):
        rng = random.Random(3)
        r = random_relation(rng, 30, 0)
        disk, tables = storage_setup(r, r)
        ctx = ExecutionContext(disk, 8)
        out = Threshold(Scan(tables["R"]), 0.5).to_relation(ctx)
        assert all(t.degree >= 0.5 for t in out)

    def test_project_dedups(self):
        rel = FuzzyRelation(SCHEMA)
        rel.add(FuzzyTuple([N(1), N(5), N(7)], 0.4))
        rel.add(FuzzyTuple([N(2), N(5), N(8)], 0.9))
        disk, tables = storage_setup(rel, rel)
        ctx = ExecutionContext(disk, 8)
        out = Project(Scan(tables["R"]), ["U"]).to_relation(ctx)
        assert len(out) == 1
        assert out.degree_of([N(5)]) == 0.9

    def test_explain_tree(self):
        rng = random.Random(4)
        r = random_relation(rng, 5, 0)
        disk, tables = storage_setup(r, r)
        plan = Project(
            MergeJoinOp(Scan(tables["R"]), "V", Scan(tables["S"]), "V"), ["K"]
        )
        text = plan.explain()
        assert "MergeJoin" in text and "Scan" in text and "Project" in text


def _catalog(r, s):
    cat = Catalog()
    cat.register("R", r)
    cat.register("S", s)
    return cat


class TestFlatCompiler:
    def _check(self, sql, r, s, buffer_pages=16):
        cat = _catalog(r, s)
        oracle = NaiveEvaluator(cat).evaluate(sql)
        disk, tables = storage_setup(r, s)
        ctx = ExecutionContext(disk, buffer_pages)
        answer = execute_unnested_storage(sql, tables, ctx)
        assert oracle.same_as(answer, 1e-9), (
            f"oracle:\n{oracle.pretty()}\nstorage:\n{answer.pretty()}"
        )
        return ctx

    def test_flat_join(self):
        rng = random.Random(5)
        self._check(
            "SELECT R.K FROM R, S WHERE R.V = S.V",
            random_relation(rng, 25, 0),
            random_relation(rng, 25, 100),
        )

    def test_type_n(self):
        rng = random.Random(6)
        self._check(
            "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S WHERE S.U = 5)",
            random_relation(rng, 25, 0),
            random_relation(rng, 25, 100),
        )

    def test_type_j_with_p1(self):
        rng = random.Random(7)
        self._check(
            "SELECT R.K FROM R WHERE R.U > 2 AND "
            "R.V IN (SELECT S.V FROM S WHERE S.U = R.U)",
            random_relation(rng, 30, 0),
            random_relation(rng, 30, 100),
        )

    def test_with_threshold(self):
        rng = random.Random(8)
        self._check(
            "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S) WITH D >= 0.5",
            random_relation(rng, 25, 0),
            random_relation(rng, 25, 100),
        )

    def test_self_join(self):
        rng = random.Random(9)
        r = random_relation(rng, 20, 0)
        self._check(
            "SELECT R.K FROM R WHERE R.V IN (SELECT R.U FROM R)",
            r,
            r,
        )

    def test_chain_three_levels(self):
        rng = random.Random(10)
        r = random_relation(rng, 15, 0)
        s = random_relation(rng, 15, 100)
        self._check(
            "SELECT R.K FROM R WHERE R.U IN "
            "(SELECT S.V FROM S WHERE S.U = R.V AND S.K IN "
            "(SELECT R2.V FROM R R2 WHERE R2.U = S.V))",
            r,
            s,
        )

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10**9))
    def test_property_type_j(self, seed):
        rng = random.Random(seed)
        self._check(
            "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S WHERE S.U = R.U)",
            random_relation(rng, 12, 0),
            random_relation(rng, 12, 100),
        )

    def test_selection_pushdown_shrinks_sort_input(self):
        rng = random.Random(11)
        r = random_relation(rng, 40, 0)
        s = random_relation(rng, 40, 100)
        sql_filtered = (
            "SELECT R.K FROM R WHERE R.U = 0 AND "
            "R.V IN (SELECT S.V FROM S WHERE S.U = R.U)"
        )
        sql_full = "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S WHERE S.U = R.U)"
        ctx_filtered = self._check(sql_filtered, r, s)
        ctx_full = self._check(sql_full, r, s)
        assert (
            ctx_filtered.stats.total.page_ios < ctx_full.stats.total.page_ios
        )

    def test_pipelined_types_rejected(self):
        rng = random.Random(12)
        r = random_relation(rng, 5, 0)
        disk, tables = storage_setup(r, r)
        ctx = ExecutionContext(disk, 8)
        with pytest.raises(CompileError):
            execute_unnested_storage(
                "SELECT R.K FROM R WHERE R.V NOT IN (SELECT S.V FROM S WHERE S.U = R.U)",
                tables,
                ctx,
            )

    def test_unknown_table(self):
        with pytest.raises(CompileError):
            FlatCompiler({}).compile("SELECT R.K FROM R")

    def test_aggregate_select_rejected(self):
        rng = random.Random(13)
        r = random_relation(rng, 5, 0)
        _, tables = storage_setup(r, r)
        with pytest.raises(CompileError):
            FlatCompiler(tables).compile("SELECT MAX(R.K) FROM R")


class TestLinguisticLiterals:
    def test_vocabulary_literal_resolved_with_domain(self):
        from repro.fuzzy import paper_vocabulary

        vocab = paper_vocabulary()
        schema = Schema([Attribute("ID"), Attribute("AGE")])
        rel = FuzzyRelation.from_rows(schema, [(1, "about 35"), (2, 70)], vocab)
        disk = SimulatedDisk(page_size=1024)
        tables = {"R": HeapFile.from_relation("R", rel, disk, fixed_tuple_size=96)}
        ctx = ExecutionContext(disk, 8)
        out = execute_unnested_storage(
            "SELECT R.ID FROM R WHERE R.AGE = 'medium young'",
            tables,
            ctx,
            vocabulary=vocab,
        )
        assert out.degree_of([N(1)]) == pytest.approx(0.5)
        assert out.degree_of([N(2)]) == 0.0
