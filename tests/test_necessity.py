"""Tests for the necessity measure (Section 2's double-measure discussion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzzy import CrispNumber, Op, TrapezoidalNumber, necessity, possibility

N = CrispNumber
T = TrapezoidalNumber


@st.composite
def trapezoids(draw):
    xs = sorted(
        draw(
            st.lists(
                st.floats(min_value=-50, max_value=50, allow_nan=False),
                min_size=4,
                max_size=4,
            )
        )
    )
    return T(*xs)


class TestNecessity:
    def test_crisp_certainty(self):
        assert necessity(N(3), Op.LT, N(5)) == 1.0
        assert necessity(N(5), Op.LT, N(3)) == 0.0

    def test_definition(self):
        u = T(0, 2, 4, 6)
        v = T(3, 5, 7, 9)
        assert necessity(u, Op.LE, v) == pytest.approx(
            1.0 - possibility(u, Op.GT, v)
        )

    def test_vague_equality_has_zero_necessity(self):
        """Two overlapping fuzzy values may be equal but never necessarily."""
        u = T(0, 2, 4, 6)
        assert possibility(u, Op.EQ, u) == 1.0
        assert necessity(u, Op.EQ, u) == 0.0

    def test_disjoint_order_is_necessary(self):
        low = T(0, 1, 2, 3)
        high = T(10, 11, 12, 13)
        assert necessity(low, Op.LT, high) == 1.0

    @settings(max_examples=80, deadline=None)
    @given(trapezoids(), trapezoids(), st.sampled_from([Op.EQ, Op.LT, Op.LE, Op.GT, Op.GE]))
    def test_necessity_never_exceeds_possibility(self, u, v, op):
        """For convex normal distributions, Nec <= Poss (Section 2)."""
        assert necessity(u, op, v) <= possibility(u, op, v) + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(trapezoids(), trapezoids())
    def test_duality(self, u, v):
        assert necessity(u, Op.LE, v) == pytest.approx(
            1.0 - possibility(u, Op.GT, v)
        )
