"""Joins over symbolic (LABEL) columns — the interval order degenerates to
the lexicographic order on singleton 'intervals'."""

import random

import pytest

from repro.data import Attribute, AttributeType, Catalog, FuzzyRelation, FuzzyTuple, Schema
from repro.engine import NaiveEvaluator
from repro.fuzzy import CrispLabel, CrispNumber, Op
from repro.join import JoinPredicate, MergeJoin, NestedLoopJoin, join_degree
from repro.session import StorageSession
from repro.sort import ExternalSorter
from repro.storage import BufferPool, HeapFile, OperationStats, SimulatedDisk

N = CrispNumber
L = CrispLabel

SCHEMA = Schema([Attribute("ID"), Attribute("TAG", AttributeType.LABEL)])
TAGS = ["alpha", "beta", "gamma", "delta", "epsilon"]


def build_pair(n=40, seed=3):
    rng = random.Random(seed)
    disk = SimulatedDisk(page_size=512)

    def tuples(base):
        return [
            FuzzyTuple([N(base + i), L(rng.choice(TAGS))], rng.uniform(0.3, 1.0))
            for i in range(n)
        ]

    r = HeapFile("R", SCHEMA, disk, fixed_tuple_size=48).load(tuples(0))
    s = HeapFile("S", SCHEMA, disk, fixed_tuple_size=48).load(tuples(1000))
    return disk, r, s


class TestLabelSort:
    def test_sorted_lexicographically(self):
        disk, r, _ = build_pair()
        out = ExternalSorter(disk, 4, OperationStats()).sort(r, "TAG")
        pool = BufferPool(disk, 8)
        tags = [t[1].value for t in out.scan(pool)]
        assert tags == sorted(tags)


class TestLabelMergeJoin:
    def test_agrees_with_nested_loop(self):
        disk, r, s = build_pair()
        pred = join_degree([JoinPredicate(SCHEMA, "TAG", Op.EQ, SCHEMA, "TAG")])
        mj = sorted(
            (a[0].value, b[0].value, round(d, 9))
            for a, b, d in MergeJoin(disk, 16, OperationStats()).pairs(r, "TAG", s, "TAG", pred)
        )
        nl = sorted(
            (a[0].value, b[0].value, round(d, 9))
            for a, b, d in NestedLoopJoin(disk, 16, OperationStats()).pairs(r, s, pred)
        )
        assert mj == nl
        assert len(mj) > 0

    def test_label_equality_is_exact(self):
        disk, r, s = build_pair()
        pred = join_degree([JoinPredicate(SCHEMA, "TAG", Op.EQ, SCHEMA, "TAG")])
        pool = BufferPool(disk, 8)
        for a, b, d in MergeJoin(disk, 16, OperationStats()).pairs(r, "TAG", s, "TAG", pred):
            assert a[1].value == b[1].value
            assert d == pytest.approx(min(a.degree, b.degree))


class TestLabelSession:
    def test_session_join_on_labels(self):
        rng = random.Random(5)
        rel_r = FuzzyRelation(SCHEMA)
        rel_s = FuzzyRelation(SCHEMA)
        for i in range(20):
            rel_r.add(FuzzyTuple([N(i), L(rng.choice(TAGS))], 1.0))
            rel_s.add(FuzzyTuple([N(100 + i), L(rng.choice(TAGS))], 1.0))
        catalog = Catalog()
        catalog.register("R", rel_r)
        catalog.register("S", rel_s)
        session = StorageSession(page_size=512)
        session.register("R", rel_r)
        session.register("S", rel_s)
        sql = "SELECT R.ID FROM R WHERE R.TAG IN (SELECT S.TAG FROM S)"
        expected = NaiveEvaluator(catalog).evaluate(sql)
        assert session.query(sql).same_as(expected, 1e-9)
        assert session.last_strategy.startswith("flat/")

    def test_session_not_in_on_labels(self):
        rng = random.Random(7)
        rel_r = FuzzyRelation(SCHEMA)
        rel_s = FuzzyRelation(SCHEMA)
        for i in range(15):
            rel_r.add(FuzzyTuple([N(i), L(rng.choice(TAGS))], rng.uniform(0.4, 1.0)))
        for i in range(5):
            rel_s.add(FuzzyTuple([N(100 + i), L(rng.choice(TAGS[:2]))], rng.uniform(0.4, 1.0)))
        catalog = Catalog()
        catalog.register("R", rel_r)
        catalog.register("S", rel_s)
        session = StorageSession(page_size=512)
        session.register("R", rel_r)
        session.register("S", rel_s)
        sql = "SELECT R.ID FROM R WHERE R.TAG NOT IN (SELECT S.TAG FROM S)"
        expected = NaiveEvaluator(catalog).evaluate(sql)
        assert session.query(sql).same_as(expected, 1e-9)
        assert session.last_strategy.startswith("grouped/")


class TestExplain:
    def test_explain_names_strategies(self):
        disk, r, s = build_pair()
        session = StorageSession(page_size=512)
        pool = BufferPool(disk, 8)
        session.register("R", r.to_relation(pool))
        session.register("S", s.to_relation(pool))
        flat = session.explain("SELECT R.ID FROM R WHERE R.TAG IN (SELECT S.TAG FROM S)")
        assert "merge-join plan" in flat and "Scan" in flat
        grouped = session.explain(
            "SELECT R.ID FROM R WHERE R.TAG NOT IN (SELECT S.TAG FROM S)"
        )
        assert "grouped anti-join" in grouped
        naive = session.explain(
            "SELECT R.ID FROM R WHERE EXISTS (SELECT S.ID FROM S)"
        )
        assert "naive" in naive
