"""Tests for the HAVING clause (fuzzy group filtering)."""

import pytest

from repro.data import Attribute, Catalog, FuzzyRelation, Schema
from repro.engine import NaiveEvaluator
from repro.fuzzy import CrispNumber, TrapezoidalNumber, paper_vocabulary
from repro.sql import NestingType, classify, parse

N = CrispNumber
SCHEMA = Schema([Attribute("K"), Attribute("V")])


def catalog_with(rows):
    cat = Catalog(paper_vocabulary())
    cat.register("R", FuzzyRelation.from_rows(SCHEMA, rows, cat.vocabulary))
    return cat


class TestParsing:
    def test_having_parses(self):
        q = parse("SELECT R.K, COUNT(R.V) FROM R GROUPBY R.K HAVING COUNT(R.V) > 1")
        assert len(q.having) == 1
        assert "HAVING" in str(q)

    def test_having_with_two_predicates(self):
        q = parse(
            "SELECT R.K FROM R GROUPBY R.K "
            "HAVING COUNT(R.V) > 1 AND MAX(R.V) < 100"
        )
        assert len(q.having) == 2

    def test_having_roundtrips(self):
        sql = "SELECT R.K FROM R GROUPBY R.K HAVING MIN(R.V) >= 3.0"
        assert parse(str(parse(sql))) == parse(sql)


class TestEvaluation:
    def test_crisp_count_filter(self):
        cat = catalog_with([(1, 10), (1, 20), (2, 30)])
        out = NaiveEvaluator(cat).evaluate(
            "SELECT R.K FROM R GROUPBY R.K HAVING COUNT(R.V) > 1"
        )
        assert len(out) == 1
        assert out.degree_of([N(1)]) == 1.0

    def test_aggregate_vs_literal_fuzzy_degree(self):
        # Group sums: K=1 -> 30, K=2 -> 5; compare against a fuzzy bound.
        cat = Catalog()
        rel = FuzzyRelation.from_rows(SCHEMA, [(1, 10), (1, 20), (2, 5)])
        cat.register("R", rel)
        out = NaiveEvaluator(cat).evaluate(
            "SELECT R.K FROM R GROUPBY R.K HAVING SUM(R.V) > 10"
        )
        assert out.degree_of([N(1)]) == 1.0
        assert out.degree_of([N(2)]) == 0.0

    def test_having_degree_joins_min(self):
        """A partially satisfied HAVING lowers the group's degree."""
        cat = Catalog()
        rel = FuzzyRelation(SCHEMA)
        from repro.data import FuzzyTuple

        fuzzy_value = TrapezoidalNumber(5, 10, 10, 15)
        rel.add(FuzzyTuple([N(1), fuzzy_value], 1.0))
        cat.register("R", rel)
        out = NaiveEvaluator(cat).evaluate(
            "SELECT R.K FROM R GROUPBY R.K HAVING MAX(R.V) > 12.5"
        )
        # Poss(trap(5,10,10,15) > 12.5) = (15 - 12.5)/5 = 0.5.
        assert out.degree_of([N(1)]) == pytest.approx(0.5)

    def test_having_on_degrees(self):
        cat = catalog_with([(1, 10, 0.4), (1, 20, 0.9), (2, 30, 0.8)])
        out = NaiveEvaluator(cat).evaluate(
            "SELECT R.K FROM R GROUPBY R.K HAVING MIN(D) >= 0.5"
        )
        # Group 1 has MIN(D)=0.4 -> Poss(0.4 >= 0.5) = 0 -> dropped.
        assert len(out) == 1
        assert out.degree_of([N(2)]) == 0.8

    def test_having_without_groupby_is_global(self):
        cat = catalog_with([(1, 10), (2, 20)])
        kept = NaiveEvaluator(cat).evaluate(
            "SELECT COUNT(R.V) FROM R HAVING COUNT(R.V) > 1"
        )
        assert len(kept) == 1
        dropped = NaiveEvaluator(cat).evaluate(
            "SELECT COUNT(R.V) FROM R HAVING COUNT(R.V) > 5"
        )
        assert len(dropped) == 0

    def test_column_in_having(self):
        cat = catalog_with([(1, 10), (2, 30)])
        out = NaiveEvaluator(cat).evaluate(
            "SELECT R.K FROM R GROUPBY R.K HAVING R.K > 1"
        )
        assert len(out) == 1


class TestClassification:
    def test_having_with_subquery_stays_general(self):
        cat = catalog_with([(1, 10)])
        cat.register("S", FuzzyRelation.from_rows(SCHEMA, [(1, 10)]))
        q = parse(
            "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S) "
            "GROUPBY R.K HAVING COUNT(R.V) > 0"
        )
        assert classify(q, cat) is NestingType.GENERAL

    def test_execute_unnested_falls_back_for_having(self):
        from repro.unnest import execute_unnested

        cat = catalog_with([(1, 10), (1, 20)])
        cat.register("S", FuzzyRelation.from_rows(SCHEMA, [(1, 10)]))
        sql = (
            "SELECT R.K FROM R WHERE R.V IN (SELECT S.V FROM S) "
            "GROUPBY R.K HAVING COUNT(R.V) > 0"
        )
        nested = NaiveEvaluator(cat).evaluate(sql)
        assert execute_unnested(sql, cat).same_as(nested)
