"""Property tests: algebraic laws of the fuzzy relational algebra.

These are the composition properties Section 2 claims for the
possibility-only measure — selection pushdown, commutativity, Zadeh
lattice laws on degrees — checked on random fuzzy relations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data import FuzzyRelation, FuzzyTuple, Schema
from repro.data import algebra
from repro.fuzzy import CrispNumber, DiscreteDistribution, Op, TrapezoidalNumber

N = CrispNumber
T = TrapezoidalNumber
SCHEMA = Schema(["K", "V"])

POOL = [
    N(0),
    N(5),
    T(0, 1, 2, 4),
    T(3, 5, 5, 7),
    T(0, 2, 8, 10),
    DiscreteDistribution({0.0: 1.0, 5.0: 0.7}),
]


@st.composite
def relations(draw, max_size=5):
    n = draw(st.integers(min_value=0, max_value=max_size))
    rel = FuzzyRelation(SCHEMA)
    for i in range(n):
        rel.add(
            FuzzyTuple(
                [N(i), draw(st.sampled_from(POOL))],
                draw(st.sampled_from([0.25, 0.5, 0.75, 1.0])),
            )
        )
    return rel


SETTINGS = dict(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestLatticeLaws:
    @settings(**SETTINGS)
    @given(relations(), relations())
    def test_union_commutative(self, r, s):
        assert algebra.union(r, s).same_as(algebra.union(s, r))

    @settings(**SETTINGS)
    @given(relations(), relations())
    def test_intersect_commutative(self, r, s):
        assert algebra.intersect(r, s).same_as(algebra.intersect(s, r))

    @settings(**SETTINGS)
    @given(relations(), relations(), relations())
    def test_union_associative(self, r, s, t):
        lhs = algebra.union(algebra.union(r, s), t)
        rhs = algebra.union(r, algebra.union(s, t))
        assert lhs.same_as(rhs)

    @settings(**SETTINGS)
    @given(relations())
    def test_union_idempotent(self, r):
        assert algebra.union(r, r).same_as(r)

    @settings(**SETTINGS)
    @given(relations())
    def test_intersect_idempotent(self, r):
        assert algebra.intersect(r, r).same_as(r)

    @settings(**SETTINGS)
    @given(relations(), relations())
    def test_intersect_below_union(self, r, s):
        inter = algebra.intersect(r, s)
        uni = algebra.union(r, s)
        for t in inter:
            assert t.degree <= uni.degree_of(t.values) + 1e-12

    @settings(**SETTINGS)
    @given(relations())
    def test_difference_with_self_is_complement_bounded(self, r):
        # mu(t) in R - R is min(mu, 1 - mu) <= 0.5.
        out = algebra.difference(r, r)
        for t in out:
            assert t.degree <= 0.5 + 1e-12


class TestSelectionLaws:
    PRED = staticmethod(lambda t: 1.0 if t[0].value < 2 else 0.0)

    @settings(**SETTINGS)
    @given(relations())
    def test_selection_idempotent(self, r):
        once = algebra.select(r, self.PRED)
        twice = algebra.select(once, self.PRED)
        assert once.same_as(twice)

    @settings(**SETTINGS)
    @given(relations())
    def test_selection_commutes(self, r):
        p1 = lambda t: 0.6
        p2 = lambda t: 0.8 if t[0].value % 2 == 0 else 0.2
        lhs = algebra.select(algebra.select(r, p1), p2)
        rhs = algebra.select(algebra.select(r, p2), p1)
        assert lhs.same_as(rhs)

    @settings(**SETTINGS)
    @given(relations(), relations())
    def test_selection_pushdown_through_join(self, r, s):
        """sigma_p(R join S) == sigma_p(R) join S for p over R's columns."""
        joined_then_selected = algebra.select(
            algebra.join(r, "V", Op.EQ, s, "V"),
            lambda t: 1.0 if t[0].value < 2 else 0.3,
        )
        selected_then_joined = algebra.join(
            algebra.select(r, lambda t: 1.0 if t[0].value < 2 else 0.3),
            "V",
            Op.EQ,
            s,
            "V",
        )
        assert joined_then_selected.same_as(selected_then_joined, 1e-9)

    @settings(**SETTINGS)
    @given(relations(), relations())
    def test_join_commutative_up_to_column_order(self, r, s):
        rs = algebra.join(r, "V", Op.EQ, s, "V")
        sr = algebra.join(s, "V", Op.EQ, r, "V")
        flipped = {
            (t[2].key(), t[3].key(), t[0].key(), t[1].key()): t.degree for t in sr
        }
        original = {tuple(v.key() for v in t.values): t.degree for t in rs}
        assert original == pytest.approx(flipped)


class TestProjectionLaws:
    @settings(**SETTINGS)
    @given(relations())
    def test_projection_degree_is_max_over_group(self, r):
        projected = algebra.project(r, ["V"])
        for t in projected:
            contributors = [
                u.degree for u in r if u[1].key() == t[0].key()
            ]
            assert t.degree == max(contributors)

    @settings(**SETTINGS)
    @given(relations())
    def test_alpha_cut_monotone(self, r):
        low = algebra.alpha_cut(r, 0.3)
        high = algebra.alpha_cut(r, 0.8)
        # Every tuple surviving the high cut survives the low cut.
        for t in high:
            assert low.degree_of(t.values) == 1.0
