"""Tests for the FuzzyDatabase facade and the DDL/DML statements."""

import pytest

from repro import FuzzyDatabase, DatabaseError
from repro.data import FuzzyRelation, Schema
from repro.fuzzy import CrispLabel, CrispNumber, TrapezoidalNumber, paper_vocabulary
from repro.sql import ParseError, parse_statement
from repro.sql.statements import CreateTable, DefineTerm, DeleteFrom, DropTable, InsertInto, Update

N = CrispNumber
L = CrispLabel


class TestStatementParsing:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE M (ID NUMERIC, NAME LABEL, AGE NUMERIC ON 'AGE')"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.name == "M"
        assert [c.name for c in stmt.columns] == ["ID", "NAME", "AGE"]
        assert stmt.columns[1].type_name == "LABEL"
        assert stmt.columns[2].domain == "AGE"

    def test_insert_single(self):
        stmt = parse_statement("INSERT INTO M VALUES (1, 'Ann', 24)")
        assert isinstance(stmt, InsertInto)
        assert stmt.rows == ((1.0, "Ann", 24.0),)
        assert stmt.degree is None

    def test_insert_multi_with_degree(self):
        stmt = parse_statement("INSERT INTO M VALUES (1, 'a'), (2, 'b') WITH D 0.7")
        assert len(stmt.rows) == 2
        assert stmt.degree == 0.7

    def test_define(self):
        stmt = parse_statement("DEFINE 'medium young' ON 'AGE' AS '[20,25,30,35]'")
        assert isinstance(stmt, DefineTerm)
        assert stmt.term == "medium young"
        assert stmt.domain == "AGE"

    def test_define_global(self):
        stmt = parse_statement("DEFINE 'big' AS '[100, 200]'")
        assert stmt.domain is None

    def test_drop(self):
        stmt = parse_statement("DROP TABLE M")
        assert isinstance(stmt, DropTable)
        assert stmt.name == "M"

    def test_select_still_parses(self):
        from repro.sql import SelectQuery

        assert isinstance(parse_statement("SELECT R.X FROM R"), SelectQuery)

    def test_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("ALTER TABLE R")

    def test_update_parses(self):
        stmt = parse_statement("UPDATE R SET X = 1 WHERE R.Y = 2 WITH D >= 0.5")
        assert isinstance(stmt, Update)
        assert stmt.assignments == (("X", 1.0),)
        assert stmt.threshold == 0.5

    def test_delete_parses(self):
        stmt = parse_statement("DELETE FROM R WHERE R.X = 'big'")
        assert isinstance(stmt, DeleteFrom)
        assert stmt.table == "R"
        assert stmt.threshold is None

    def test_dml_rejects_param_threshold(self):
        with pytest.raises(ParseError):
            parse_statement("DELETE FROM R WITH D >= ?")

    def test_statement_str_roundtrip(self):
        for sql in [
            "CREATE TABLE M (ID NUMERIC, NAME LABEL)",
            "DROP TABLE M",
        ]:
            stmt = parse_statement(sql)
            assert parse_statement(str(stmt)) == stmt


class TestDatabase:
    def _seeded(self):
        db = FuzzyDatabase()
        db.execute("CREATE TABLE M (ID NUMERIC, NAME LABEL, AGE NUMERIC ON 'AGE')")
        db.execute("DEFINE 'medium young' ON 'AGE' AS '[20, 25, 30, 35]'")
        db.execute("INSERT INTO M VALUES (1, 'Allen', 24), (2, 'Bob', 50)")
        return db

    def test_create_and_list(self):
        db = self._seeded()
        assert db.tables() == ["M"]
        assert "M" in db

    def test_create_duplicate(self):
        db = self._seeded()
        with pytest.raises(DatabaseError):
            db.execute("CREATE TABLE M (X NUMERIC)")

    def test_insert_and_query(self):
        db = self._seeded()
        out = db.execute("SELECT M.NAME FROM M WHERE M.AGE = 'medium young'")
        assert out.degree_of([L("Allen")]) == pytest.approx(0.8)
        assert out.degree_of([L("Bob")]) == 0.0

    def test_insert_fuzzy_value_literals(self):
        db = self._seeded()
        db.execute("INSERT INTO M VALUES (3, 'Carl', '[30, 35, 35, 40]')")
        value = [t for t in db.table("M") if t[0] == N(3)][0][2]
        assert isinstance(value, TrapezoidalNumber)

    def test_insert_degree(self):
        db = self._seeded()
        db.execute("INSERT INTO M VALUES (4, 'Dee', 30) WITH D 0.4")
        t = [t for t in db.table("M") if t[0] == N(4)][0]
        assert t.degree == 0.4

    def test_insert_arity_error(self):
        db = self._seeded()
        with pytest.raises(DatabaseError):
            db.execute("INSERT INTO M VALUES (1, 'x')")

    def test_insert_unknown_table(self):
        db = FuzzyDatabase()
        with pytest.raises(DatabaseError):
            db.execute("INSERT INTO NOPE VALUES (1)")

    def test_drop(self):
        db = self._seeded()
        db.execute("DROP TABLE M")
        assert db.tables() == []
        with pytest.raises(DatabaseError):
            db.execute("DROP TABLE M")

    def test_nested_query_auto_unnests(self):
        db = self._seeded()
        sql = (
            "SELECT M.NAME FROM M WHERE M.AGE IN "
            "(SELECT M2.AGE FROM M M2 WHERE M2.ID = M.ID)"
        )
        out = db.query(sql)
        assert len(out) == 2
        assert "unnested plan (J)" in db.explain(sql)

    def test_auto_unnest_matches_naive(self):
        db = self._seeded()
        db_naive = self._seeded()
        db_naive.auto_unnest = False
        sql = (
            "SELECT M.NAME FROM M WHERE M.AGE NOT IN "
            "(SELECT M2.AGE FROM M M2 WHERE M2.ID < M.ID)"
        )
        assert db.query(sql).same_as(db_naive.query(sql), 1e-9)

    def test_explain_general_falls_back(self):
        db = self._seeded()
        text = db.explain(
            "SELECT M.NAME FROM M WHERE EXISTS (SELECT M2.ID FROM M M2)"
        )
        assert "naive" in text

    def test_explain_ddl(self):
        db = FuzzyDatabase()
        assert "CREATE TABLE" in db.explain("CREATE TABLE X (A NUMERIC)")

    def test_query_rejects_ddl(self):
        db = FuzzyDatabase()
        with pytest.raises(DatabaseError):
            db.query("DROP TABLE X")

    def test_register_programmatic(self):
        db = FuzzyDatabase(paper_vocabulary())
        rel = FuzzyRelation.from_rows(Schema(["A"]), [(1,)])
        db.register("R", rel)
        assert len(db.execute("SELECT R.A FROM R")) == 1

    def test_vocabulary_shared_with_queries(self):
        db = FuzzyDatabase()
        db.execute("CREATE TABLE T (V NUMERIC ON 'SIZE')")
        db.execute("DEFINE 'small' ON 'SIZE' AS '[0, 0, 5, 10]'")
        db.execute("INSERT INTO T VALUES (3), (50)")
        out = db.execute("SELECT T.V FROM T WHERE T.V = 'small'")
        assert out.degree_of([N(3)]) == 1.0
        assert out.degree_of([N(50)]) == 0.0
